//! EMR-safe charging: schedule under an electromagnetic-radiation budget
//! (the Safe Charging constraint from the paper's related-work line) and
//! watch the utility/safety trade-off.
//!
//! ```text
//! cargo run --release -p haste --example emr_safe_charging
//! ```

use haste::core::{solve_offline_emr, EmrOptions};
use haste::model::emr;
use haste::prelude::*;

fn main() {
    let spec = ScenarioSpec {
        field: 30.0,
        num_chargers: 10,
        num_tasks: 25,
        energy_range: (3_000.0, 9_000.0),
        duration_range: (5, 20),
        release_horizon: 10,
        ..ScenarioSpec::paper_default()
    };
    let scenario = spec.generate(99);
    let coverage = CoverageMap::build(&scenario);

    // Reference: the unconstrained scheduler and the radiation it causes.
    let plain = solve_offline(&scenario, &coverage, &OfflineConfig::greedy());
    let (lo, hi) = emr::scenario_bounds(&scenario);
    let points = emr::sample_grid(lo, hi, 2.5);
    let unconstrained_peak = emr::peak_intensity(&scenario, &plain.schedule, &points);
    println!(
        "unconstrained: utility {:.4}, peak EMR {:.3}",
        plain.report.total_utility, unconstrained_peak
    );

    // Tighten the radiation budget step by step.
    println!(
        "\n{:>12} {:>10} {:>10} {:>10}",
        "threshold", "utility", "peak", "rejected"
    );
    for fraction in [1.0, 0.75, 0.5, 0.25, 0.1] {
        let threshold = unconstrained_peak * fraction;
        let result = solve_offline_emr(
            &scenario,
            &coverage,
            &EmrOptions {
                threshold,
                resolution: 2.5,
            },
        );
        println!(
            "{threshold:>12.3} {:>10.4} {:>10.3} {:>10}",
            result.solve.report.total_utility, result.peak_intensity, result.rejected_choices
        );
        assert!(result.peak_intensity <= threshold + 1e-9);
    }
    println!("\nevery schedule above respects its radiation budget at every sample point.");
}
