//! Online scheduling demo: charging tasks arrive stochastically; chargers
//! renegotiate their orientations on the fly (Algorithm 3), paying the
//! rescheduling delay `τ` and the switching delay `ρ`.
//!
//! ```text
//! cargo run --example online_arrivals --release
//! ```

use haste::prelude::*;

fn main() {
    let spec = ScenarioSpec {
        field: 40.0,
        num_chargers: 15,
        num_tasks: 60,
        energy_range: (3_000.0, 12_000.0),
        duration_range: (8, 40),
        release_horizon: 40,
        tau: 2,
        ..ScenarioSpec::paper_default()
    };
    let scenario = spec.generate(7);
    let coverage = CoverageMap::build(&scenario);
    let graph = NeighborGraph::build(&coverage);
    println!(
        "online scenario: {} chargers (avg degree {:.1}), {} tasks, tau = {} slots, rho = {:.3}",
        scenario.num_chargers(),
        graph.average_degree(),
        scenario.num_tasks(),
        scenario.tau,
        scenario.rho
    );

    // Distributed online HASTE with both engines; they agree exactly.
    let rounds = solve_online(&scenario, &coverage, &OnlineConfig::default());
    let threaded = solve_online(
        &scenario,
        &coverage,
        &OnlineConfig {
            engine: EngineKind::Threaded,
            ..OnlineConfig::default()
        },
    );
    assert_eq!(rounds.schedule, threaded.schedule);
    println!(
        "\nHASTE online (C=1): utility {:.4}, {} messages / {} rounds across {} renegotiations' slots",
        rounds.report.total_utility,
        rounds.stats.messages,
        rounds.stats.rounds,
        rounds.stats.per_slot_messages.len(),
    );
    println!(
        "  threaded engine reproduces the round engine bit-for-bit ({} messages)",
        threaded.stats.messages
    );

    // More colors buy utility at negotiation cost.
    let c4 = solve_online(
        &scenario,
        &coverage,
        &OnlineConfig {
            negotiation: NegotiationConfig {
                colors: 4,
                samples: 16,
                seed: 7,
            },
            ..OnlineConfig::default()
        },
    );
    println!(
        "HASTE online (C=4): utility {:.4}, {} messages",
        c4.report.total_utility, c4.stats.messages
    );

    // Online baselines for comparison.
    for kind in [BaselineKind::GreedyUtility, BaselineKind::GreedyCover] {
        let b = solve_baseline_online(&scenario, &coverage, kind);
        println!(
            "{:<19} utility {:.4}",
            format!("{} online:", kind.name()),
            b.report.total_utility
        );
    }

    // How much did the delays cost? Score the same schedule relaxed.
    println!(
        "\nswitching-delay cost: relaxed value {:.4} vs delivered {:.4} ({} switches)",
        rounds.relaxed_value,
        rounds.report.total_utility,
        rounds.report.total_switches()
    );
}
