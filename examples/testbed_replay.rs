//! Replays the paper's field experiments (Section 8) on the fitted
//! empirical charging model: per-task utilities for both testbed
//! topologies, offline and online (Figs. 21, 22, 24, 25).
//!
//! ```text
//! cargo run --example testbed_replay --release
//! ```

use haste::testbed;

fn main() {
    let t1 = testbed::topology1();
    println!(
        "topology 1: {} TX91501 transmitters on a 2.4 m square, {} sensor nodes\n",
        t1.num_chargers(),
        t1.num_tasks()
    );
    for figure in [testbed::fig21(), testbed::fig22()] {
        print!("{}", figure.render());
        summarize(&figure);
        println!();
    }

    let t2 = testbed::topology2();
    println!(
        "topology 2 (irregular): {} transmitters, {} sensor nodes\n",
        t2.num_chargers(),
        t2.num_tasks()
    );
    for figure in [testbed::fig24(), testbed::fig25()] {
        print!("{}", figure.render());
        summarize(&figure);
        println!();
    }
}

fn summarize(figure: &haste::sim::FigureTable) {
    let haste = figure.series_mean("HASTE(C=4)").unwrap_or(f64::NAN);
    for baseline in ["GreedyUtility", "GreedyCover"] {
        if let Some(b) = figure.series_mean(baseline) {
            println!(
                "  HASTE vs {baseline}: +{:.2}% on average",
                100.0 * (haste - b) / b.max(1e-12)
            );
        }
    }
}
