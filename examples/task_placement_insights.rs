//! The paper's "insights" study (Section 7.5): how the spatial spread of
//! task placement and per-task energy requirements shape charging utility
//! (Figs. 17 and 18, reduced scale).
//!
//! ```text
//! cargo run --example task_placement_insights --release
//! ```

use haste::prelude::*;

fn main() {
    // Insight 1 (Fig. 17): the more uniformly tasks spread, the higher the
    // overall utility — concentrated clusters over-charge some tasks while
    // starving others, and the concave utility punishes that.
    println!("Gaussian placement spread versus overall utility (offline HASTE):");
    let algo = Algo::OfflineHaste { colors: 1 };
    for sigma in [2.0, 5.0, 10.0, 20.0, 40.0] {
        let spec = ScenarioSpec {
            num_tasks: 50,
            placement: Placement::Gaussian {
                sigma_x: sigma,
                sigma_y: sigma,
            },
            ..ScenarioSpec::paper_default()
        };
        let mut total = 0.0;
        let reps = 5;
        for seed in 0..reps {
            let scenario = spec.generate(seed);
            let coverage = CoverageMap::build(&scenario);
            total += algo.run(&scenario, &coverage, seed).unwrap_or(0.0);
        }
        println!(
            "  sigma = {sigma:>5.1} m  ->  utility {:.4}",
            total / reps as f64
        );
    }

    // Insight 2 (Fig. 18): the maximum achievable individual utility decays
    // roughly like 1/E_j — a task demanding more energy needs more charger
    // slots to saturate, which is not cost-efficient for the fleet.
    println!("\nrequired energy versus best individual task utility:");
    let spec = ScenarioSpec {
        energy_range: (5_000.0, 100_000.0),
        ..ScenarioSpec::paper_default()
    };
    let scenario = spec.generate(11);
    let coverage = CoverageMap::build(&scenario);
    let result = solve_offline(&scenario, &coverage, &OfflineConfig::greedy());
    let bins = 6;
    let (lo, hi) = spec.energy_range;
    let width = (hi - lo) / bins as f64;
    let mut best = vec![0.0f64; bins];
    for (task, &u) in scenario.tasks.iter().zip(&result.report.per_task_utility) {
        let b = (((task.required_energy - lo) / width) as usize).min(bins - 1);
        best[b] = best[b].max(u);
    }
    for (b, &u) in best.iter().enumerate() {
        let center = (lo + (b as f64 + 0.5) * width) / 1000.0;
        println!("  E ~ {center:>5.1} kJ  ->  best utility {u:.3}");
    }
}
