//! Quickstart: build a small charger network, schedule it offline, and
//! compare against the paper's baselines.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use haste::prelude::*;

fn main() {
    // A 25 m × 25 m field with 8 chargers and 20 charging tasks, using the
    // paper's charging model constants (α = 10⁴, β = 40, D = 20 m,
    // A_s = A_o = 60°, ρ = 1/12).
    let spec = ScenarioSpec {
        field: 25.0,
        num_chargers: 8,
        num_tasks: 20,
        energy_range: (2_000.0, 8_000.0),
        duration_range: (5, 20),
        release_horizon: 10,
        ..ScenarioSpec::paper_default()
    };
    let scenario = spec.generate(2024);
    let coverage = CoverageMap::build(&scenario);
    println!(
        "scenario: {} chargers, {} tasks, {} slots of {}s",
        scenario.num_chargers(),
        scenario.num_tasks(),
        scenario.grid.num_slots,
        scenario.grid.slot_seconds,
    );

    // Dominant task sets of the first charger — the discrete orientation
    // choices Algorithm 1 extracts from the continuous [0, 2π).
    let sets = extract_dominant_sets(
        coverage.tasks_of(scenario.chargers[0].id),
        scenario.params.charging_angle,
    );
    println!(
        "charger 0 can reach {} tasks via {} dominant orientations",
        coverage.tasks_of(scenario.chargers[0].id).len(),
        sets.len()
    );
    for set in &sets {
        let ids: Vec<u32> = set.task_ids().map(|t| t.0).collect();
        println!(
            "  orientation {:>8} covers tasks {ids:?}",
            format!("{}", set.orientation)
        );
    }

    // Centralized offline schedule (Algorithm 2, TabularGreedy C = 4).
    let haste = solve_offline(&scenario, &coverage, &OfflineConfig::default());
    println!(
        "\nHASTE offline:   utility {:.4} (relaxed {:.4}), {} orientation switches",
        haste.report.total_utility,
        haste.relaxed_value,
        haste.report.total_switches()
    );

    // The paper's two baselines.
    for kind in [BaselineKind::GreedyUtility, BaselineKind::GreedyCover] {
        let b = solve_baseline(&scenario, &coverage, kind);
        println!(
            "{:<16} utility {:.4}",
            format!("{}:", kind.name()),
            b.report.total_utility
        );
    }

    // Per-task breakdown for the HASTE schedule.
    println!("\nper-task utilities (HASTE offline):");
    for (task, u) in scenario.tasks.iter().zip(&haste.report.per_task_utility) {
        println!(
            "  task {:>2}: window [{:>2}, {:>2}), needs {:>7.0} J, utility {:.3}",
            task.id.0, task.release_slot, task.end_slot, task.required_energy, u
        );
    }
}
