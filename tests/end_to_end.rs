//! End-to-end integration: the full pipeline — scenario generation,
//! coverage, dominant sets, offline/online scheduling, baselines, P1
//! evaluation — on moderately sized instances.

use haste::prelude::*;

fn medium_spec() -> ScenarioSpec {
    ScenarioSpec {
        field: 30.0,
        num_chargers: 10,
        num_tasks: 30,
        energy_range: (2_000.0, 10_000.0),
        duration_range: (5, 25),
        release_horizon: 15,
        ..ScenarioSpec::paper_default()
    }
}

#[test]
fn offline_pipeline_invariants() {
    for seed in 0..5u64 {
        let scenario = medium_spec().generate(seed);
        let coverage = CoverageMap::build(&scenario);
        for config in [OfflineConfig::greedy(), OfflineConfig::default()] {
            let r = solve_offline(&scenario, &coverage, &config);
            // Utilities bounded by total weight.
            assert!(r.report.total_utility >= 0.0);
            assert!(r.report.total_utility <= scenario.total_weight() + 1e-9);
            // P1 ≤ relaxed, and at least (1−ρ)·relaxed (Theorem 5.1's
            // switching-loss argument).
            assert!(r.report.total_utility <= r.relaxed_value + 1e-9);
            assert!(
                r.report.total_utility >= (1.0 - scenario.rho) * r.relaxed_value - 1e-9,
                "seed {seed}: P1 {} below (1-rho) of relaxed {}",
                r.report.total_utility,
                r.relaxed_value
            );
            // Per-task utilities within [0, 1].
            assert!(r
                .report
                .per_task_utility
                .iter()
                .all(|&u| (0.0..=1.0 + 1e-9).contains(&u)));
        }
    }
}

#[test]
fn online_pipeline_invariants() {
    for seed in 0..3u64 {
        let scenario = medium_spec().generate(100 + seed);
        let coverage = CoverageMap::build(&scenario);
        let r = solve_online(&scenario, &coverage, &OnlineConfig::default());
        assert!(r.report.total_utility <= scenario.total_weight() + 1e-9);
        assert!(r.report.total_utility <= r.relaxed_value + 1e-9);
        // Communication happened (multiple arrival events, many chargers).
        assert!(r.stats.messages > 0);
        assert!(r.stats.rounds > 0);
    }
}

#[test]
fn haste_dominates_baselines_on_average() {
    let mut haste_total = 0.0;
    let mut best_baseline_total = 0.0;
    for seed in 0..6u64 {
        let scenario = medium_spec().generate(200 + seed);
        let coverage = CoverageMap::build(&scenario);
        let h = solve_offline(&scenario, &coverage, &OfflineConfig::default());
        let bu = solve_baseline(&scenario, &coverage, BaselineKind::GreedyUtility);
        let bc = solve_baseline(&scenario, &coverage, BaselineKind::GreedyCover);
        haste_total += h.report.total_utility;
        best_baseline_total += bu.report.total_utility.max(bc.report.total_utility);
    }
    assert!(
        haste_total >= best_baseline_total - 1e-9,
        "HASTE {haste_total} below best baseline {best_baseline_total}"
    );
}

#[test]
fn schedules_only_use_extracted_orientations() {
    // Every orientation the solver emits must cover at least one task the
    // charger can reach — no pointing at empty space.
    let scenario = medium_spec().generate(5);
    let coverage = CoverageMap::build(&scenario);
    let r = solve_offline(&scenario, &coverage, &OfflineConfig::greedy());
    for charger in &scenario.chargers {
        let candidates = coverage.tasks_of(charger.id);
        for k in 0..scenario.grid.num_slots {
            if let Some(theta) = r.schedule.get(charger.id, k) {
                let covers_any = candidates.iter().any(|c| {
                    c.azimuth
                        .within(theta, scenario.params.charging_angle / 2.0)
                });
                assert!(
                    covers_any,
                    "charger {:?} slot {k} aims at nothing",
                    charger.id
                );
            }
        }
    }
}

#[test]
fn wider_angles_never_hurt() {
    // Monotonicity sanity across the pipeline: growing A_s (or A_o) can
    // only enlarge coverage options.
    let mut utilities = Vec::new();
    for deg in [60.0, 180.0, 360.0] {
        let mut spec = medium_spec();
        spec.params.charging_angle = f64::to_radians(deg);
        let mut total = 0.0;
        for seed in 0..4u64 {
            let scenario = spec.generate(seed);
            let coverage = CoverageMap::build(&scenario);
            total += solve_offline(&scenario, &coverage, &OfflineConfig::greedy()).relaxed_value;
        }
        utilities.push(total);
    }
    assert!(
        utilities[0] <= utilities[1] + 1e-6 && utilities[1] <= utilities[2] + 1e-6,
        "utilities not monotone in A_s: {utilities:?}"
    );
}

#[test]
fn text_io_roundtrip_preserves_solver_results() {
    use haste::model::io;
    let scenario = medium_spec().generate(3);
    let text = io::write_scenario(&scenario);
    let parsed = io::read_scenario(&text).expect("roundtrip parses");
    let cov_a = CoverageMap::build(&scenario);
    let cov_b = CoverageMap::build(&parsed);
    let a = solve_offline(&scenario, &cov_a, &OfflineConfig::greedy());
    let b = solve_offline(&parsed, &cov_b, &OfflineConfig::greedy());
    assert_eq!(a.schedule, b.schedule);
    assert!((a.report.total_utility - b.report.total_utility).abs() < 1e-12);
}

#[test]
fn serde_scenario_roundtrip() {
    // Scenario specs and scenarios are serializable configuration.
    let scenario = medium_spec().generate(1);
    let cloned = scenario.clone();
    assert_eq!(scenario.tasks, cloned.tasks);
    // Schedules compare equal through clone as well (serde derives are
    // exercised in unit tests; here we pin the PartialEq plumbing).
    let coverage = CoverageMap::build(&scenario);
    let r = solve_offline(&scenario, &coverage, &OfflineConfig::greedy());
    assert_eq!(r.schedule, r.schedule.clone());
}
