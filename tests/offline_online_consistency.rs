//! Consistency between the centralized offline and distributed online
//! algorithms, and between the two negotiation engines (the machinery
//! behind Theorem 6.1's "same performance as Algorithm 2" argument).

use haste::prelude::*;

fn spec() -> ScenarioSpec {
    ScenarioSpec {
        field: 30.0,
        num_chargers: 8,
        num_tasks: 20,
        energy_range: (1_000.0, 6_000.0),
        duration_range: (4, 12),
        release_horizon: 8,
        ..ScenarioSpec::paper_default()
    }
}

/// With every task known at t = 0 and no rescheduling delay, the online
/// algorithm is one big negotiation — a locally greedy execution of the
/// same submodular problem the offline algorithm solves. Partition orders
/// differ, so values differ slightly, but they live in the same band.
#[test]
fn single_release_no_delay_matches_offline_band() {
    for seed in 0..4u64 {
        let mut scenario = spec().generate(seed);
        for task in &mut scenario.tasks {
            let d = task.end_slot - task.release_slot;
            task.release_slot = 0;
            task.end_slot = d;
        }
        scenario.tau = 0;
        scenario.validate().unwrap();
        let coverage = CoverageMap::build(&scenario);
        let online = solve_online(&scenario, &coverage, &OnlineConfig::default());
        let offline = solve_offline(&scenario, &coverage, &OfflineConfig::greedy());
        let lo = 0.85 * offline.relaxed_value;
        assert!(
            online.relaxed_value >= lo - 1e-9,
            "seed {seed}: online {} far below offline {}",
            online.relaxed_value,
            offline.relaxed_value
        );
    }
}

/// The threaded engine is a genuinely distributed execution (per-charger state,
/// channel messages) and must agree with the deterministic round engine
/// bit for bit — including communication counters.
#[test]
fn engines_bit_identical_across_seeds_and_colors() {
    for seed in 0..3u64 {
        let scenario = spec().generate(40 + seed);
        let coverage = CoverageMap::build(&scenario);
        for colors in [1usize, 4] {
            let cfg = OnlineConfig {
                negotiation: NegotiationConfig {
                    colors,
                    samples: 8,
                    seed,
                },
                ..OnlineConfig::default()
            };
            let rounds = solve_online(&scenario, &coverage, &cfg);
            let threaded = solve_online(
                &scenario,
                &coverage,
                &OnlineConfig {
                    engine: EngineKind::Threaded,
                    ..cfg
                },
            );
            assert_eq!(rounds.schedule, threaded.schedule, "seed {seed} C={colors}");
            assert_eq!(rounds.stats.messages, threaded.stats.messages);
            assert_eq!(rounds.stats.rounds, threaded.stats.rounds);
        }
    }
}

/// Growing the rescheduling delay τ cannot help (tasks lose their first
/// τ slots of charging opportunity).
#[test]
fn larger_tau_degrades_gracefully() {
    let mut previous = f64::INFINITY;
    for tau in [0usize, 2, 4] {
        let mut total = 0.0;
        for seed in 0..4u64 {
            let mut scenario = spec().generate(70 + seed);
            scenario.tau = tau;
            let coverage = CoverageMap::build(&scenario);
            total += solve_online(&scenario, &coverage, &OnlineConfig::default()).relaxed_value;
        }
        assert!(
            total <= previous + 0.05 * previous.min(total.max(1e-9)),
            "tau={tau}: total {total} above previous {previous}"
        );
        previous = total;
    }
}

/// Message counts grow superlinearly with charger density while rounds
/// grow roughly linearly (Fig. 16's trend).
#[test]
fn communication_scales_with_network_size() {
    let mut messages = Vec::new();
    let mut rounds = Vec::new();
    for n in [5usize, 10, 20] {
        let mut total_m = 0.0;
        let mut total_r = 0.0;
        for seed in 0..3u64 {
            let s = ScenarioSpec {
                num_chargers: n,
                ..spec()
            }
            .generate(seed);
            let coverage = CoverageMap::build(&s);
            let r = solve_online(&s, &coverage, &OnlineConfig::default());
            total_m += r.stats.avg_messages_per_slot();
            total_r += r.stats.avg_rounds_per_slot();
        }
        messages.push(total_m / 3.0);
        rounds.push(total_r / 3.0);
    }
    assert!(
        messages[0] < messages[1] && messages[1] < messages[2],
        "messages not increasing: {messages:?}"
    );
    assert!(
        rounds[0] <= rounds[2] + 1e-9,
        "rounds should not shrink with density: {rounds:?}"
    );
    // Superlinear growth of messages: 4× chargers should cost well over 4×
    // messages (each round touches more neighbors).
    assert!(
        messages[2] > 2.0 * messages[0],
        "message growth too flat: {messages:?}"
    );
}
