//! Property-based tests (proptest) on the core invariants:
//! dominant-set completeness and maximality, submodularity of the HASTE-R
//! objective, and evaluator bounds — the paper's Lemma 4.2 and the
//! correctness backbone of Algorithm 1, machine-checked on random inputs.

use haste::core::{extract_dominant_sets, DominantScope, HasteRInstance};
use haste::geometry::{Angle, Vec2};
use haste::model::{
    evaluate, evaluate_relaxed, Charger, ChargingParams, CoverageMap, EvalOptions, Scenario,
    Schedule, Task, TimeGrid,
};
use haste::submodular::validate;
use proptest::prelude::*;

const TAU: f64 = std::f64::consts::TAU;

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    // 1-4 chargers, 1-8 tasks, small grid; all positions in a 40 m box.
    (
        1usize..=4,
        1usize..=8,
        proptest::collection::vec((0.0f64..40.0, 0.0f64..40.0), 12),
        proptest::collection::vec(
            (
                0.0f64..40.0,
                0.0f64..40.0,
                0.0f64..TAU,
                0usize..4,
                1usize..=4,
                100.0f64..3000.0,
            ),
            8,
        ),
        0.0f64..1.0, // rho
        (0.5f64..TAU, 0.5f64..TAU),
    )
        .prop_map(|(n, m, cpos, tdesc, rho, (a_s, a_o))| {
            let params = ChargingParams {
                charging_angle: a_s,
                receiving_angle: a_o,
                ..ChargingParams::simulation_default()
            };
            let chargers = (0..n)
                .map(|i| Charger::new(i as u32, Vec2::new(cpos[i].0, cpos[i].1)))
                .collect();
            let tasks: Vec<Task> = (0..m)
                .map(|j| {
                    let (x, y, phi, rel, dur, energy) = tdesc[j];
                    Task::new(
                        j as u32,
                        Vec2::new(x, y),
                        Angle::from_radians(phi),
                        rel,
                        rel + dur,
                        energy,
                        1.0 / m as f64,
                    )
                })
                .collect();
            let slots = tasks.iter().map(|t| t.end_slot).max().unwrap_or(1);
            Scenario::new(params, TimeGrid::minutes(slots), chargers, tasks, rho, 1).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Completeness of Algorithm 1: the covered set of ANY orientation is
    /// contained in some dominant set.
    #[test]
    fn dominant_sets_cover_every_orientation(scenario in arb_scenario(), theta in 0.0f64..TAU) {
        let coverage = CoverageMap::build(&scenario);
        let theta = Angle::from_radians(theta);
        for charger in &scenario.chargers {
            let candidates = coverage.tasks_of(charger.id);
            let sets = extract_dominant_sets(candidates, scenario.params.charging_angle);
            let covered: Vec<_> = candidates
                .iter()
                .filter(|c| c.azimuth.within(theta, scenario.params.charging_angle / 2.0))
                .map(|c| c.task)
                .collect();
            if covered.is_empty() {
                continue;
            }
            let contained = sets
                .iter()
                .any(|s| covered.iter().all(|t| s.contains(*t)));
            prop_assert!(
                contained,
                "orientation {theta} covers {covered:?} not inside any dominant set"
            );
        }
    }

    /// Maximality: no dominant set is a subset of another.
    #[test]
    fn dominant_sets_are_maximal(scenario in arb_scenario()) {
        let coverage = CoverageMap::build(&scenario);
        for charger in &scenario.chargers {
            let sets = extract_dominant_sets(
                coverage.tasks_of(charger.id),
                scenario.params.charging_angle,
            );
            for (i, a) in sets.iter().enumerate() {
                for (j, b) in sets.iter().enumerate() {
                    if i == j { continue; }
                    let a_in_b = a.task_ids().all(|t| b.contains(t));
                    prop_assert!(!a_in_b, "dominant set {i} ⊆ {j}");
                }
            }
        }
    }

    /// Lemma 4.2, machine-checked: the HASTE-R objective is normalized,
    /// monotone, submodular and order-independent.
    #[test]
    fn haste_r_objective_is_monotone_submodular(scenario in arb_scenario(), seed in 0u64..1000) {
        let coverage = CoverageMap::build(&scenario);
        for scope in [DominantScope::PerSlot, DominantScope::Global] {
            let inst = HasteRInstance::build(&scenario, &coverage, scope);
            if inst.ground_set_size() == 0 { continue; }
            prop_assert!(validate::check_all(&inst, 40, seed, 1e-9).is_ok());
        }
    }

    /// Evaluator bounds: utility within [0, Σw]; switching delay only
    /// shrinks energy; relaxed dominates delayed.
    #[test]
    fn evaluator_bounds(scenario in arb_scenario(), orientations in proptest::collection::vec(0.0f64..TAU, 16)) {
        let coverage = CoverageMap::build(&scenario);
        let mut schedule = Schedule::empty(scenario.num_chargers(), scenario.grid.num_slots);
        let mut oi = 0;
        for i in 0..scenario.num_chargers() {
            for k in 0..scenario.grid.num_slots {
                let theta = orientations[oi % orientations.len()];
                oi += 1;
                // Leave some holes.
                if oi % 3 != 0 {
                    schedule.set(
                        haste::model::ChargerId(i as u32),
                        k,
                        Some(Angle::from_radians(theta)),
                    );
                }
            }
        }
        let relaxed = evaluate_relaxed(&scenario, &coverage, &schedule);
        let delayed = evaluate(&scenario, &coverage, &schedule, EvalOptions::default());
        prop_assert!(delayed.total_utility >= -1e-12);
        prop_assert!(delayed.total_utility <= scenario.total_weight() + 1e-9);
        prop_assert!(delayed.total_utility <= relaxed.total_utility + 1e-9);
        for (d, r) in delayed.per_task_energy.iter().zip(&relaxed.per_task_energy) {
            prop_assert!(d <= &(r + 1e-9));
        }
        // Same switch counts regardless of rho.
        prop_assert_eq!(delayed.total_switches(), relaxed.total_switches());
    }

    /// The offline solver's reported relaxed value always matches an
    /// independent replay through the evaluator.
    #[test]
    fn solver_value_matches_evaluator(scenario in arb_scenario()) {
        let coverage = CoverageMap::build(&scenario);
        let r = haste::core::solve_offline(
            &scenario,
            &coverage,
            &haste::core::OfflineConfig::greedy(),
        );
        let replay = evaluate_relaxed(&scenario, &coverage, &r.schedule);
        prop_assert!((r.relaxed_value - replay.total_utility).abs() < 1e-9);
    }
}

proptest! {
    // Each case runs several full solves on paper-family scenarios.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On scenarios drawn from the paper's small-scale generator, the value
    /// the greedy oracle accumulates incrementally equals a from-scratch
    /// replay of the materialized schedule through `evaluate_relaxed` —
    /// for both the locally greedy (`C = 1`) and TabularGreedy (`C = 4`)
    /// paths — and `solve_offline` reports exactly that value.
    #[test]
    fn relaxed_value_matches_evaluator_replay(
        seed in 0u64..10_000,
        n in 3usize..=6,
        m in 6usize..=14,
    ) {
        use haste::submodular::{
            locally_greedy_with_stats, tabular_greedy_with_stats, GreedyOptions, TabularOptions,
        };
        let scenario = haste::sim::ScenarioSpec {
            num_chargers: n,
            num_tasks: m,
            ..haste::sim::ScenarioSpec::small_scale()
        }
        .generate(seed);
        let coverage = CoverageMap::build(&scenario);
        let inst = HasteRInstance::build(&scenario, &coverage, DominantScope::PerSlot);
        for colors in [1usize, 4] {
            let (sel, _) = if colors == 1 {
                locally_greedy_with_stats(&inst, &GreedyOptions::default())
            } else {
                tabular_greedy_with_stats(&inst, &TabularOptions {
                    colors,
                    samples: 8,
                    seed,
                    ..TabularOptions::default()
                })
            };
            // Independent replay: materialize (no orientation holding) and
            // score with the standalone relaxed evaluator.
            let schedule = inst.materialize(&sel);
            let replay = evaluate_relaxed(&scenario, &coverage, &schedule);
            prop_assert!(
                (sel.value - replay.total_utility).abs() < 1e-9,
                "C={}: oracle value {} vs replay {}",
                colors, sel.value, replay.total_utility
            );
            // The full solver pipeline reports exactly this value.
            let r = haste::core::solve_offline(
                &scenario,
                &coverage,
                &haste::core::OfflineConfig {
                    colors,
                    samples: 8,
                    seed,
                    switch_aware: false,
                    ..haste::core::OfflineConfig::default()
                },
            );
            prop_assert_eq!(
                r.relaxed_value.to_bits(),
                sel.value.to_bits(),
                "C={}: solve_offline diverged from the bare optimizer",
                colors
            );
        }
    }

    /// The parallel solve path returns the bit-identical solution — same
    /// schedule, same value bits, same oracle counters — for any thread
    /// count, on both optimizer paths.
    #[test]
    fn parallel_solve_is_bit_identical(
        seed in 0u64..10_000,
        n in 3usize..=6,
        m in 6usize..=14,
        threads in 2usize..=8,
    ) {
        let scenario = haste::sim::ScenarioSpec {
            num_chargers: n,
            num_tasks: m,
            ..haste::sim::ScenarioSpec::small_scale()
        }
        .generate(seed);
        let coverage = CoverageMap::build(&scenario);
        let coverage_par = CoverageMap::build_par(&scenario, threads);
        for charger in &scenario.chargers {
            prop_assert_eq!(
                coverage_par.tasks_of(charger.id),
                coverage.tasks_of(charger.id)
            );
        }
        for colors in [1usize, 4] {
            let base = haste::core::solve_offline(
                &scenario,
                &coverage,
                &haste::core::OfflineConfig {
                    colors,
                    ..haste::core::OfflineConfig::default()
                },
            );
            let par = haste::core::solve_offline(
                &scenario,
                &coverage,
                &haste::core::OfflineConfig {
                    colors,
                    threads,
                    ..haste::core::OfflineConfig::default()
                },
            );
            prop_assert_eq!(&base.schedule, &par.schedule);
            prop_assert_eq!(
                base.relaxed_value.to_bits(),
                par.relaxed_value.to_bits(),
                "C={}, threads={}: value changed",
                colors, threads
            );
            prop_assert_eq!(base.metrics.oracle_marginals, par.metrics.oracle_marginals);
            prop_assert_eq!(base.metrics.oracle_commits, par.metrics.oracle_commits);
        }
    }
}

proptest! {
    // The threaded engine spawns one OS thread per charger per negotiation;
    // keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The round-based and threaded negotiation engines are bit-identical
    /// on arbitrary instances, colors and seeds.
    #[test]
    fn negotiation_engines_bit_identical(
        scenario in arb_scenario(),
        colors in 1usize..4,
        seed in 0u64..100,
    ) {
        use haste::distributed::{negotiate_rounds, negotiate_threaded, NegotiationConfig, NeighborGraph};
        let coverage = CoverageMap::build(&scenario);
        let graph = NeighborGraph::build(&coverage);
        let inst = HasteRInstance::build(&scenario, &coverage, DominantScope::PerSlot);
        let cfg = NegotiationConfig { colors, samples: 6, seed };
        let (a, sa) = negotiate_rounds(&inst, &graph, &cfg);
        let (b, sb) = negotiate_threaded(&inst, &graph, &cfg);
        prop_assert_eq!(a.choices, b.choices);
        prop_assert_eq!(sa.messages, sb.messages);
        prop_assert_eq!(sa.rounds, sb.rounds);
    }

    /// The coverage map's cached per-candidate power equals the full
    /// charging-power function evaluated at the candidate's azimuth.
    #[test]
    fn coverage_powers_match_power_model(scenario in arb_scenario()) {
        let coverage = CoverageMap::build(&scenario);
        for charger in &scenario.chargers {
            for cand in coverage.tasks_of(charger.id) {
                let task = &scenario.tasks[cand.task.index()];
                let direct = haste::model::power::received_power(
                    &scenario.params,
                    charger,
                    Some(cand.azimuth),
                    task,
                );
                prop_assert!(
                    (direct - cand.power).abs() < 1e-9,
                    "cached {} vs direct {direct}",
                    cand.power
                );
            }
        }
    }

    /// The orientation-hold pass never decreases utility and never adds
    /// switches.
    #[test]
    fn hold_orientations_weakly_dominates(scenario in arb_scenario()) {
        use haste::core::{HasteRInstance as Inst, DominantScope as Scope};
        use haste::submodular::{locally_greedy, GreedyOptions};
        let coverage = CoverageMap::build(&scenario);
        let inst = Inst::build(&scenario, &coverage, Scope::PerSlot);
        let sel = locally_greedy(&inst, &GreedyOptions::default());
        let bare = inst.materialize(&sel);
        let mut held = bare.clone();
        held.hold_orientations();
        let bare_eval = evaluate(&scenario, &coverage, &bare, EvalOptions::default());
        let held_eval = evaluate(&scenario, &coverage, &held, EvalOptions::default());
        prop_assert!(held_eval.total_utility >= bare_eval.total_utility - 1e-12);
        prop_assert!(held_eval.total_switches() <= bare_eval.total_switches());
    }
}
