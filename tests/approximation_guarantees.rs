//! Empirical verification of the paper's approximation guarantees against
//! the brute-force optimum on small instances (the machinery behind
//! Figs. 8–9).

use haste::prelude::*;
use haste::sim::Algo;

fn small_spec() -> ScenarioSpec {
    ScenarioSpec::small_scale()
}

/// Theorem 5.1 floor at finite C: the locally greedy core guarantees 1/2 of
/// the HASTE-R optimum, and the switching delay costs at most (1 − ρ).
#[test]
fn offline_meets_theorem_5_1_floor() {
    let mut checked = 0;
    for seed in 0..12u64 {
        let scenario = small_spec().generate(seed);
        let coverage = CoverageMap::build(&scenario);
        let Ok(exact) = solve_exact(&scenario, &coverage, 1 << 24) else {
            continue;
        };
        if exact.relaxed_value < 1e-9 {
            continue;
        }
        checked += 1;
        for config in [OfflineConfig::greedy(), OfflineConfig::with_colors(4)] {
            let r = solve_offline(&scenario, &coverage, &config);
            let floor = 0.5 * (1.0 - scenario.rho) * exact.relaxed_value;
            assert!(
                r.report.total_utility >= floor - 1e-9,
                "seed {seed} C={}: {} below floor {floor}",
                config.colors,
                r.report.total_utility
            );
        }
    }
    assert!(checked >= 6, "too few feasible exact instances: {checked}");
}

/// Theorem 6.1 floor: the distributed online algorithm keeps
/// ½(1 − ρ)(1 − 1/e) of the optimum. We check against the HASTE-R optimum,
/// which upper-bounds the HASTE optimum, so the test is stricter than the
/// theorem on the instances where it passes — and the paper's own
/// observation (≥ 88 % of optimal in Fig. 9) says it passes comfortably.
#[test]
fn online_meets_theorem_6_1_floor() {
    let ratio = 0.5 * (1.0 - 1.0 / 12.0) * (1.0 - (-1.0f64).exp());
    let mut checked = 0;
    for seed in 0..12u64 {
        let scenario = small_spec().generate(100 + seed);
        let coverage = CoverageMap::build(&scenario);
        let Ok(exact) = solve_exact(&scenario, &coverage, 1 << 24) else {
            continue;
        };
        if exact.relaxed_value < 1e-9 {
            continue;
        }
        checked += 1;
        let r = solve_online(&scenario, &coverage, &OnlineConfig::default());
        assert!(
            r.report.total_utility >= ratio * exact.relaxed_value - 1e-9,
            "seed {seed}: online {} below {} of optimum {}",
            r.report.total_utility,
            ratio,
            exact.relaxed_value
        );
    }
    assert!(checked >= 6, "too few feasible exact instances: {checked}");
}

/// The paper's headline: the online algorithm reaches a large fraction of
/// the optimum (92.97 % in their runs) — far above its worst-case bound.
#[test]
fn online_fraction_of_optimum_is_high_on_average() {
    let mut ratios = Vec::new();
    for seed in 0..10u64 {
        let scenario = small_spec().generate(300 + seed);
        let coverage = CoverageMap::build(&scenario);
        let Ok(exact) = solve_exact(&scenario, &coverage, 1 << 24) else {
            continue;
        };
        if exact.relaxed_value < 1e-6 {
            continue;
        }
        let r = solve_online(&scenario, &coverage, &OnlineConfig::default());
        ratios.push(r.relaxed_value / exact.relaxed_value);
    }
    assert!(ratios.len() >= 5);
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean >= 0.75,
        "mean online/optimal ratio {mean:.3} unexpectedly low ({ratios:?})"
    );
}

/// TabularGreedy's color knob: more colors never degrade the *expected*
/// solution; empirically C = 8 should at least match C = 1 on average.
#[test]
fn colors_help_on_average() {
    let mut c1_total = 0.0;
    let mut c8_total = 0.0;
    for seed in 0..8u64 {
        let scenario = small_spec().generate(500 + seed);
        let coverage = CoverageMap::build(&scenario);
        c1_total += solve_offline(&scenario, &coverage, &OfflineConfig::greedy()).relaxed_value;
        c8_total += solve_offline(
            &scenario,
            &coverage,
            &OfflineConfig {
                colors: 8,
                samples: 32,
                seed,
                ..OfflineConfig::default()
            },
        )
        .relaxed_value;
    }
    assert!(
        c8_total >= 0.98 * c1_total,
        "C=8 total {c8_total} noticeably below C=1 {c1_total}"
    );
}

/// The Algo roster used by the figures agrees with calling the solvers
/// directly.
#[test]
fn algo_roster_consistent_with_direct_calls() {
    let scenario = small_spec().generate(9);
    let coverage = CoverageMap::build(&scenario);
    let direct = solve_offline(&scenario, &coverage, &OfflineConfig::greedy())
        .report
        .total_utility;
    let via_roster = Algo::OfflineHaste { colors: 1 }
        .run(&scenario, &coverage, 9)
        .unwrap();
    assert!((direct - via_roster).abs() < 1e-12);
}
