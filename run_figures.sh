#!/bin/sh
# Regenerates every figure with per-figure topology budgets suited to a
# single-core box. Paper fidelity would be --paper (100 topologies).
set -x
BIN="cargo run --release -q -p haste-bench --bin"
$BIN fig04 -- --topologies 30
$BIN fig05 -- --topologies 30
$BIN fig06 -- --topologies 30
$BIN fig07 -- --topologies 30
$BIN fig08 -- --topologies 30
$BIN fig09 -- --topologies 30
$BIN fig10 -- --topologies 20
$BIN fig11 -- --topologies 8
$BIN fig12 -- --topologies 10
$BIN fig13 -- --topologies 10
$BIN fig14 -- --topologies 10
$BIN fig15 -- --topologies 8
$BIN fig16 -- --topologies 8
$BIN fig17 -- --topologies 20
$BIN fig18 -- --topologies 20
$BIN headline -- --topologies 30
$BIN fig21_22
$BIN fig24_25
$BIN failures -- --topologies 8
$BIN ablation -- --topologies 10
