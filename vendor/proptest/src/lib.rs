//! Offline-vendored subset of `proptest`, implementing the surface this
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`strategy::Strategy`] with [`strategy::Strategy::prop_map`],
//! * range strategies (`0.0f64..1.0`, `1usize..=4`, …), tuple strategies,
//!   and [`collection::vec`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Unlike upstream there is **no shrinking** and no failure persistence:
//! cases are generated from a seed derived deterministically from the test
//! name, a failing case panics with the assertion message directly. That
//! keeps runs reproducible without any filesystem or network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::{Range, RangeInclusive};

    use rand::rngs::StdRng;
    use rand::Rng;

    /// The RNG handed to strategies; deterministic per test.
    pub type TestRng = StdRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for bool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            // `bool` as a strategy means "any bool" (upstream: `any::<bool>()`
            // shorthand is not a thing; kept for convenience).
            let _ = self;
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A 0);
    impl_tuple_strategy!(A 0, B 1);
    impl_tuple_strategy!(A 0, B 1, C 2);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for [`vec`]: a fixed count or a range of counts.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub fn vec<S: Strategy, N: SizeRange>(element: S, size: N) -> VecStrategy<S, N> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, N> {
        element: S,
        size: N,
    }

    impl<S: Strategy, N: SizeRange> Strategy for VecStrategy<S, N> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-runner configuration.

    /// Subset of upstream's `ProptestConfig`: only the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-test seed: FNV-1a of the test's full name.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    //! One-stop import for property tests.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Marker returned through `?`-less early exit when `prop_assume!` rejects a
/// case; the runner draws a replacement case.
#[derive(Debug)]
pub struct CaseRejected;

#[doc(hidden)]
pub use rand as __rand;

/// Asserts a condition inside a property; panics (failing the test, with no
/// shrinking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Rejects the current case unless the condition holds; the runner replaces
/// it with a fresh one (bounded retries).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::CaseRejected);
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal recursive expansion of [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident(
        $($arg:pat_param in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        // Upstream style: the `#[test]` attribute is written by the caller
        // inside the macro body and passed through via `$meta`.
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = <$crate::strategy::TestRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u64 = 0;
            let max_attempts = u64::from(cfg.cases) * 20 + 100;
            while accepted < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "prop_assume! rejected too many cases ({} attempts for {} target cases)",
                    attempts,
                    cfg.cases
                );
                $(let $arg = ($strat).sample(&mut rng);)+
                // The closure gives `prop_assume!` an early-return channel
                // out of `$body`; it cannot be inlined into the `let`.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::CaseRejected> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 0.0f64..1.0, n in 1usize..=4) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..=4).contains(&n));
        }

        /// prop_map composes.
        #[test]
        fn mapped_strategy(e in arb_even()) {
            prop_assert_eq!(e % 2, 0);
        }

        /// Tuples and vec() generate with requested shapes.
        #[test]
        fn tuple_and_vec(
            (a, b) in (0u32..10, 0u32..10),
            v in collection::vec(0i32..5, 7),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|x| (0..5).contains(x)));
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
