//! No-op `Serialize` / `Deserialize` derives for the offline-vendored
//! `serde` facade.
//!
//! The workspace derives serde traits on its model types but deliberately
//! ships no serde *format* crate (see `haste-model`'s text format in
//! `io.rs`), so nothing ever consumes the generated impls. These derives
//! therefore expand to nothing; they exist so the `#[derive(Serialize,
//! Deserialize)]` and `#[serde(...)]` annotations keep compiling without
//! network access to crates.io.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers); expands to
/// nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers); expands
/// to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
