//! Offline-vendored subset of `bytes`: [`Bytes`], [`BytesMut`], and the
//! big-endian [`Buf`]/[`BufMut`] accessors used by the `haste-service`
//! protocol-v3 binary framing. Plain `Vec<u8>` storage — no shared-buffer
//! refcounting — because the framing layer only ever builds a frame, sends
//! it, and drops it. Matches the real crate's semantics where it matters:
//! all multi-byte accessors are big-endian (network order), `get_*` panics
//! on underflow, and `Buf` is implemented for `&[u8]` so a mutable slice
//! reference can be consumed in place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// Read access to a contiguous buffer, consumed front-to-back.
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes, starting at the cursor.
    fn chunk(&self) -> &[u8];

    /// Moves the cursor forward `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes from the buffer into `dst`, advancing.
    ///
    /// # Panics
    /// Panics if the buffer holds fewer than `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian IEEE-754 `f64` (raw bits — lossless).
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer.
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64` (raw bits — lossless).
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable byte buffer, consumable through [`Buf`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes {
            data: Vec::new(),
            pos: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the buffer is fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

/// A growable byte buffer, filled through [`BufMut`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Empties the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_big_endian_scalars() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_f64(-0.1);
        // Network order on the wire.
        assert_eq!(&buf[..3], &[0xAB, 0x12, 0x34]);
        let mut rd: &[u8] = &buf;
        assert_eq!(rd.get_u8(), 0xAB);
        assert_eq!(rd.get_u16(), 0x1234);
        assert_eq!(rd.get_u32(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(rd.get_f64().to_bits(), (-0.1f64).to_bits());
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn bytes_consumes_front_to_back() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.chunk(), &[3, 4]);
        assert_eq!(b.len(), 2);
        let frozen = BytesMut::with_capacity(2).freeze();
        assert!(frozen.is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn get_past_end_panics() {
        let mut rd: &[u8] = &[1u8];
        let _ = rd.get_u32();
    }
}
