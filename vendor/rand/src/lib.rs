//! A minimal, dependency-free, offline-vendored subset of the `rand` 0.8
//! API — exactly the surface this workspace uses: [`Rng::gen_range`] /
//! [`Rng::gen_bool`] over seeded [`rngs::StdRng`] / [`rngs::SmallRng`].
//!
//! The generator is xoshiro256** seeded through SplitMix64, so streams are
//! deterministic for a fixed seed (they differ from upstream `rand`'s
//! ChaCha-based `StdRng`, which is fine: the workspace only relies on
//! determinism and statistical quality, never on specific values).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a `u64` to the unit interval `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Floating rounding can land exactly on `end`; clamp back
                // into the half-open interval.
                if v < self.end { v } else { <$t>::from_bits(self.end.to_bits() - 1) }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
/// `span == 0` means the full `u64` domain.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span <= u64::MAX as u128 + 1);
    if span == 0 || span > u64::MAX as u128 {
        return rng.next_u64() as u128;
    }
    let span = span as u64;
    // Largest multiple of `span` not exceeding 2^64.
    let zone = u64::MAX - (u64::MAX % span + 1) % span.max(1);
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return (x % span) as u128;
        }
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias of [`StdRng`]; this vendored subset ships a single core.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 key expansion, as recommended by the xoshiro
            // authors; guarantees a non-zero state for any seed.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(0usize..=4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
