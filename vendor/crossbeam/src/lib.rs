//! Offline-vendored subset of `crossbeam`: the `channel` module with
//! unbounded multi-producer **multi-consumer** channels — the surface the
//! `haste-parallel` pool and the threaded negotiation engine use.
//!
//! Built on `std` mutex + condvar rather than crossbeam's lock-free queues;
//! semantics (clonable senders *and* receivers, disconnect on last drop,
//! blocking `recv`, draining iteration) match upstream for this subset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Unbounded MPMC channels, API-compatible with `crossbeam-channel`'s
    //! `unbounded` subset.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent value is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug without requiring `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half; clonable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable across threads (each message is
    /// delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails iff all receivers were dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                // Wake blocked receivers so they can observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails iff the channel is empty
        /// and all senders were dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// A draining blocking iterator; ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn iter_drains_until_disconnect() {
            let (tx, rx) = unbounded();
            std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn multi_consumer_delivers_each_message_once() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            let h1 = std::thread::spawn(move || rx.iter().count());
            let h2 = std::thread::spawn(move || rx2.iter().count());
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(h1.join().unwrap() + h2.join().unwrap(), 1000);
        }
    }
}
