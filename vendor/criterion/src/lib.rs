//! Offline-vendored subset of `criterion`: enough harness to compile and
//! run this workspace's `[[bench]]` targets without crates.io access.
//!
//! Each benchmark is timed with plain wall-clock batches (a short warm-up,
//! then `sample_size` timed batches) and the median batch time is printed.
//! There is no statistical analysis, no plotting, and no persistence —
//! numbers are indicative only, which matches how the repo's figure
//! pipeline uses its own `haste-bench` binaries for real measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, one per `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark (upstream default is larger;
    /// this harness favors fast runs).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_batch: u64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_batch {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_batch as u32);
    }
}

fn run_bench<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration batch: decide how many iterations make a batch long
    // enough to time (targets ≥ ~1 ms per batch, capped).
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_batch: 1,
    };
    f(&mut b);
    let per_iter = b.samples.last().copied().unwrap_or(Duration::ZERO);
    let iters = if per_iter < Duration::from_micros(10) {
        100
    } else if per_iter < Duration::from_millis(1) {
        10
    } else {
        1
    };

    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_batch: iters,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    println!("bench {id:<50} {median:>12.3?}/iter  ({sample_size} samples × {iters} iters)");
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3usize, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
