//! Offline-vendored subset of `parking_lot`: a non-poisoning [`Mutex`] and a
//! [`Condvar`] whose `wait` takes `&mut MutexGuard` — the API shape the
//! `haste-parallel` thread pool relies on. Implemented over `std::sync`
//! primitives (poison errors are swallowed, matching parking_lot's
//! poison-free semantics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of a locked [`Mutex`].
pub struct MutexGuard<'a, T> {
    // `Option` so `Condvar::wait` can temporarily take the std guard by
    // value; it is `Some` at every API boundary.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        assert!(*started);
    }
}
