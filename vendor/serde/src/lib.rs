//! Offline-vendored `serde` facade.
//!
//! The workspace's model types derive `Serialize` / `Deserialize` for
//! interoperability, but no serde format crate is shipped (scenario I/O uses
//! the plain-text format in `haste-model::io`). This facade provides the
//! trait names and re-exports the no-op derives so those annotations compile
//! without any crates.io access. If a real format crate is ever added, swap
//! this vendored pair for upstream `serde` — the annotations are already
//! upstream-compatible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
