//! Minimal parallel-execution substrate for the HASTE experiment harness.
//!
//! The simulation sweeps evaluate hundreds of independent random topologies
//! per figure; this crate provides the small amount of machinery needed to
//! spread that work across cores:
//!
//! * [`par_map`] / [`par_for_each`] — scoped parallel iteration over a slice
//!   (atomic index claiming, results returned in input order, worker panics
//!   propagate),
//! * [`par_map_reduce`] — parallel map followed by an associative fold,
//! * [`ThreadPool`] — a persistent pool for fire-and-forget jobs,
//! * [`default_threads`] — the machine's available parallelism.
//!
//! Rayon is the obvious off-the-shelf answer, but it is outside this
//! project's dependency allowlist; the subset needed here is small enough to
//! build safely on `std::thread::scope` + `crossbeam` channels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;

pub use pool::ThreadPool;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 if it cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a user-facing `threads` knob: `0` means "auto-detect via
/// [`default_threads`]", any other value is taken literally.
///
/// Every `threads` field in the workspace (`GreedyOptions`, `TabularOptions`,
/// `InstanceOptions`, `OfflineConfig`, `OnlineConfig`, the service daemon)
/// shares this convention, so `0` behaves identically everywhere. All
/// parallel paths are bit-deterministic in the thread count, so auto-detect
/// never changes results — only wall-clock.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        default_threads()
    } else {
        requested
    }
}

/// Applies `f` to every element of `items` in parallel and returns the
/// results in input order.
///
/// `f` receives `(index, &item)`. Work is claimed element-by-element via an
/// atomic counter, so uneven per-item cost balances automatically. With
/// `threads <= 1` (or a single item) the map runs inline on the caller's
/// thread. If any invocation of `f` panics, the panic propagates to the
/// caller once all workers have stopped.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let counter = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let counter = &counter;
            let f = &f;
            scope.spawn(move || loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                // The receiver sits below in the same scope; send only fails
                // if collection stopped early, in which case stopping the
                // worker is the right thing to do anyway.
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|slot| slot.expect("every index sent exactly once"))
            .collect()
    })
}

/// Runs `f` on every element in parallel for its side effects.
pub fn par_for_each<T, F>(items: &[T], threads: usize, f: F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        items.iter().enumerate().for_each(|(i, t)| f(i, t));
        return;
    }
    let counter = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let counter = &counter;
            let f = &f;
            scope.spawn(move || loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i, &items[i]);
            });
        }
    });
}

/// Applies `f` to every index in `0..n` in parallel and returns the results
/// in index order. Like [`par_map`] without needing a materialized slice —
/// the optimizers use it to scan candidate ranges.
pub fn par_map_range<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let counter = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let counter = &counter;
            let f = &f;
            scope.spawn(move || loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|slot| slot.expect("every index sent exactly once"))
            .collect()
    })
}

/// Parallel fold of `f(0), …, f(n-1)` with an associative `combine`.
///
/// Each worker folds its claimed indices locally; partials are combined on
/// the calling thread. When `combine` is associative **and commutative**
/// with a true `identity` (e.g. a total-order maximum), the result is
/// bit-identical for every thread count — the property the greedy argmax
/// scans rely on.
pub fn par_reduce_range<R, F, C>(n: usize, threads: usize, identity: R, f: F, combine: C) -> R
where
    R: Send + Clone,
    F: Fn(usize) -> R + Sync,
    C: Fn(R, R) -> R + Sync,
{
    if n == 0 {
        return identity;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).fold(identity, |acc, i| combine(acc, f(i)));
    }
    let counter = AtomicUsize::new(0);
    let partials = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let counter = &counter;
            let f = &f;
            let combine = &combine;
            let local_identity = identity.clone();
            handles.push(scope.spawn(move || {
                let mut acc = local_identity;
                loop {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    acc = combine(acc, f(i));
                }
                acc
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });
    partials.into_iter().fold(identity, &combine)
}

/// Parallel map followed by a fold with an associative `combine`.
///
/// Each worker folds its own share locally; the per-worker partials are then
/// combined on the calling thread, so `combine` must be associative and
/// `identity` a true identity for the result to be deterministic up to
/// `combine`'s associativity (floating-point sums may differ in the last
/// bits across thread counts).
pub fn par_map_reduce<T, R, F, C>(items: &[T], threads: usize, identity: R, f: F, combine: C) -> R
where
    T: Sync,
    R: Send + Clone,
    F: Fn(usize, &T) -> R + Sync,
    C: Fn(R, R) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return identity;
    }
    let threads = threads.clamp(1, n);
    let counter = AtomicUsize::new(0);
    let partials = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let counter = &counter;
            let f = &f;
            let combine = &combine;
            let local_identity = identity.clone();
            handles.push(scope.spawn(move || {
                let mut acc = local_identity;
                loop {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    acc = combine(acc, f(i, &items[i]));
                }
                acc
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });
    partials.into_iter().fold(identity, &combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, 8, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_single_thread_inline() {
        let items = vec![1, 2, 3];
        assert_eq!(par_map(&items, 1, |_, &x| x * x), vec![1, 4, 9]);
        assert_eq!(par_map(&items, 0, |_, &x| x * x), vec![1, 4, 9]);
    }

    #[test]
    fn par_for_each_visits_everything_once() {
        let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        let items: Vec<usize> = (0..500).collect();
        par_for_each(&items, 8, |_, &i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_reduce_sums() {
        let items: Vec<u64> = (1..=1000).collect();
        let total = par_map_reduce(&items, 8, 0u64, |_, &x| x, |a, b| a + b);
        assert_eq!(total, 500_500);
    }

    #[test]
    fn par_map_reduce_empty_returns_identity() {
        let items: Vec<u64> = vec![];
        let total = par_map_reduce(&items, 8, 42u64, |_, &x| x, |a, b| a + b);
        assert_eq!(total, 42);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(&items, 4, |_, &x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn resolve_threads_zero_is_auto_detect() {
        assert_eq!(resolve_threads(0), default_threads());
        for n in 1..=8 {
            assert_eq!(resolve_threads(n), n);
        }
    }

    #[test]
    fn uneven_work_completes() {
        let items: Vec<u64> = (0..64).rev().collect();
        let out = par_map(&items, 8, |_, &x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }
}
