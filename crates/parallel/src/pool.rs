//! A persistent thread pool for fire-and-forget jobs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{self, Sender};
use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers to implement
/// [`ThreadPool::wait_idle`].
struct Shared {
    pending: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

/// A fixed-size pool of worker threads executing `'static` jobs.
///
/// Jobs are dispatched through an unbounded channel; [`ThreadPool::wait_idle`]
/// blocks until every submitted job has finished. Dropping the pool closes
/// the channel and joins all workers (after letting queued jobs drain).
///
/// The experiment sweeps use the scoped [`crate::par_map`] instead (it can
/// borrow from the caller); the pool exists for long-lived pipelines such as
/// the threaded distributed engine's helpers, and as a reusable substrate.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::unbounded::<Job>();
        let shared = Arc::new(Shared {
            pending: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|idx| {
                let receiver = receiver.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("haste-pool-{idx}"))
                    .spawn(move || {
                        for job in receiver.iter() {
                            job();
                            if shared.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                                let _guard = shared.idle_lock.lock();
                                shared.idle_cv.notify_all();
                            }
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            shared,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job for execution.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.sender
            .as_ref()
            .expect("pool is live while not dropped")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Blocks until every job submitted so far has completed.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_lock.lock();
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            self.shared.idle_cv.wait(&mut guard);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain the queue and exit.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_drains_queue() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop joins
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let pool = ThreadPool::new(1);
        pool.wait_idle();
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn reusable_across_batches() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        for _round in 0..5 {
            for _ in 0..20 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }
}
