//! Shared protocol pieces of the distributed negotiation.

/// Configuration of a negotiation run (the distributed analogue of the
/// offline TabularGreedy options).
#[derive(Debug, Clone)]
pub struct NegotiationConfig {
    /// Number of colors `C` (1 = distributed locally greedy).
    pub colors: usize,
    /// Monte-Carlo color-vector samples (`C > 1` only).
    pub samples: usize,
    /// Seed of the *shared* randomness: all chargers derive the same color
    /// matrix from it, as deployed chargers would from a broadcast seed.
    pub seed: u64,
}

impl Default for NegotiationConfig {
    fn default() -> Self {
        NegotiationConfig {
            colors: 1,
            samples: 1,
            seed: 0,
        }
    }
}

impl NegotiationConfig {
    /// Effective sample count: a single deterministic sample when `C = 1`.
    pub fn effective_samples(&self) -> usize {
        if self.colors <= 1 {
            1
        } else {
            self.samples.max(1)
        }
    }
}

/// Communication counters of a negotiation (Fig. 16 of the paper).
///
/// A broadcast by charger `i` counts as `|N(s_i)|` messages (one per
/// neighbor). A *round* is one synchronous bid/decide exchange within a
/// (slot, color) negotiation.
#[derive(Debug, Clone, Default)]
pub struct NegotiationStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total rounds executed.
    pub rounds: u64,
    /// Marginal-gain oracle evaluations across all chargers' bid
    /// computations (each charger counts its own `best_bid` scans).
    pub oracle_marginals: u64,
    /// Commit operations chargers applied to their local sample states when
    /// fixing their own policies (neighbor-decide replays are not counted —
    /// they mirror a commit already counted at the fixing charger).
    pub oracle_commits: u64,
    /// Messages per decision slot (indexed by slot − range start).
    pub per_slot_messages: Vec<u64>,
    /// Rounds per decision slot.
    pub per_slot_rounds: Vec<u64>,
}

impl NegotiationStats {
    /// Creates counters for `slots` decision slots.
    pub fn new(slots: usize) -> Self {
        NegotiationStats {
            messages: 0,
            rounds: 0,
            oracle_marginals: 0,
            oracle_commits: 0,
            per_slot_messages: vec![0; slots],
            per_slot_rounds: vec![0; slots],
        }
    }

    /// Records `count` messages in decision slot `slot`.
    pub fn add_messages(&mut self, slot: usize, count: u64) {
        self.messages += count;
        self.per_slot_messages[slot] += count;
    }

    /// Records one round in decision slot `slot`.
    pub fn add_round(&mut self, slot: usize) {
        self.rounds += 1;
        self.per_slot_rounds[slot] += 1;
    }

    /// Merges another run's counters (slot-wise lengths may differ; the
    /// online loop renegotiates shrinking suffixes).
    pub fn absorb(&mut self, other: &NegotiationStats, slot_offset: usize) {
        self.messages += other.messages;
        self.rounds += other.rounds;
        self.oracle_marginals += other.oracle_marginals;
        self.oracle_commits += other.oracle_commits;
        let needed = slot_offset + other.per_slot_messages.len();
        if self.per_slot_messages.len() < needed {
            self.per_slot_messages.resize(needed, 0);
            self.per_slot_rounds.resize(needed, 0);
        }
        for (k, (&m, &r)) in other
            .per_slot_messages
            .iter()
            .zip(&other.per_slot_rounds)
            .enumerate()
        {
            self.per_slot_messages[slot_offset + k] += m;
            self.per_slot_rounds[slot_offset + k] += r;
        }
    }

    /// Average messages per decision slot.
    pub fn avg_messages_per_slot(&self) -> f64 {
        if self.per_slot_messages.is_empty() {
            return 0.0;
        }
        self.messages as f64 / self.per_slot_messages.len() as f64
    }

    /// Average rounds per decision slot.
    pub fn avg_rounds_per_slot(&self) -> f64 {
        if self.per_slot_rounds.is_empty() {
            return 0.0;
        }
        self.rounds as f64 / self.per_slot_rounds.len() as f64
    }
}

/// The shared color matrix: `color(seed, sample, partition) ∈ [0, C)`.
///
/// Every charger evaluates this pure function identically, so the Monte-
/// Carlo color samples agree network-wide without extra communication
/// (stand-in for the paper's uniformly random `c_{i,k}` with a broadcast
/// seed). SplitMix64 finalizer over the packed inputs.
#[inline]
pub fn color_of(seed: u64, sample: usize, partition: usize, colors: usize) -> usize {
    if colors <= 1 {
        return 0;
    }
    let mut z = seed
        ^ (sample as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (partition as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % colors as u64) as usize
}

/// The final rounding colors for each partition, derived from the shared
/// seed with a distinct stream tag (paper: each charger draws its own
/// partitions' colors uniformly; a shared seed makes the draw reproducible).
///
/// The engines now use best-of-N rounding over the sampled color vectors
/// instead (see `negotiate_rounds`); this function remains as the paper's
/// literal rounding rule for reference and experimentation.
#[inline]
pub fn final_color_of(seed: u64, partition: usize, colors: usize) -> usize {
    color_of(seed ^ 0xF1A1_C0DE_0000_0001, usize::MAX, partition, colors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_in_range_and_deterministic() {
        for c in [1usize, 2, 4, 8] {
            for s in 0..5 {
                for p in 0..100 {
                    let a = color_of(42, s, p, c);
                    let b = color_of(42, s, p, c);
                    assert_eq!(a, b);
                    assert!(a < c);
                }
            }
        }
    }

    #[test]
    fn colors_vary_with_inputs() {
        let c = 8;
        let mut distinct = std::collections::BTreeSet::new();
        for p in 0..64 {
            distinct.insert(color_of(1, 0, p, c));
        }
        assert!(distinct.len() >= 4, "color function is degenerate");
    }

    #[test]
    fn colors_roughly_uniform() {
        let c = 4;
        let mut counts = [0u32; 4];
        for p in 0..4000 {
            counts[color_of(7, 3, p, c)] += 1;
        }
        for &count in &counts {
            assert!((800..1200).contains(&count), "skewed: {counts:?}");
        }
    }

    #[test]
    fn final_colors_in_range() {
        for c in [1usize, 3, 5] {
            for p in 0..50 {
                assert!(final_color_of(9, p, c) < c);
            }
        }
    }

    #[test]
    fn stats_accumulate_and_absorb() {
        let mut a = NegotiationStats::new(3);
        a.add_messages(0, 5);
        a.add_round(0);
        a.add_round(1);
        let mut b = NegotiationStats::new(2);
        b.add_messages(1, 7);
        b.add_round(1);
        a.absorb(&b, 1);
        assert_eq!(a.messages, 12);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.per_slot_messages, vec![5, 0, 7]);
        assert_eq!(a.per_slot_rounds, vec![1, 1, 1]);
        assert!((a.avg_messages_per_slot() - 4.0).abs() < 1e-12);
        assert!((a.avg_rounds_per_slot() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_grows_slot_vectors() {
        let mut a = NegotiationStats::new(1);
        let mut b = NegotiationStats::new(4);
        b.add_messages(3, 2);
        a.absorb(&b, 2);
        assert_eq!(a.per_slot_messages.len(), 6);
        assert_eq!(a.per_slot_messages[5], 2);
    }
}
