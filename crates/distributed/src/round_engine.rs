//! Deterministic round-based negotiation engine (Algorithm 3's protocol,
//! simulated synchronously).
//!
//! For every (slot, color) pair the chargers repeatedly exchange bids — the
//! best marginal gain of any of their scheduling policies under the current
//! local knowledge — and the charger whose bid beats every unfixed
//! neighbor's (ties by lower id) fixes its policy and broadcasts the update.
//! Monotonicity guarantees a zero bid never becomes positive again, so
//! chargers drop out at their first zero bid; every round fixes at least the
//! globally best bidder, so the loop terminates in at most `n` rounds per
//! (slot, color).
//!
//! The engine keeps one global set of Monte-Carlo sample states. This is
//! *observationally identical* to each charger holding a local copy: any
//! charger able to affect a task is a neighbor of every other charger able
//! to affect it, so local views never diverge from the global one — the
//! [threaded engine](crate::negotiate_threaded) demonstrates this with
//! genuinely per-charger state and is tested to produce identical results.

use haste_core::{EnergyState, HasteRInstance};
use haste_submodular::{evaluate_selection, PartitionedObjective, Selection};

use crate::neighbors::NeighborGraph;
use crate::protocol::{color_of, NegotiationConfig, NegotiationStats};

/// Minimum gain considered worth bidding (guards float noise).
pub(crate) const GAIN_EPS: f64 = 1e-15;

/// Computes a charger's best bid for `partition` under color `c`: the
/// choice maximizing the summed marginal over the samples whose color
/// matches (falling back to all samples when none match, exactly like the
/// centralized TabularGreedy estimator). Allocation-free: this sits on the
/// innermost path of every negotiation round. Also returns the number of
/// marginal oracle evaluations the scan performed, for the negotiation's
/// oracle accounting.
pub(crate) fn best_bid(
    inst: &HasteRInstance,
    states: &[EnergyState],
    cfg: &NegotiationConfig,
    c: usize,
    partition: usize,
) -> (Option<(f64, usize)>, u64) {
    let choices = inst.num_choices(partition);
    if choices == 0 {
        return (None, 0);
    }
    let c_total = cfg.colors.max(1);
    let any_match = (0..states.len()).any(|s| color_of(cfg.seed, s, partition, c_total) == c);
    let mut best: Option<(f64, usize)> = None;
    let mut calls = 0u64;
    for x in 0..choices {
        let mut gain = 0.0;
        for (s, state) in states.iter().enumerate() {
            if !any_match || color_of(cfg.seed, s, partition, c_total) == c {
                gain += inst.marginal(state, partition, x);
                calls += 1;
            }
        }
        match best {
            Some((bg, _)) if gain <= bg => {}
            _ => best = Some((gain, x)),
        }
    }
    (best.filter(|&(g, _)| g > GAIN_EPS), calls)
}

/// Samples whose color for `partition` equals `c`.
pub(crate) fn matching_samples(cfg: &NegotiationConfig, partition: usize, c: usize) -> Vec<usize> {
    (0..cfg.effective_samples())
        .filter(|&s| color_of(cfg.seed, s, partition, cfg.colors.max(1)) == c)
        .collect()
}

/// Runs the negotiation over the whole instance and returns the selected
/// policies plus communication statistics.
pub fn negotiate_rounds(
    inst: &HasteRInstance,
    graph: &NeighborGraph,
    cfg: &NegotiationConfig,
) -> (Selection, NegotiationStats) {
    let n = graph.num_chargers();
    let k_total = inst.num_slots();
    let c_total = cfg.colors.max(1);
    let n_samples = cfg.effective_samples();
    let mut states: Vec<EnergyState> = (0..n_samples).map(|_| inst.new_state()).collect();
    let mut table: Vec<Vec<Option<usize>>> = vec![vec![None; c_total]; inst.num_partitions()];
    let mut stats = NegotiationStats::new(k_total);

    for rel_k in 0..k_total {
        #[allow(clippy::needless_range_loop)]
        for c in 0..c_total {
            // done[i]: charger i no longer participates in this (k, c).
            let mut done: Vec<bool> = (0..n)
                .map(|i| inst.num_choices(rel_k * n + i) == 0)
                .collect();
            loop {
                stats.add_round(rel_k);
                // Bid phase: every participating charger broadcasts.
                let mut bids: Vec<Option<(f64, usize)>> = vec![None; n];
                let mut any_participant = false;
                for i in 0..n {
                    if done[i] {
                        continue;
                    }
                    any_participant = true;
                    stats.add_messages(rel_k, graph.degree(i) as u64);
                    let p = rel_k * n + i;
                    let (bid, calls) = best_bid(inst, &states, cfg, c, p);
                    bids[i] = bid;
                    stats.oracle_marginals += calls;
                }
                if !any_participant {
                    break;
                }
                // Decide phase: local maxima fix their policies.
                let mut any_fixed = false;
                let mut fixers: Vec<(usize, usize)> = Vec::new();
                for i in 0..n {
                    let Some((gain, choice)) = bids[i] else {
                        // First zero bid → drop out for this (k, c).
                        done[i] = true;
                        continue;
                    };
                    let wins = graph.neighbors(i).iter().all(|&j| match bids[j] {
                        Some((gj, _)) => gain > gj || (gain == gj && i < j),
                        None => true,
                    });
                    if wins {
                        fixers.push((i, choice));
                    }
                }
                for &(i, choice) in &fixers {
                    let p = rel_k * n + i;
                    table[p][c] = Some(choice);
                    for s in matching_samples(cfg, p, c) {
                        inst.commit(&mut states[s], p, choice);
                        stats.oracle_commits += 1;
                    }
                    done[i] = true;
                    any_fixed = true;
                    // UPD broadcast.
                    stats.add_messages(rel_k, graph.degree(i) as u64);
                }
                if !any_fixed {
                    break;
                }
            }
        }
    }

    // Rounding: every charger can reconstruct all N sampled color vectors
    // from the shared seed, so the network can agree on the best sample
    // with one cheap aggregation (not part of the per-slot negotiation the
    // paper counts, hence not in the message stats). With C = 1 there is a
    // single deterministic sample and this is a no-op. Values are replayed
    // from the table in partition order so both engines compare identical
    // floating-point sums.
    drop(states);
    let mut best: Option<(Vec<Option<usize>>, f64)> = None;
    for s in 0..n_samples {
        let choices: Vec<Option<usize>> = (0..inst.num_partitions())
            .map(|p| table[p][color_of(cfg.seed, s, p, c_total)])
            .collect();
        let value = evaluate_selection(inst, &choices);
        if best.as_ref().is_none_or(|(_, bv)| value > *bv) {
            best = Some((choices, value));
        }
    }
    let (choices, value) =
        best.unwrap_or_else(|| (Selection::empty(inst.num_partitions()).choices, 0.0));
    (Selection { choices, value }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haste_core::DominantScope;
    use haste_geometry::{Angle, Vec2};
    use haste_model::{
        evaluate_relaxed, Charger, ChargingParams, CoverageMap, Scenario, Task, TimeGrid,
    };

    fn line_scenario() -> Scenario {
        let params =
            ChargingParams::simulation_default().with_receiving_angle(std::f64::consts::TAU);
        Scenario::new(
            params,
            TimeGrid::minutes(4),
            vec![
                Charger::new(0, Vec2::new(0.0, 0.0)),
                Charger::new(1, Vec2::new(30.0, 0.0)),
                Charger::new(2, Vec2::new(60.0, 0.0)),
            ],
            vec![
                Task::new(0, Vec2::new(0.0, 10.0), Angle::ZERO, 0, 4, 960.0, 1.0),
                Task::new(1, Vec2::new(15.0, 0.0), Angle::ZERO, 0, 4, 960.0, 1.0),
                Task::new(2, Vec2::new(45.0, 0.0), Angle::ZERO, 0, 4, 960.0, 1.0),
                Task::new(3, Vec2::new(60.0, 10.0), Angle::ZERO, 0, 4, 960.0, 1.0),
            ],
            0.0,
            0,
        )
        .unwrap()
    }

    #[test]
    fn negotiation_matches_relaxed_evaluator() {
        let s = line_scenario();
        let cov = CoverageMap::build(&s);
        let graph = NeighborGraph::build(&cov);
        let inst = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
        let (sel, stats) = negotiate_rounds(&inst, &graph, &NegotiationConfig::default());
        let schedule = inst.materialize(&sel);
        let report = evaluate_relaxed(&s, &cov, &schedule);
        assert!((sel.value - report.total_utility).abs() < 1e-9);
        assert!(stats.messages > 0);
        assert!(stats.rounds >= inst.num_slots() as u64);
    }

    #[test]
    fn negotiation_meets_half_of_optimum() {
        let s = line_scenario();
        let cov = CoverageMap::build(&s);
        let graph = NeighborGraph::build(&cov);
        let inst = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
        let opt = haste_submodular::brute_force(&inst, 1 << 24).unwrap();
        for colors in [1usize, 4] {
            let (sel, _) = negotiate_rounds(
                &inst,
                &graph,
                &NegotiationConfig {
                    colors,
                    samples: 16,
                    seed: 5,
                },
            );
            assert!(
                sel.value >= 0.5 * opt.value - 1e-9,
                "C={colors}: {} < half of {}",
                sel.value,
                opt.value
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = line_scenario();
        let cov = CoverageMap::build(&s);
        let graph = NeighborGraph::build(&cov);
        let inst = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
        let cfg = NegotiationConfig {
            colors: 4,
            samples: 8,
            seed: 77,
        };
        let (a, sa) = negotiate_rounds(&inst, &graph, &cfg);
        let (b, sb) = negotiate_rounds(&inst, &graph, &cfg);
        assert_eq!(a.choices, b.choices);
        assert_eq!(sa.messages, sb.messages);
        assert_eq!(sa.rounds, sb.rounds);
    }

    #[test]
    fn empty_instance_sends_nothing() {
        let mut s = line_scenario();
        s.tasks.clear();
        let cov = CoverageMap::build(&s);
        let graph = NeighborGraph::build(&cov);
        let inst = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
        let (sel, stats) = negotiate_rounds(&inst, &graph, &NegotiationConfig::default());
        assert_eq!(sel.value, 0.0);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn contention_resolves_by_gain_then_id() {
        // Two chargers able to serve one shared task; only one should point
        // at it per slot (the second charger's marginal after the first
        // saturates the slot is smaller but still positive — both may
        // serve; what matters is the negotiation terminates and beats
        // the single-charger utility).
        let params =
            ChargingParams::simulation_default().with_receiving_angle(std::f64::consts::TAU);
        let s = Scenario::new(
            params,
            TimeGrid::minutes(2),
            vec![
                Charger::new(0, Vec2::new(0.0, 0.0)),
                Charger::new(1, Vec2::new(20.0, 0.0)),
            ],
            vec![Task::new(
                0,
                Vec2::new(10.0, 0.0),
                Angle::ZERO,
                0,
                2,
                2000.0,
                1.0,
            )],
            0.0,
            0,
        )
        .unwrap();
        let cov = CoverageMap::build(&s);
        let graph = NeighborGraph::build(&cov);
        assert_eq!(graph.degree(0), 1);
        let inst = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
        let (sel, stats) = negotiate_rounds(&inst, &graph, &NegotiationConfig::default());
        // Both chargers end up serving the task (their gains stay positive).
        assert_eq!(sel.num_chosen(), 4);
        // Two rounds of competition per slot at minimum.
        assert!(stats.rounds >= 4);
    }
}
