//! The distributed **online** scheduler: Algorithm 3 embedded in the
//! arrival event loop.
//!
//! Charging tasks become known at their release slots. On every arrival the
//! affected chargers re-negotiate their future policies; because of the
//! rescheduling delay `τ` the new plan only takes effect `τ` slots later —
//! until then the previous plan keeps executing (and whatever it delivered
//! is accounted as the initial energy of the re-negotiation). The final
//! schedule is scored by the full P1 evaluator (switching delay `ρ`
//! included), which is how the competitive ratio
//! `½(1 − ρ)(1 − 1/e)` of Theorem 6.1 is exercised empirically.

use std::time::Instant;

use haste_core::{
    solve_baseline_with_delay, BaselineKind, HasteRInstance, InstanceOptions, SolveResult,
    SolverMetrics,
};
use haste_model::{
    evaluate, evaluate_relaxed, CoverageMap, EvalOptions, EvalReport, Scenario, Schedule,
};
use haste_submodular::Selection;

use crate::neighbors::NeighborGraph;
use crate::protocol::{NegotiationConfig, NegotiationStats};
use crate::round_engine::negotiate_rounds;
use crate::threaded_engine::negotiate_threaded;

/// Which negotiation engine executes each re-planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Sequential synchronous rounds (fast, exact message accounting).
    #[default]
    Rounds,
    /// One thread per charger with real message passing (identical output).
    Threaded,
}

/// A charger failure event: the charger stops emitting (and negotiating)
/// from `slot` onward. The network detects it at `slot` and, after the
/// rescheduling delay `τ`, replans around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChargerFailure {
    /// Which charger dies.
    pub charger: haste_model::ChargerId,
    /// First slot it is dead in.
    pub slot: haste_model::Slot,
}

/// Configuration of the online scheduler.
#[derive(Debug, Clone, Default)]
pub struct OnlineConfig {
    /// Negotiation parameters (colors, samples, shared seed).
    pub negotiation: NegotiationConfig,
    /// Engine choice.
    pub engine: EngineKind,
    /// Injected charger failures (robustness studies / failure testing).
    pub failures: Vec<ChargerFailure>,
    /// Localized renegotiation: on each arrival only the chargers able to
    /// serve the new tasks (plus their one-hop neighbors) replan; everyone
    /// else keeps their current plan, which enters the replanning as fixed
    /// background energy. This is the locality the paper's Algorithm 3
    /// describes ("invoked at charger `s_i` upon arrival of new charging
    /// tasks that can be charged by `s_i`"); the default `false` replans
    /// globally, which is what the reported figures use.
    pub localized: bool,
    /// Worker threads for the instance (re)builds on each negotiation
    /// (1 = sequential, `0` = auto-detect via
    /// `haste_parallel::default_threads`). The executed schedule is
    /// bit-identical for every value; this only parallelizes dominant-set
    /// extraction.
    pub threads: usize,
}

/// Result of an online run.
#[derive(Debug, Clone)]
pub struct OnlineResult {
    /// The executed schedule.
    pub schedule: Schedule,
    /// Full P1 evaluation (switching delay included).
    pub report: EvalReport,
    /// HASTE-R value of the executed schedule (no switching delay).
    pub relaxed_value: f64,
    /// Communication counters accumulated over all re-negotiations,
    /// indexed by absolute slot.
    pub stats: NegotiationStats,
    /// Solver phase timings and oracle counters accumulated over all
    /// re-negotiations (`instance_build`, `greedy` = negotiation time,
    /// `rounding` = materialization, `p1_eval` = final evaluation).
    pub metrics: SolverMetrics,
}

/// Runs the distributed online algorithm over a scenario whose tasks carry
/// their release slots.
pub fn solve_online(
    scenario: &Scenario,
    coverage: &CoverageMap,
    config: &OnlineConfig,
) -> OnlineResult {
    let horizon = scenario.active_horizon();
    let n = scenario.num_chargers();
    let threads = haste_parallel::resolve_threads(config.threads);
    let graph = NeighborGraph::build(coverage);
    let mut schedule = Schedule::empty(n, scenario.grid.num_slots);
    let mut stats = NegotiationStats::new(horizon);
    let mut metrics = SolverMetrics {
        threads,
        ..SolverMetrics::default()
    };
    let mut known = vec![false; scenario.num_tasks()];
    let mut disabled = vec![false; n];
    // Physical death slot per charger (cleared from the executed schedule
    // immediately, independent of the replanning delay).
    let mut dead_from: Vec<Option<usize>> = vec![None; n];

    // Re-negotiation events: one per distinct task release or charger
    // failure slot.
    let mut events: Vec<usize> = scenario.tasks.iter().map(|t| t.release_slot).collect();
    events.extend(config.failures.iter().map(|f| f.slot));
    events.sort_unstable();
    events.dedup();

    for &t in &events {
        for task in &scenario.tasks {
            if task.release_slot <= t {
                known[task.id.index()] = true;
            }
        }
        for failure in &config.failures {
            if failure.slot <= t {
                let i = failure.charger.index();
                disabled[i] = true;
                let first = dead_from[i].map_or(failure.slot, |d| d.min(failure.slot));
                dead_from[i] = Some(first);
            }
        }
        // A dead charger stops emitting the moment it dies, regardless of
        // how long the replanning takes.
        clear_dead(&mut schedule, &dead_from);
        let arrived_now: Vec<usize> = scenario
            .tasks
            .iter()
            .filter(|task| task.release_slot == t)
            .map(|task| task.id.index())
            .collect();
        let failed_now: Vec<usize> = config
            .failures
            .iter()
            .filter(|f| f.slot == t)
            .map(|f| f.charger.index())
            .collect();
        let replanned = replan_event(
            scenario,
            coverage,
            &graph,
            config,
            &mut schedule,
            ReplanEvent {
                slot: t,
                horizon,
                known: Some(&known),
                disabled: &disabled,
                arrived_now: &arrived_now,
                failed_now: &failed_now,
                threads,
            },
            &mut stats,
            &mut metrics,
        );
        // Holding (inside `replan_event`) must never resurrect a dead
        // charger.
        if replanned {
            clear_dead(&mut schedule, &dead_from);
        }
    }
    clear_dead(&mut schedule, &dead_from);

    // haste-lint: allow(D2) — phase timing feeds SolverMetrics, not algorithm state
    let eval_start = Instant::now();
    let report = evaluate(scenario, coverage, &schedule, EvalOptions::default());
    let relaxed = evaluate_relaxed(scenario, coverage, &schedule);
    metrics.p1_eval += eval_start.elapsed();
    metrics.oracle_marginals = stats.oracle_marginals;
    metrics.oracle_commits = stats.oracle_commits;
    OnlineResult {
        schedule,
        report,
        relaxed_value: relaxed.total_utility,
        stats,
        metrics,
    }
}

/// Blanks out every slot at or past a charger's death.
fn clear_dead(schedule: &mut Schedule, dead_from: &[Option<usize>]) {
    for (i, dead) in dead_from.iter().enumerate() {
        if let Some(d) = *dead {
            for k in d..schedule.num_slots() {
                schedule.set(haste_model::ChargerId(i as u32), k, None);
            }
        }
    }
}

/// One re-negotiation event, as seen by [`replan_event`].
pub(crate) struct ReplanEvent<'a> {
    /// The slot the event fires at (task release / failure detection).
    pub slot: usize,
    /// Planning horizon (`scenario.active_horizon()` for batch runs; the
    /// incremental engine passes the full grid).
    pub horizon: usize,
    /// Which tasks are known at this event (`None` = all of them, which is
    /// what the incremental engine uses: its scenario only ever contains
    /// arrived tasks).
    pub known: Option<&'a [bool]>,
    /// Chargers disabled by failures (never participate again).
    pub disabled: &'a [bool],
    /// Task indices released exactly at `slot` (localized scope seeds).
    pub arrived_now: &'a [usize],
    /// Charger indices failing exactly at `slot` (localized scope seeds).
    pub failed_now: &'a [usize],
    /// Resolved worker-thread count for instance builds.
    pub threads: usize,
}

/// Executes one re-negotiation: freezes the prefix up to `slot + τ`, builds
/// the suffix HASTE-R instance, negotiates, and splices the new plan into
/// `schedule`. Returns `false` when the event is a no-op (past the horizon,
/// or nobody replans). Shared verbatim between [`solve_online`] and the
/// incremental [`crate::engine::OnlineEngine`] so both produce bit-identical
/// schedules for the same event sequence.
#[allow(clippy::too_many_arguments)]
pub(crate) fn replan_event(
    scenario: &Scenario,
    coverage: &CoverageMap,
    graph: &NeighborGraph,
    config: &OnlineConfig,
    schedule: &mut Schedule,
    event: ReplanEvent<'_>,
    stats: &mut NegotiationStats,
    metrics: &mut SolverMetrics,
) -> bool {
    let n = scenario.num_chargers();
    // The new plan takes effect after the rescheduling delay.
    let effective = (event.slot + scenario.tau).min(event.horizon);
    if effective >= event.horizon {
        return false;
    }
    // Which chargers replan at this event: everyone (global mode), or —
    // in localized mode — the chargers able to serve a task released
    // right now, the newly failed ones, and one hop of neighbors of each
    // (the paper's negotiation scope).
    let replanning: Vec<bool> = if config.localized {
        let mut core = vec![false; n];
        for &task in event.arrived_now {
            for c in coverage.chargers_of(haste_model::TaskId(task as u32)) {
                core[c.index()] = true;
            }
        }
        for &charger in event.failed_now {
            core[charger] = true;
        }
        let mut aff = core.clone();
        for (i, &is_core) in core.iter().enumerate() {
            if is_core {
                for &j in graph.neighbors(i) {
                    aff[j] = true;
                }
            }
        }
        aff
    } else {
        vec![true; n]
    };
    let planning_disabled: Vec<bool> = (0..n)
        .map(|i| event.disabled[i] || !replanning[i])
        .collect();
    if planning_disabled.iter().all(|&d| d) {
        return false;
    }

    // Energy the frozen prefix already delivered (HASTE-R semantics —
    // the negotiation plans against the relaxed objective, exactly as
    // the analysis of Theorem 6.1 does).
    let prefix = evaluate(
        scenario,
        coverage,
        schedule,
        EvalOptions {
            rho: Some(0.0),
            slot_limit: Some(effective),
            ..EvalOptions::default()
        },
    );
    let mut initial_energy = prefix.per_task_energy;
    // In localized mode the kept future plans of non-replanning
    // chargers enter as fixed background energy (utility only depends
    // on each task's total, so the slot structure is irrelevant here).
    let snapshot = config.localized.then(|| schedule.clone());
    if config.localized {
        let mut masked = schedule.clone();
        for (i, &replans) in replanning.iter().enumerate() {
            if replans {
                for k in effective..schedule.num_slots() {
                    masked.set(haste_model::ChargerId(i as u32), k, None);
                }
            }
        }
        let kept = evaluate(
            scenario,
            coverage,
            &masked,
            EvalOptions {
                rho: Some(0.0),
                slot_start: Some(effective),
                ..EvalOptions::default()
            },
        );
        for (total, add) in initial_energy.iter_mut().zip(&kept.per_task_energy) {
            *total += add;
        }
    }
    // haste-lint: allow(D2) — phase timing feeds SolverMetrics, not algorithm state
    let build_start = Instant::now();
    let instance = HasteRInstance::build_with(
        scenario,
        coverage,
        InstanceOptions {
            slot_range: Some(effective..event.horizon),
            known_tasks: event.known.map(<[bool]>::to_vec),
            initial_energy: Some(initial_energy),
            disabled_chargers: planning_disabled
                .iter()
                .any(|&d| d)
                .then(|| planning_disabled.clone()),
            threads: Some(event.threads),
            ..InstanceOptions::default()
        },
    );
    metrics.instance_build += build_start.elapsed();
    // haste-lint: allow(D2) — phase timing feeds SolverMetrics, not algorithm state
    let negotiate_start = Instant::now();
    let (selection, run_stats): (Selection, NegotiationStats) = match config.engine {
        EngineKind::Rounds => negotiate_rounds(&instance, graph, &config.negotiation),
        EngineKind::Threaded => negotiate_threaded(&instance, graph, &config.negotiation),
    };
    metrics.greedy += negotiate_start.elapsed();
    // haste-lint: allow(D2) — phase timing feeds SolverMetrics, not algorithm state
    let rounding_start = Instant::now();
    instance.materialize_into(&selection, schedule);
    metrics.rounding += rounding_start.elapsed();
    // Localized mode: restore the kept plans of non-replanning chargers
    // (materialize_into wrote None over their partitions).
    if let Some(snapshot) = snapshot {
        for (i, &replans) in replanning.iter().enumerate() {
            if !replans {
                let id = haste_model::ChargerId(i as u32);
                for k in effective..schedule.num_slots() {
                    schedule.set(id, k, snapshot.get(id, k));
                }
            }
        }
    }
    // Chargers hold their last orientation through unassigned slots
    // (free top-up at zero switching cost); later renegotiations
    // overwrite the held suffix anyway.
    schedule.hold_orientations();
    stats.absorb(&run_stats, effective);
    true
}

/// Runs a baseline in the online setting: chargers only react to a task
/// `τ` slots after its release (their rescheduling delay), everything else
/// identical to the offline baseline.
pub fn solve_baseline_online(
    scenario: &Scenario,
    coverage: &CoverageMap,
    kind: BaselineKind,
) -> SolveResult {
    solve_baseline_with_delay(scenario, coverage, kind, scenario.tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haste_core::{solve_offline, OfflineConfig};
    use haste_geometry::{Angle, Vec2};
    use haste_model::{Charger, ChargingParams, Task, TimeGrid};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_scenario(seed: u64, n: usize, m: usize, tau: usize) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = ChargingParams::simulation_default();
        let chargers = (0..n)
            .map(|i| {
                Charger::new(
                    i as u32,
                    Vec2::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)),
                )
            })
            .collect();
        let tasks = (0..m)
            .map(|j| {
                let release = rng.gen_range(0..5usize);
                let duration = rng.gen_range(2 * tau.max(1)..=8usize.max(2 * tau + 1));
                Task::new(
                    j as u32,
                    Vec2::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)),
                    Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
                    release,
                    release + duration,
                    rng.gen_range(500.0..3000.0),
                    1.0 / m as f64,
                )
            })
            .collect();
        Scenario::new(
            params,
            TimeGrid::minutes(16),
            chargers,
            tasks,
            1.0 / 12.0,
            tau,
        )
        .unwrap()
    }

    #[test]
    fn online_with_no_delay_and_single_release_matches_offline_greedy_quality() {
        // Everything released at slot 0 and τ = 0 → one negotiation over
        // the full horizon; its value must be in the same class as the
        // centralized greedy (both are locally greedy executions, possibly
        // in different partition orders).
        let mut s = random_scenario(3, 5, 10, 0);
        for task in &mut s.tasks {
            let d = task.end_slot - task.release_slot;
            task.release_slot = 0;
            task.end_slot = d;
        }
        s.validate().unwrap();
        let cov = CoverageMap::build(&s);
        let online = solve_online(&s, &cov, &OnlineConfig::default());
        let offline = solve_offline(&s, &cov, &OfflineConfig::greedy());
        // Equal guarantee class: allow a modest spread between the two
        // greedy execution orders.
        assert!(
            online.relaxed_value >= 0.8 * offline.relaxed_value - 1e-9,
            "online {} vs offline {}",
            online.relaxed_value,
            offline.relaxed_value
        );
    }

    #[test]
    fn rescheduling_delay_only_hurts() {
        let s0 = random_scenario(5, 5, 12, 0);
        let mut s2 = s0.clone();
        s2.tau = 2;
        let cov = CoverageMap::build(&s0);
        let r0 = solve_online(&s0, &cov, &OnlineConfig::default());
        let r2 = solve_online(&s2, &cov, &OnlineConfig::default());
        assert!(
            r2.relaxed_value <= r0.relaxed_value + 1e-9,
            "tau=2 {} should not beat tau=0 {}",
            r2.relaxed_value,
            r0.relaxed_value
        );
    }

    #[test]
    fn online_beats_or_matches_online_baselines_on_average() {
        let mut wins = 0;
        let trials = 5;
        for seed in 0..trials {
            let s = random_scenario(100 + seed, 6, 14, 1);
            let cov = CoverageMap::build(&s);
            let online = solve_online(&s, &cov, &OnlineConfig::default());
            let bu = solve_baseline_online(&s, &cov, BaselineKind::GreedyUtility);
            let bc = solve_baseline_online(&s, &cov, BaselineKind::GreedyCover);
            if online.report.total_utility >= bu.report.total_utility - 1e-9
                && online.report.total_utility >= bc.report.total_utility - 1e-9
            {
                wins += 1;
            }
        }
        assert!(
            wins * 2 >= trials,
            "online HASTE lost to baselines in {} of {trials} trials",
            trials - wins
        );
    }

    #[test]
    fn engines_agree_online() {
        let s = random_scenario(8, 5, 10, 1);
        let cov = CoverageMap::build(&s);
        let rounds = solve_online(
            &s,
            &cov,
            &OnlineConfig {
                engine: EngineKind::Rounds,
                ..OnlineConfig::default()
            },
        );
        let threaded = solve_online(
            &s,
            &cov,
            &OnlineConfig {
                engine: EngineKind::Threaded,
                ..OnlineConfig::default()
            },
        );
        assert_eq!(rounds.schedule, threaded.schedule);
        assert_eq!(rounds.stats.messages, threaded.stats.messages);
    }

    #[test]
    fn report_value_bounded_by_relaxed() {
        let s = random_scenario(13, 5, 10, 1);
        let cov = CoverageMap::build(&s);
        let r = solve_online(&s, &cov, &OnlineConfig::default());
        assert!(r.report.total_utility <= r.relaxed_value + 1e-9);
        assert!(r.report.total_utility >= (1.0 - s.rho) * r.relaxed_value - 1e-9);
    }

    #[test]
    fn localized_replanning_close_to_global_and_cheaper() {
        for seed in [41u64, 42, 43] {
            let s = random_scenario(seed, 8, 20, 1);
            let cov = CoverageMap::build(&s);
            let global = solve_online(&s, &cov, &OnlineConfig::default());
            let local = solve_online(
                &s,
                &cov,
                &OnlineConfig {
                    localized: true,
                    ..OnlineConfig::default()
                },
            );
            assert!(
                local.stats.messages <= global.stats.messages,
                "seed {seed}: localized sent more messages ({} vs {})",
                local.stats.messages,
                global.stats.messages
            );
            assert!(
                local.relaxed_value >= 0.85 * global.relaxed_value - 1e-9,
                "seed {seed}: localized {} far below global {}",
                local.relaxed_value,
                global.relaxed_value
            );
        }
    }

    #[test]
    fn localized_engines_agree() {
        let s = random_scenario(44, 6, 14, 1);
        let cov = CoverageMap::build(&s);
        let cfg = OnlineConfig {
            localized: true,
            ..OnlineConfig::default()
        };
        let rounds = solve_online(&s, &cov, &cfg);
        let threaded = solve_online(
            &s,
            &cov,
            &OnlineConfig {
                engine: EngineKind::Threaded,
                ..cfg
            },
        );
        assert_eq!(rounds.schedule, threaded.schedule);
        assert_eq!(rounds.stats.messages, threaded.stats.messages);
    }

    #[test]
    fn online_baseline_with_zero_tau_equals_offline_baseline() {
        let mut s = random_scenario(31, 5, 12, 0);
        s.tau = 0;
        let cov = CoverageMap::build(&s);
        for kind in [
            haste_core::BaselineKind::GreedyUtility,
            haste_core::BaselineKind::GreedyCover,
        ] {
            let online = solve_baseline_online(&s, &cov, kind);
            let offline = haste_core::solve_baseline(&s, &cov, kind);
            assert_eq!(online.schedule, offline.schedule, "{}", kind.name());
        }
    }

    #[test]
    fn failed_charger_emits_nothing_after_death() {
        let s = random_scenario(21, 4, 10, 1);
        let cov = CoverageMap::build(&s);
        let kill_slot = 3;
        let cfg = OnlineConfig {
            failures: vec![ChargerFailure {
                charger: haste_model::ChargerId(0),
                slot: kill_slot,
            }],
            ..OnlineConfig::default()
        };
        let r = solve_online(&s, &cov, &cfg);
        for k in kill_slot..s.grid.num_slots {
            assert_eq!(
                r.schedule.get(haste_model::ChargerId(0), k),
                None,
                "dead charger oriented in slot {k}"
            );
        }
        // Failure can only cost utility.
        let healthy = solve_online(&s, &cov, &OnlineConfig::default());
        assert!(r.report.total_utility <= healthy.report.total_utility + 1e-9);
    }

    #[test]
    fn killing_every_charger_at_zero_yields_nothing() {
        let s = random_scenario(22, 3, 8, 1);
        let cov = CoverageMap::build(&s);
        let failures = (0..3)
            .map(|i| ChargerFailure {
                charger: haste_model::ChargerId(i),
                slot: 0,
            })
            .collect();
        let r = solve_online(
            &s,
            &cov,
            &OnlineConfig {
                failures,
                ..OnlineConfig::default()
            },
        );
        assert_eq!(r.report.total_utility, 0.0);
    }

    #[test]
    fn survivors_replan_around_a_failure() {
        // Two chargers sharing one long task; kill one mid-way — the other
        // must keep serving and total utility must beat "kill both".
        let s = random_scenario(23, 2, 6, 1);
        let cov = CoverageMap::build(&s);
        let one_dead = solve_online(
            &s,
            &cov,
            &OnlineConfig {
                failures: vec![ChargerFailure {
                    charger: haste_model::ChargerId(1),
                    slot: 2,
                }],
                ..OnlineConfig::default()
            },
        );
        let both_dead = solve_online(
            &s,
            &cov,
            &OnlineConfig {
                failures: vec![
                    ChargerFailure {
                        charger: haste_model::ChargerId(0),
                        slot: 2,
                    },
                    ChargerFailure {
                        charger: haste_model::ChargerId(1),
                        slot: 2,
                    },
                ],
                ..OnlineConfig::default()
            },
        );
        assert!(one_dead.report.total_utility >= both_dead.report.total_utility - 1e-12);
        // Engines agree under failures too.
        let threaded = solve_online(
            &s,
            &cov,
            &OnlineConfig {
                engine: EngineKind::Threaded,
                failures: vec![ChargerFailure {
                    charger: haste_model::ChargerId(1),
                    slot: 2,
                }],
                ..OnlineConfig::default()
            },
        );
        assert_eq!(one_dead.schedule, threaded.schedule);
    }

    #[test]
    fn metrics_are_monotone_sane() {
        // Seed 100 is known to produce a served scenario (it also drives
        // `online_beats_or_matches_online_baselines_on_average`).
        let s = random_scenario(100, 6, 14, 1);
        let cov = CoverageMap::build(&s);
        let r = solve_online(&s, &cov, &OnlineConfig::default());
        // `OnlineConfig::default()` leaves `threads: 0` = auto-detect.
        assert_eq!(r.metrics.threads, haste_parallel::resolve_threads(0));
        assert!(r.metrics.threads >= 1);
        assert!(r.metrics.oracle_marginals > 0);
        assert!(r.metrics.oracle_commits > 0);
        assert_eq!(r.metrics.oracle_marginals, r.stats.oracle_marginals);
        assert_eq!(r.metrics.oracle_commits, r.stats.oracle_commits);
        assert!(r.metrics.total_time() >= r.metrics.greedy);
        // The online loop never builds a coverage map itself.
        assert_eq!(r.metrics.coverage_build, std::time::Duration::ZERO);
    }

    #[test]
    fn threads_do_not_change_the_online_solution() {
        let s = random_scenario(19, 6, 14, 1);
        let cov = CoverageMap::build(&s);
        let base = solve_online(&s, &cov, &OnlineConfig::default());
        let par = solve_online(
            &s,
            &cov,
            &OnlineConfig {
                threads: 4,
                ..OnlineConfig::default()
            },
        );
        assert_eq!(base.schedule, par.schedule);
        assert_eq!(
            base.relaxed_value.to_bits(),
            par.relaxed_value.to_bits(),
            "threads changed the online value"
        );
        assert_eq!(base.stats.messages, par.stats.messages);
        assert_eq!(base.metrics.oracle_marginals, par.metrics.oracle_marginals);
    }

    #[test]
    fn empty_scenario() {
        let mut s = random_scenario(1, 3, 5, 1);
        s.tasks.clear();
        let cov = CoverageMap::build(&s);
        let r = solve_online(&s, &cov, &OnlineConfig::default());
        assert_eq!(r.report.total_utility, 0.0);
        assert_eq!(r.stats.messages, 0);
    }
}
