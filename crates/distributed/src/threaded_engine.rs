//! Concurrent negotiation engine: one OS thread per charger, message
//! passing over crossbeam channels.
//!
//! This engine demonstrates that Algorithm 3 really is distributed: each
//! charger thread holds *only its local view* of the per-sample energy
//! states and updates it exclusively from `Decide` messages received from
//! its neighbors. The protocol is identical to the
//! [round engine](crate::negotiate_rounds) — synchronous bid/decide rounds
//! per (slot, color) with the same deterministic winner rule — so both
//! engines produce bit-identical selections regardless of thread scheduling
//! (asserted by tests and the `distributed` bench).
//!
//! Round pacing uses a [`std::sync::Barrier`] plus one shared "anyone fixed
//! this round?" flag; a deployed system would detect quiescence with its
//! own termination protocol, which is orthogonal to what the paper measures
//! (bids and updates — the messages this engine counts).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

use crossbeam::channel::{unbounded, Receiver, Sender};
use haste_core::{EnergyState, HasteRInstance};
use haste_submodular::{evaluate_selection, PartitionedObjective, Selection};

use crate::neighbors::NeighborGraph;
use crate::protocol::{NegotiationConfig, NegotiationStats};
use crate::round_engine::{best_bid, matching_samples};

/// One message on the control channel between neighboring chargers.
#[derive(Debug, Clone, Copy)]
enum Msg {
    /// `ΔF*` announcement: the sender's best (gain, choice) for the current
    /// (slot, color), or `None` if it has dropped out.
    Bid {
        from: usize,
        bid: Option<(f64, usize)>,
    },
    /// End-of-round decision: `Some(choice)` iff the sender fixed a policy
    /// this round (the paper's `UPD` message).
    Decide {
        from: usize,
        fixed_choice: Option<usize>,
    },
}

/// Runs the negotiation with one thread per charger. Produces the same
/// selection and message/round counts as [`crate::negotiate_rounds`].
pub fn negotiate_threaded(
    inst: &HasteRInstance,
    graph: &NeighborGraph,
    cfg: &NegotiationConfig,
) -> (Selection, NegotiationStats) {
    let n = graph.num_chargers();
    let k_total = inst.num_slots();
    let c_total = cfg.colors.max(1);
    if n == 0 || k_total == 0 {
        return (
            Selection::empty(inst.num_partitions()),
            NegotiationStats::new(k_total),
        );
    }

    // Mailboxes: one channel per charger; senders handed to its neighbors.
    let (senders, receivers): (Vec<Sender<Msg>>, Vec<Receiver<Msg>>) =
        (0..n).map(|_| unbounded()).unzip();

    let barrier = Barrier::new(n);
    let any_fixed = AtomicBool::new(false);
    let total_messages = AtomicU64::new(0);
    // Oracle accounting mirrors the round engine: each charger counts its
    // own bid scans and own-fix commits (neighbor Decide replays are the
    // distributed copy of a commit already counted at the fixer).
    let total_marginals = AtomicU64::new(0);
    let total_commits = AtomicU64::new(0);
    let per_slot_messages: Vec<AtomicU64> = (0..k_total).map(|_| AtomicU64::new(0)).collect();
    let per_slot_rounds: Vec<AtomicU64> = (0..k_total).map(|_| AtomicU64::new(0)).collect();

    // Each thread returns its own fixed policies: (partition, color, choice).
    let fixes_per_charger: Vec<Vec<(usize, usize, usize)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let my_rx = receivers[i].clone();
            let neighbor_tx: Vec<Sender<Msg>> = graph
                .neighbors(i)
                .iter()
                .map(|&j| senders[j].clone())
                .collect();
            let barrier = &barrier;
            let any_fixed = &any_fixed;
            let total_messages = &total_messages;
            let total_marginals = &total_marginals;
            let total_commits = &total_commits;
            let per_slot_messages = &per_slot_messages;
            let per_slot_rounds = &per_slot_rounds;
            handles.push(scope.spawn(move || {
                charger_thread(
                    i,
                    inst,
                    graph,
                    cfg,
                    my_rx,
                    neighbor_tx,
                    barrier,
                    any_fixed,
                    total_messages,
                    total_marginals,
                    total_commits,
                    per_slot_messages,
                    per_slot_rounds,
                )
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("charger thread panicked"))
            .collect()
    });

    let mut table: Vec<Vec<Option<usize>>> = vec![vec![None; c_total]; inst.num_partitions()];
    for fixes in &fixes_per_charger {
        for &(p, c, x) in fixes {
            table[p][c] = Some(x);
        }
    }
    // Best-of-N rounding, identical to the round engine's (each sample's
    // induced solution is replayed from the assembled table).
    let n_samples = cfg.effective_samples();
    let mut best: Option<(Vec<Option<usize>>, f64)> = None;
    for s in 0..n_samples {
        let choices: Vec<Option<usize>> = (0..inst.num_partitions())
            .map(|p| table[p][crate::protocol::color_of(cfg.seed, s, p, c_total)])
            .collect();
        let value = evaluate_selection(inst, &choices);
        if best.as_ref().is_none_or(|(_, bv)| value > *bv) {
            best = Some((choices, value));
        }
    }
    let (choices, value) =
        best.unwrap_or_else(|| (Selection::empty(inst.num_partitions()).choices, 0.0));

    let mut stats = NegotiationStats::new(k_total);
    stats.messages = total_messages.load(Ordering::Relaxed);
    stats.oracle_marginals = total_marginals.load(Ordering::Relaxed);
    stats.oracle_commits = total_commits.load(Ordering::Relaxed);
    for k in 0..k_total {
        stats.per_slot_messages[k] = per_slot_messages[k].load(Ordering::Relaxed);
        let r = per_slot_rounds[k].load(Ordering::Relaxed);
        stats.per_slot_rounds[k] = r;
        stats.rounds += r;
    }
    (Selection { choices, value }, stats)
}

/// The per-charger thread body: local state, bid/decide rounds.
#[allow(clippy::too_many_arguments)]
fn charger_thread(
    me: usize,
    inst: &HasteRInstance,
    graph: &NeighborGraph,
    cfg: &NegotiationConfig,
    rx: Receiver<Msg>,
    neighbor_tx: Vec<Sender<Msg>>,
    barrier: &Barrier,
    any_fixed: &AtomicBool,
    total_messages: &AtomicU64,
    total_marginals: &AtomicU64,
    total_commits: &AtomicU64,
    per_slot_messages: &[AtomicU64],
    per_slot_rounds: &[AtomicU64],
) -> Vec<(usize, usize, usize)> {
    let n = graph.num_chargers();
    let k_total = inst.num_slots();
    let c_total = cfg.colors.max(1);
    let n_samples = cfg.effective_samples();
    let deg = neighbor_tx.len();

    // Local view: this charger's copy of the per-sample energies, fed only
    // by its own commits and neighbors' Decide messages.
    let mut local_states: Vec<EnergyState> = (0..n_samples).map(|_| inst.new_state()).collect();
    let mut my_fixes: Vec<(usize, usize, usize)> = Vec::new();
    // A fast neighbor may send its Decide before we finished collecting
    // Bids; barriers guarantee all buffered messages belong to the current
    // round, so one small reorder buffer suffices.
    let mut pending: std::collections::VecDeque<Msg> = std::collections::VecDeque::new();

    let count = |slot: usize, msgs: u64| {
        total_messages.fetch_add(msgs, Ordering::Relaxed);
        per_slot_messages[slot].fetch_add(msgs, Ordering::Relaxed);
    };

    #[allow(clippy::needless_range_loop)] // rel_k indexes stats and partitions
    for rel_k in 0..k_total {
        for c in 0..c_total {
            let my_partition = rel_k * n + me;
            let mut done = inst.num_choices(my_partition) == 0;
            loop {
                // Round start: leader resets the "someone fixed" flag and
                // counts the round.
                if barrier.wait().is_leader() {
                    any_fixed.store(false, Ordering::SeqCst);
                    per_slot_rounds[rel_k].fetch_add(1, Ordering::Relaxed);
                }
                barrier.wait();

                // Bid phase. Done chargers keep sending lockstep `None`
                // bids (not counted — the deployed protocol simply stops).
                let my_bid = if done {
                    None
                } else {
                    let (bid, calls) = best_bid(inst, &local_states, cfg, c, my_partition);
                    total_marginals.fetch_add(calls, Ordering::Relaxed);
                    bid
                };
                if !done {
                    count(rel_k, deg as u64);
                }
                for tx in &neighbor_tx {
                    tx.send(Msg::Bid {
                        from: me,
                        bid: my_bid,
                    })
                    .expect("neighbor alive");
                }
                let mut neighbor_bids: Vec<(usize, Option<(f64, usize)>)> = Vec::with_capacity(deg);
                while neighbor_bids.len() < deg {
                    // Buffered messages are all Decides of this round
                    // (Bids are consumed immediately), so poll the channel.
                    match rx.recv().expect("bid expected") {
                        Msg::Bid { from, bid } => neighbor_bids.push((from, bid)),
                        // A fast neighbor already moved on to its decide
                        // phase; stash its Decide for ours.
                        decide @ Msg::Decide { .. } => pending.push_back(decide),
                    }
                }

                // Decide phase.
                let i_win = match my_bid {
                    None => false,
                    Some((gain, _)) => neighbor_bids.iter().all(|&(j, bid)| match bid {
                        Some((gj, _)) => gain > gj || (gain == gj && me < j),
                        None => true,
                    }),
                };
                let fixed_choice = if i_win {
                    let (_, choice) = my_bid.expect("winner has a bid");
                    Some(choice)
                } else {
                    None
                };
                for tx in &neighbor_tx {
                    tx.send(Msg::Decide {
                        from: me,
                        fixed_choice,
                    })
                    .expect("neighbor alive");
                }
                if let Some(choice) = fixed_choice {
                    count(rel_k, deg as u64); // UPD broadcast
                    my_fixes.push((my_partition, c, choice));
                    for s in matching_samples(cfg, my_partition, c) {
                        inst.commit(&mut local_states[s], my_partition, choice);
                        total_commits.fetch_add(1, Ordering::Relaxed);
                    }
                    any_fixed.store(true, Ordering::SeqCst);
                    done = true;
                } else if my_bid.is_none() {
                    done = true;
                }
                for _ in 0..deg {
                    let msg = pending
                        .pop_front()
                        .unwrap_or_else(|| rx.recv().expect("decide expected"));
                    match msg {
                        Msg::Decide { from, fixed_choice } => {
                            if let Some(choice) = fixed_choice {
                                let p = rel_k * n + from;
                                for s in matching_samples(cfg, p, c) {
                                    inst.commit(&mut local_states[s], p, choice);
                                }
                            }
                        }
                        // Barriers prevent a next-round Bid from arriving
                        // before every Decide of this round is consumed.
                        Msg::Bid { .. } => unreachable!("phase mismatch"),
                    }
                }

                barrier.wait();
                if !any_fixed.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    my_fixes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round_engine::negotiate_rounds;
    use haste_core::DominantScope;
    use haste_geometry::{Angle, Vec2};
    use haste_model::{Charger, ChargingParams, CoverageMap, Scenario, Task, TimeGrid};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_scenario(seed: u64, n: usize, m: usize) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = ChargingParams::simulation_default();
        let chargers = (0..n)
            .map(|i| {
                Charger::new(
                    i as u32,
                    Vec2::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)),
                )
            })
            .collect();
        let tasks = (0..m)
            .map(|j| {
                let release = rng.gen_range(0..4usize);
                let duration = rng.gen_range(1..=4usize);
                Task::new(
                    j as u32,
                    Vec2::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)),
                    Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
                    release,
                    release + duration,
                    rng.gen_range(200.0..2000.0),
                    1.0 / m as f64,
                )
            })
            .collect();
        Scenario::new(params, TimeGrid::minutes(8), chargers, tasks, 0.0, 0).unwrap()
    }

    #[test]
    fn threaded_matches_round_engine_exactly() {
        for seed in 0..4u64 {
            let s = random_scenario(seed, 6, 12);
            let cov = CoverageMap::build(&s);
            let graph = NeighborGraph::build(&cov);
            let inst = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
            for colors in [1usize, 3] {
                let cfg = NegotiationConfig {
                    colors,
                    samples: 8,
                    seed: seed * 31 + 7,
                };
                let (sel_r, stats_r) = negotiate_rounds(&inst, &graph, &cfg);
                let (sel_t, stats_t) = negotiate_threaded(&inst, &graph, &cfg);
                assert_eq!(
                    sel_r.choices, sel_t.choices,
                    "seed {seed} C={colors}: selections diverge"
                );
                assert!((sel_r.value - sel_t.value).abs() < 1e-12);
                assert_eq!(stats_r.messages, stats_t.messages, "seed {seed} C={colors}");
                assert_eq!(stats_r.rounds, stats_t.rounds);
                assert_eq!(stats_r.per_slot_messages, stats_t.per_slot_messages);
                // Both engines execute the same protocol, so they pay the
                // same oracle work.
                assert_eq!(stats_r.oracle_marginals, stats_t.oracle_marginals);
                assert_eq!(stats_r.oracle_commits, stats_t.oracle_commits);
                assert!(stats_r.oracle_marginals > 0);
            }
        }
    }

    #[test]
    fn single_charger_network() {
        let s = random_scenario(9, 1, 5);
        let cov = CoverageMap::build(&s);
        let graph = NeighborGraph::build(&cov);
        let inst = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
        let (sel, stats) = negotiate_threaded(&inst, &graph, &NegotiationConfig::default());
        // Degree 0 → no messages at all, but decisions still happen.
        assert_eq!(stats.messages, 0);
        let (sel_r, _) = negotiate_rounds(&inst, &graph, &NegotiationConfig::default());
        assert_eq!(sel.choices, sel_r.choices);
    }
}
