//! The neighbor graph of a charger network.
//!
//! Two chargers are neighbors iff they can both charge at least one common
//! task (Section 6.1). The paper assumes the communication range is at least
//! twice the charging range, so neighbors can always talk directly.

use haste_model::{ChargerId, CoverageMap};

/// Adjacency structure over chargers.
#[derive(Debug, Clone)]
pub struct NeighborGraph {
    adj: Vec<Vec<usize>>,
}

impl NeighborGraph {
    /// Builds the graph from precomputed coverage.
    pub fn build(coverage: &CoverageMap) -> Self {
        let n = coverage.num_chargers();
        let mut adj = vec![Vec::new(); n];
        for a in 0..n {
            for b in (a + 1)..n {
                if coverage.are_neighbors(ChargerId(a as u32), ChargerId(b as u32)) {
                    adj[a].push(b);
                    adj[b].push(a);
                }
            }
        }
        NeighborGraph { adj }
    }

    /// Number of chargers.
    #[inline]
    pub fn num_chargers(&self) -> usize {
        self.adj.len()
    }

    /// Neighbor indices of charger `i`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Degree of charger `i` (`|N(s_i)|`).
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }

    /// Average degree over all chargers.
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        self.adj.iter().map(Vec::len).sum::<usize>() as f64 / self.adj.len() as f64
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haste_geometry::{Angle, Vec2};
    use haste_model::{Charger, ChargingParams, Scenario, Task, TimeGrid};

    /// Three chargers in a row; middle tasks visible to adjacent pairs.
    fn scenario() -> Scenario {
        let params =
            ChargingParams::simulation_default().with_receiving_angle(std::f64::consts::TAU);
        Scenario::new(
            params,
            TimeGrid::minutes(2),
            vec![
                Charger::new(0, Vec2::new(0.0, 0.0)),
                Charger::new(1, Vec2::new(30.0, 0.0)),
                Charger::new(2, Vec2::new(60.0, 0.0)),
            ],
            vec![
                Task::new(0, Vec2::new(15.0, 0.0), Angle::ZERO, 0, 2, 100.0, 1.0),
                Task::new(1, Vec2::new(45.0, 0.0), Angle::ZERO, 0, 2, 100.0, 1.0),
            ],
            0.0,
            0,
        )
        .unwrap()
    }

    #[test]
    fn chain_topology() {
        let s = scenario();
        let g = NeighborGraph::build(&CoverageMap::build(&s));
        assert_eq!(g.num_chargers(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_common_tasks_no_edges() {
        let mut s = scenario();
        s.tasks.clear();
        let g = NeighborGraph::build(&CoverageMap::build(&s));
        assert_eq!(g.average_degree(), 0.0);
        for i in 0..3 {
            assert!(g.neighbors(i).is_empty());
        }
    }
}
