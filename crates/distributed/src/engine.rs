//! The incremental **online engine**: the event loop of [`solve_online`]
//! re-packaged as a long-lived state machine that a daemon can drive.
//!
//! [`solve_online`](crate::solve_online) consumes a scenario whose future is
//! fully known (task releases are data) and replays the arrival events in
//! one call. A scheduling *service* cannot do that: tasks arrive over a
//! wire, one at a time, while the virtual clock advances. [`OnlineEngine`]
//! holds the evolving scenario, schedule and negotiation state between
//! arrivals:
//!
//! * [`OnlineEngine::submit`] admits a task into the **current open slot**
//!   (with backpressure once `max_pending` submissions accumulate),
//! * [`OnlineEngine::tick`] closes the slot — if tasks arrived, the
//!   affected chargers re-negotiate exactly as in Algorithm 3 (rescheduling
//!   delay `τ`, switching delay `ρ` at evaluation) — and opens the next,
//! * [`OnlineEngine::snapshot`] / [`OnlineEngine::restore`] round-trip the
//!   full engine state through a text format, so a restarted daemon resumes
//!   bit-deterministically.
//!
//! # Determinism contract
//!
//! A streamed session and [`replay_trace`] of its submission trace produce
//! **bit-identical** schedules and utilities: both grow the scenario in the
//! same arrival order and fire the same re-negotiation events. The engine
//! also matches [`solve_online`](crate::solve_online) bitwise when every
//! task releases at slot 0 (then both negotiate over the same coverage).
//! With staggered releases the batch solver is *not* the reference: it
//! builds its coverage map and neighbor graph over all tasks — including
//! ones the online system has not seen yet — whereas the engine only ever
//! knows arrived tasks, which is the honest online information model.
//!
//! The engine ignores [`OnlineConfig::failures`]; injected charger failures
//! are a batch-experiment feature (a daemon would learn of failures through
//! its own channel, which this crate does not model yet).

use std::collections::VecDeque;
use std::time::Instant;

use haste_core::SolverMetrics;
use haste_model::{
    evaluate, evaluate_relaxed, io, CoverageMap, EvalOptions, EvalReport, Scenario, Schedule, Task,
    TaskId,
};

use crate::neighbors::NeighborGraph;
use crate::online::{replan_event, OnlineConfig, OnlineResult, ReplanEvent};
use crate::protocol::NegotiationStats;
use crate::EngineKind;

/// A task submission, as it arrives over the wire: everything a [`Task`]
/// carries except its id and release slot, which the engine assigns (the
/// id is the arrival index, the release slot is the current open slot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// Position of the rechargeable device, in meters.
    pub device_pos: haste_geometry::Vec2,
    /// Orientation of the device's receiving sector.
    pub device_facing: haste_geometry::Angle,
    /// One past the last active slot (absolute).
    pub end_slot: usize,
    /// Required charging energy in joules.
    pub required_energy: f64,
    /// Weight in the overall utility.
    pub weight: f64,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The per-slot submission queue is full; retry after the next tick.
    Backpressure {
        /// The configured `max_pending` bound that was hit.
        limit: usize,
    },
    /// The virtual clock has consumed every slot of the grid.
    Closed,
    /// The task itself is invalid (bad window, non-finite fields, …).
    BadTask(String),
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Backpressure { limit } => {
                write!(f, "submission queue full ({limit} pending); tick first")
            }
            AdmitError::Closed => write!(f, "the time grid is exhausted"),
            AdmitError::BadTask(reason) => write!(f, "invalid task: {reason}"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// A snapshot failed to parse or reassemble into a consistent engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotError {
    /// 1-based line number within the snapshot text (0 = whole document).
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for SnapshotError {}

/// The incremental online scheduler. See the [module docs](self) for the
/// lifecycle and determinism contract.
#[derive(Debug, Clone)]
pub struct OnlineEngine {
    /// The evolving instance: `tasks` holds exactly the *arrived* tasks, in
    /// arrival order (ids are arrival indices). Doubles as the submission
    /// trace that [`replay_trace`] consumes.
    scenario: Scenario,
    /// Pre-loaded future releases (from a scenario file), stably sorted by
    /// release slot; injected into `scenario` when their slot opens.
    staged: VecDeque<Task>,
    coverage: CoverageMap,
    /// How many tasks `coverage` was built over (lazy rebuild watermark).
    coverage_tasks: usize,
    config: OnlineConfig,
    max_pending: usize,
    /// Submissions admitted into the current open slot.
    pending: usize,
    /// The current open slot; slots `0..clock` are closed.
    clock: usize,
    schedule: Schedule,
    stats: NegotiationStats,
    metrics: SolverMetrics,
    admitted: u64,
    rejected: u64,
}

impl OnlineEngine {
    /// Creates an engine over a base scenario. Any tasks the scenario
    /// carries become *staged* arrivals: they are injected when the clock
    /// reaches their release slot, exactly as if a client had submitted
    /// them then (stable order: earlier ids first within a slot). Slot 0
    /// opens immediately.
    ///
    /// `max_pending` bounds submissions per open slot (admission control);
    /// use `usize::MAX` for no bound.
    pub fn new(mut scenario: Scenario, config: OnlineConfig, max_pending: usize) -> Self {
        let mut staged: Vec<Task> = std::mem::take(&mut scenario.tasks);
        staged.sort_by_key(|t| t.release_slot);
        let threads = haste_parallel::resolve_threads(config.threads);
        let n = scenario.num_chargers();
        let num_slots = scenario.grid.num_slots;
        let mut engine = OnlineEngine {
            coverage: CoverageMap::build(&scenario),
            coverage_tasks: 0,
            scenario,
            staged: staged.into(),
            config,
            max_pending,
            pending: 0,
            clock: 0,
            schedule: Schedule::empty(n, num_slots),
            stats: NegotiationStats::new(0),
            metrics: SolverMetrics {
                threads,
                ..SolverMetrics::default()
            },
            admitted: 0,
            rejected: 0,
        };
        engine.release_due();
        engine
    }

    /// Injects every staged task whose release slot has been reached into
    /// the live scenario, re-assigning ids to arrival order.
    fn release_due(&mut self) {
        while let Some(front) = self.staged.front() {
            if front.release_slot > self.clock {
                break;
            }
            let mut task = self.staged.pop_front().expect("front exists");
            task.id = TaskId(self.scenario.num_tasks() as u32);
            self.scenario.tasks.push(task);
            self.admitted += 1;
        }
    }

    /// Rebuilds the coverage map if tasks arrived since the last build.
    fn refresh_coverage(&mut self) {
        if self.coverage_tasks != self.scenario.num_tasks() {
            // haste-lint: allow(D2) — phase timing feeds SolverMetrics, not algorithm state
            let start = Instant::now();
            self.coverage = CoverageMap::build(&self.scenario);
            self.metrics.coverage_build += start.elapsed();
            self.coverage_tasks = self.scenario.num_tasks();
        }
    }

    /// Admits a task into the current open slot (its release slot becomes
    /// the current clock). O(1) — negotiation is deferred to [`tick`]
    /// (`tick` is where the slot closes and arrivals become visible to the
    /// chargers, matching the paper's slotted information model).
    ///
    /// [`tick`]: OnlineEngine::tick
    pub fn submit(&mut self, spec: TaskSpec) -> Result<TaskId, AdmitError> {
        if self.is_closed() {
            self.rejected += 1;
            return Err(AdmitError::Closed);
        }
        if self.pending >= self.max_pending {
            self.rejected += 1;
            return Err(AdmitError::Backpressure {
                limit: self.max_pending,
            });
        }
        let id = self.scenario.num_tasks();
        let task = Task::new(
            id as u32,
            spec.device_pos,
            spec.device_facing,
            self.clock,
            spec.end_slot,
            spec.required_energy,
            spec.weight,
        );
        if let Err(e) = task.validate(id) {
            self.rejected += 1;
            return Err(AdmitError::BadTask(e.to_string()));
        }
        if task.end_slot > self.scenario.grid.num_slots {
            self.rejected += 1;
            return Err(AdmitError::BadTask(
                "task window exceeds the time grid".to_string(),
            ));
        }
        self.scenario.tasks.push(task);
        self.pending += 1;
        self.admitted += 1;
        Ok(TaskId(id as u32))
    }

    /// Closes the current slot and opens the next. If tasks arrived in the
    /// closing slot the chargers re-negotiate (one event, exactly as in
    /// [`solve_online`](crate::solve_online)); otherwise the plan stands.
    /// Returns the newly opened slot, or `None` once the grid is exhausted.
    pub fn tick(&mut self) -> Option<usize> {
        if self.is_closed() {
            return None;
        }
        let t = self.clock;
        let arrived_now: Vec<usize> = self
            .scenario
            .tasks
            .iter()
            .filter(|task| task.release_slot == t)
            .map(|task| task.id.index())
            .collect();
        if !arrived_now.is_empty() {
            self.refresh_coverage();
            let graph = NeighborGraph::build(&self.coverage);
            let threads = self.metrics.threads;
            replan_event(
                &self.scenario,
                &self.coverage,
                &graph,
                &self.config,
                &mut self.schedule,
                ReplanEvent {
                    slot: t,
                    horizon: self.scenario.active_horizon(),
                    known: None,
                    disabled: &vec![false; self.scenario.num_chargers()],
                    arrived_now: &arrived_now,
                    failed_now: &[],
                    threads,
                },
                &mut self.stats,
                &mut self.metrics,
            );
            self.metrics.oracle_marginals = self.stats.oracle_marginals;
            self.metrics.oracle_commits = self.stats.oracle_commits;
        }
        self.clock += 1;
        self.pending = 0;
        self.release_due();
        Some(self.clock)
    }

    /// Ticks through every remaining slot (releasing all staged tasks on
    /// the way), then evaluates the executed schedule under the full P1
    /// model and returns the same [`OnlineResult`] shape as
    /// [`solve_online`](crate::solve_online).
    pub fn finish(mut self) -> OnlineResult {
        while self.tick().is_some() {}
        self.refresh_coverage();
        // haste-lint: allow(D2) — phase timing feeds SolverMetrics, not algorithm state
        let eval_start = Instant::now();
        let report = evaluate(
            &self.scenario,
            &self.coverage,
            &self.schedule,
            EvalOptions::default(),
        );
        let relaxed = evaluate_relaxed(&self.scenario, &self.coverage, &self.schedule);
        self.metrics.p1_eval += eval_start.elapsed();
        OnlineResult {
            schedule: self.schedule,
            report,
            relaxed_value: relaxed.total_utility,
            stats: self.stats,
            metrics: self.metrics,
        }
    }

    /// Full P1 evaluation of the schedule as executed so far (switching
    /// delay included). Cheap enough to answer a status query.
    pub fn evaluate(&mut self) -> EvalReport {
        self.refresh_coverage();
        evaluate(
            &self.scenario,
            &self.coverage,
            &self.schedule,
            EvalOptions::default(),
        )
    }

    /// HASTE-R (relaxed, no switching delay) value of the current schedule.
    pub fn relaxed_value(&mut self) -> f64 {
        self.refresh_coverage();
        evaluate_relaxed(&self.scenario, &self.coverage, &self.schedule).total_utility
    }

    /// The current open slot (slots `0..clock()` are closed).
    #[inline]
    pub fn clock(&self) -> usize {
        self.clock
    }

    /// Whether every slot of the grid has been consumed.
    #[inline]
    pub fn is_closed(&self) -> bool {
        self.clock >= self.scenario.grid.num_slots
    }

    /// The evolving scenario: exactly the arrived tasks, in arrival order —
    /// i.e. the submission trace [`replay_trace`] accepts.
    #[inline]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The schedule as planned/executed so far.
    #[inline]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Accumulated negotiation counters.
    #[inline]
    pub fn stats(&self) -> &NegotiationStats {
        &self.stats
    }

    /// Accumulated solver phase timings and oracle counters.
    #[inline]
    pub fn metrics(&self) -> &SolverMetrics {
        &self.metrics
    }

    /// `(admitted, rejected, pending-in-open-slot)` admission counters.
    /// Staged releases count as admitted when injected.
    #[inline]
    pub fn counters(&self) -> (u64, u64, usize) {
        (self.admitted, self.rejected, self.pending)
    }

    /// Tasks staged for future release slots (from the base scenario).
    #[inline]
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// The scheduling configuration this engine runs under.
    #[inline]
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Snapshot / restore
    // ------------------------------------------------------------------

    /// Serializes the full engine state as text:
    ///
    /// ```text
    /// # haste-service snapshot v1
    /// clock <open_slot>
    /// counters <admitted> <rejected> <pending>
    /// config <colors> <samples> <seed> <rounds|threaded> <localized> <threads> <max_pending>
    /// stats <messages> <rounds> <oracle_marginals> <oracle_commits>
    /// perslot messages <len> <v>...
    /// perslot rounds <len> <v>...
    /// scenario <num_lines>     (followed by an embedded scenario document)
    /// staged <num_tasks>       (followed by one `task` line each)
    /// schedule <num_lines>     (followed by an embedded schedule document)
    /// ```
    ///
    /// [`restore`](OnlineEngine::restore) reconstructs an engine that
    /// continues bit-identically (floats use shortest-roundtrip formatting,
    /// which is lossless). Phase *timings* reset to zero on restore — they
    /// are wall-clock measurements, not algorithm state. Charging
    /// parameters beyond the five the scenario text carries reset to
    /// simulation defaults, mirroring `model::io`.
    pub fn snapshot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# haste-service snapshot v1");
        let _ = writeln!(out, "clock {}", self.clock);
        let _ = writeln!(
            out,
            "counters {} {} {}",
            self.admitted, self.rejected, self.pending
        );
        let engine = match self.config.engine {
            EngineKind::Rounds => "rounds",
            EngineKind::Threaded => "threaded",
        };
        let _ = writeln!(
            out,
            "config {} {} {} {} {} {} {}",
            self.config.negotiation.colors,
            self.config.negotiation.samples,
            self.config.negotiation.seed,
            engine,
            self.config.localized as u8,
            self.config.threads,
            self.max_pending
        );
        let _ = writeln!(
            out,
            "stats {} {} {} {}",
            self.stats.messages,
            self.stats.rounds,
            self.stats.oracle_marginals,
            self.stats.oracle_commits
        );
        for (name, values) in [
            ("messages", &self.stats.per_slot_messages),
            ("rounds", &self.stats.per_slot_rounds),
        ] {
            let _ = write!(out, "perslot {name} {}", values.len());
            for v in values {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
        let scenario_text = io::write_scenario(&self.scenario);
        let _ = writeln!(out, "scenario {}", scenario_text.lines().count());
        out.push_str(&scenario_text);
        let _ = writeln!(out, "staged {}", self.staged.len());
        for task in &self.staged {
            let _ = writeln!(out, "{}", io::task_line(task));
        }
        let schedule_text = io::write_schedule(&self.schedule);
        let _ = writeln!(out, "schedule {}", schedule_text.lines().count());
        out.push_str(&schedule_text);
        out
    }

    /// Reconstructs an engine from [`snapshot`](OnlineEngine::snapshot)
    /// text. The restored engine continues bit-identically to the
    /// snapshotted one under the same subsequent operations.
    pub fn restore(text: &str) -> Result<Self, SnapshotError> {
        let lines: Vec<&str> = text.lines().collect();
        let mut cursor = Cursor {
            lines: &lines,
            pos: 0,
        };

        let clock = {
            let (line_no, rest) = cursor.directive("clock")?;
            parse_uints(rest, 1, line_no)?[0]
        };
        let (admitted, rejected, pending) = {
            let (line_no, rest) = cursor.directive("counters")?;
            let v = parse_uints(rest, 3, line_no)?;
            (v[0] as u64, v[1] as u64, v[2])
        };
        let (config, max_pending) = {
            let (line_no, rest) = cursor.directive("config")?;
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 7 {
                return Err(SnapshotError {
                    line: line_no,
                    reason: format!("config expects 7 fields, got {}", fields.len()),
                });
            }
            let uint = |s: &str, what: &str| -> Result<usize, SnapshotError> {
                s.parse().map_err(|_| SnapshotError {
                    line: line_no,
                    reason: format!("bad {what} `{s}`"),
                })
            };
            let engine = match fields[3] {
                "rounds" => EngineKind::Rounds,
                "threaded" => EngineKind::Threaded,
                other => {
                    return Err(SnapshotError {
                        line: line_no,
                        reason: format!("unknown engine `{other}`"),
                    })
                }
            };
            let config = OnlineConfig {
                negotiation: crate::protocol::NegotiationConfig {
                    colors: uint(fields[0], "colors")?,
                    samples: uint(fields[1], "samples")?,
                    seed: fields[2].parse().map_err(|_| SnapshotError {
                        line: line_no,
                        reason: format!("bad seed `{}`", fields[2]),
                    })?,
                },
                engine,
                failures: Vec::new(),
                localized: match fields[4] {
                    "0" => false,
                    "1" => true,
                    other => {
                        return Err(SnapshotError {
                            line: line_no,
                            reason: format!("bad localized flag `{other}`"),
                        })
                    }
                },
                threads: uint(fields[5], "threads")?,
            };
            (config, uint(fields[6], "max_pending")?)
        };
        let mut stats = {
            let (line_no, rest) = cursor.directive("stats")?;
            let v = parse_uints(rest, 4, line_no)?;
            NegotiationStats {
                messages: v[0] as u64,
                rounds: v[1] as u64,
                oracle_marginals: v[2] as u64,
                oracle_commits: v[3] as u64,
                per_slot_messages: Vec::new(),
                per_slot_rounds: Vec::new(),
            }
        };
        for name in ["messages", "rounds"] {
            let (line_no, rest) = cursor.directive("perslot")?;
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.first() != Some(&name) {
                return Err(SnapshotError {
                    line: line_no,
                    reason: format!("expected `perslot {name}`"),
                });
            }
            let values = parse_uints(&fields[1..].join(" "), fields.len() - 1, line_no)?;
            if values.is_empty() {
                return Err(SnapshotError {
                    line: line_no,
                    reason: "perslot needs a length field".to_string(),
                });
            }
            let (len, values) = (values[0], &values[1..]);
            if values.len() != len {
                return Err(SnapshotError {
                    line: line_no,
                    reason: format!(
                        "perslot {name}: expected {len} values, got {}",
                        values.len()
                    ),
                });
            }
            let values: Vec<u64> = values.iter().map(|&v| v as u64).collect();
            match name {
                "messages" => stats.per_slot_messages = values,
                _ => stats.per_slot_rounds = values,
            }
        }
        let scenario = {
            let block = cursor.block("scenario")?;
            io::read_scenario(&block.text).map_err(|e| SnapshotError {
                line: block.line_no,
                reason: format!("embedded scenario: {e}"),
            })?
        };
        let staged = {
            let (line_no, rest) = cursor.directive("staged")?;
            let count = parse_uints(rest, 1, line_no)?[0];
            let mut staged = VecDeque::with_capacity(count);
            for _ in 0..count {
                let (line_no, line) = cursor.raw_line("staged task")?;
                let fields: Vec<&str> = line.split_whitespace().collect();
                if fields.first() != Some(&"task") {
                    return Err(SnapshotError {
                        line: line_no,
                        reason: "expected a `task` line".to_string(),
                    });
                }
                let task = io::parse_task_fields(&fields[1..]).map_err(|reason| SnapshotError {
                    line: line_no,
                    reason,
                })?;
                staged.push_back(task);
            }
            staged
        };
        let schedule = {
            let block = cursor.block("schedule")?;
            io::read_schedule(&block.text).map_err(|e| SnapshotError {
                line: block.line_no,
                reason: format!("embedded schedule: {e}"),
            })?
        };

        if schedule.num_chargers() != scenario.num_chargers() {
            return Err(SnapshotError {
                line: 0,
                reason: "schedule/scenario charger counts disagree".to_string(),
            });
        }
        if scenario.grid.num_slots > 0 && schedule.num_slots() != scenario.grid.num_slots {
            return Err(SnapshotError {
                line: 0,
                reason: "schedule does not span the time grid".to_string(),
            });
        }
        let threads = haste_parallel::resolve_threads(config.threads);
        let coverage = CoverageMap::build(&scenario);
        let coverage_tasks = scenario.num_tasks();
        Ok(OnlineEngine {
            coverage,
            coverage_tasks,
            scenario,
            staged,
            config,
            max_pending,
            pending,
            clock,
            schedule,
            metrics: SolverMetrics {
                threads,
                oracle_marginals: stats.oracle_marginals,
                oracle_commits: stats.oracle_commits,
                ..SolverMetrics::default()
            },
            stats,
            admitted,
            rejected,
        })
    }
}

/// Replays a submission trace in batch: every task of `scenario` is staged
/// and injected at its release slot, and the engine runs to the end of the
/// grid. A streamed session whose final scenario equals `scenario` (which
/// is exactly what [`OnlineEngine::scenario`] returns) produces the same
/// schedule and utility **bit for bit**.
pub fn replay_trace(scenario: Scenario, config: OnlineConfig) -> OnlineResult {
    OnlineEngine::new(scenario, config, usize::MAX).finish()
}

/// Line cursor over a snapshot document (top-level comments/blanks are
/// skipped; counted embedded blocks are taken verbatim).
struct Cursor<'a> {
    lines: &'a [&'a str],
    pos: usize,
}

/// A counted embedded block (`scenario`/`schedule` sections).
struct Block {
    text: String,
    line_no: usize,
}

impl<'a> Cursor<'a> {
    /// Next non-blank, non-comment line, split as `(line_no, directive, rest)`.
    fn next_directive(&mut self) -> Option<(usize, &'a str, &'a str)> {
        while self.pos < self.lines.len() {
            let line_no = self.pos + 1;
            let line = self.lines[self.pos].trim();
            self.pos += 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (directive, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            return Some((line_no, directive, rest.trim()));
        }
        None
    }

    /// Demands the next directive to be `expected`; returns `(line_no, rest)`.
    fn directive(&mut self, expected: &str) -> Result<(usize, &'a str), SnapshotError> {
        match self.next_directive() {
            Some((line_no, d, rest)) if d == expected => Ok((line_no, rest)),
            Some((line_no, d, _)) => Err(SnapshotError {
                line: line_no,
                reason: format!("expected `{expected}`, found `{d}`"),
            }),
            None => Err(SnapshotError {
                line: self.lines.len(),
                reason: format!("truncated: missing `{expected}` section"),
            }),
        }
    }

    /// Reads a `<name> <num_lines>` header plus that many verbatim lines.
    fn block(&mut self, name: &str) -> Result<Block, SnapshotError> {
        let (line_no, rest) = self.directive(name)?;
        let count = parse_uints(rest, 1, line_no)?[0];
        if self.pos + count > self.lines.len() {
            return Err(SnapshotError {
                line: line_no,
                reason: format!(
                    "truncated: `{name}` announces {count} lines, {} remain",
                    self.lines.len() - self.pos
                ),
            });
        }
        let mut text = String::new();
        for line in &self.lines[self.pos..self.pos + count] {
            text.push_str(line);
            text.push('\n');
        }
        self.pos += count;
        Ok(Block { text, line_no })
    }

    /// The next raw line (no comment skipping — used inside counted
    /// sections such as `staged`).
    fn raw_line(&mut self, what: &str) -> Result<(usize, &'a str), SnapshotError> {
        if self.pos >= self.lines.len() {
            return Err(SnapshotError {
                line: self.lines.len(),
                reason: format!("truncated: missing {what} line"),
            });
        }
        let line_no = self.pos + 1;
        let line = self.lines[self.pos];
        self.pos += 1;
        Ok((line_no, line))
    }
}

/// Parses exactly `expected` whitespace-separated non-negative integers.
fn parse_uints(text: &str, expected: usize, line_no: usize) -> Result<Vec<usize>, SnapshotError> {
    let fields: Vec<&str> = text.split_whitespace().collect();
    if fields.len() != expected {
        return Err(SnapshotError {
            line: line_no,
            reason: format!("expected {expected} fields, got {}", fields.len()),
        });
    }
    fields
        .iter()
        .map(|f| {
            f.parse::<usize>().map_err(|_| SnapshotError {
                line: line_no,
                reason: format!("`{f}` is not a non-negative integer"),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_online;
    use haste_geometry::{Angle, Vec2};
    use haste_model::{Charger, ChargingParams, TimeGrid};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_scenario(seed: u64, n: usize, m: usize, tau: usize) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = ChargingParams::simulation_default();
        let chargers = (0..n)
            .map(|i| {
                Charger::new(
                    i as u32,
                    Vec2::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)),
                )
            })
            .collect();
        let tasks = (0..m)
            .map(|j| {
                let release = rng.gen_range(0..5usize);
                let duration = rng.gen_range(2 * tau.max(1)..=8usize.max(2 * tau + 1));
                Task::new(
                    j as u32,
                    Vec2::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)),
                    Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
                    release,
                    release + duration,
                    rng.gen_range(500.0..3000.0),
                    1.0 / m as f64,
                )
            })
            .collect();
        Scenario::new(
            params,
            TimeGrid::minutes(16),
            chargers,
            tasks,
            1.0 / 12.0,
            tau,
        )
        .unwrap()
    }

    fn spec_of(task: &Task) -> TaskSpec {
        TaskSpec {
            device_pos: task.device_pos,
            device_facing: task.device_facing,
            end_slot: task.end_slot,
            required_energy: task.required_energy,
            weight: task.weight,
        }
    }

    /// Streams a scenario's tasks live (submitting each at its release
    /// slot) and returns the engine just before the final run-out.
    fn stream(scenario: &Scenario, config: &OnlineConfig) -> OnlineEngine {
        let mut base = scenario.clone();
        base.tasks.clear();
        let mut engine = OnlineEngine::new(base, config.clone(), usize::MAX);
        let mut by_release: Vec<&Task> = scenario.tasks.iter().collect();
        by_release.sort_by_key(|t| t.release_slot);
        let mut next = 0;
        loop {
            while next < by_release.len() && by_release[next].release_slot == engine.clock() {
                engine.submit(spec_of(by_release[next])).unwrap();
                next += 1;
            }
            if engine.tick().is_none() {
                break;
            }
        }
        assert_eq!(next, by_release.len(), "every task submitted");
        engine
    }

    #[test]
    fn streamed_session_equals_batch_replay() {
        let s = random_scenario(11, 5, 12, 1);
        let config = OnlineConfig::default();
        let engine = stream(&s, &config);
        let trace = engine.scenario().clone();
        let streamed = engine.finish();
        let replayed = replay_trace(trace, config);
        assert_eq!(streamed.schedule, replayed.schedule);
        assert_eq!(
            streamed.report.total_utility.to_bits(),
            replayed.report.total_utility.to_bits()
        );
        assert_eq!(streamed.stats.messages, replayed.stats.messages);
        assert_eq!(streamed.stats.rounds, replayed.stats.rounds);
    }

    #[test]
    fn streamed_session_equals_batch_replay_localized_threaded() {
        let s = random_scenario(23, 6, 10, 2);
        let config = OnlineConfig {
            engine: EngineKind::Threaded,
            localized: true,
            ..OnlineConfig::default()
        };
        let engine = stream(&s, &config);
        let trace = engine.scenario().clone();
        let streamed = engine.finish();
        let replayed = replay_trace(trace, config);
        assert_eq!(streamed.schedule, replayed.schedule);
        assert_eq!(
            streamed.report.total_utility.to_bits(),
            replayed.report.total_utility.to_bits()
        );
    }

    #[test]
    fn all_release_zero_matches_solve_online_bitwise() {
        // When every task releases at slot 0 the engine's arrived-only
        // coverage equals the batch solver's full coverage, so the two
        // must agree bit for bit.
        let mut s = random_scenario(7, 5, 10, 1);
        for task in &mut s.tasks {
            let d = task.end_slot - task.release_slot;
            task.release_slot = 0;
            task.end_slot = d;
        }
        s.validate().unwrap();
        let config = OnlineConfig::default();
        let cov = CoverageMap::build(&s);
        let batch = solve_online(&s, &cov, &config);
        let incremental = replay_trace(s, config);
        assert_eq!(batch.schedule, incremental.schedule);
        assert_eq!(
            batch.report.total_utility.to_bits(),
            incremental.report.total_utility.to_bits()
        );
        assert_eq!(
            batch.relaxed_value.to_bits(),
            incremental.relaxed_value.to_bits()
        );
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let s = random_scenario(31, 5, 12, 1);
        let config = OnlineConfig::default();
        let mut base = s.clone();
        base.tasks.clear();
        let mut live = OnlineEngine::new(base, config.clone(), 64);
        let mut by_release: Vec<&Task> = s.tasks.iter().collect();
        by_release.sort_by_key(|t| t.release_slot);
        let mut next = 0;
        // Run half the grid live...
        for _ in 0..s.grid.num_slots / 2 {
            while next < by_release.len() && by_release[next].release_slot == live.clock() {
                live.submit(spec_of(by_release[next])).unwrap();
                next += 1;
            }
            live.tick().unwrap();
        }
        // ...then "kill the daemon" and bring up a restored twin.
        let snap = live.snapshot();
        let mut restored = OnlineEngine::restore(&snap).unwrap();
        assert_eq!(restored.clock(), live.clock());
        assert_eq!(restored.counters(), live.counters());
        // Drive both to the end with the identical remaining trace.
        let mut next_r = next;
        loop {
            while next < by_release.len() && by_release[next].release_slot == live.clock() {
                live.submit(spec_of(by_release[next])).unwrap();
                next += 1;
            }
            if live.tick().is_none() {
                break;
            }
        }
        loop {
            while next_r < by_release.len() && by_release[next_r].release_slot == restored.clock() {
                restored.submit(spec_of(by_release[next_r])).unwrap();
                next_r += 1;
            }
            if restored.tick().is_none() {
                break;
            }
        }
        let a = live.finish();
        let b = restored.finish();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(
            a.report.total_utility.to_bits(),
            b.report.total_utility.to_bits()
        );
        assert_eq!(a.stats.messages, b.stats.messages);
        assert_eq!(a.stats.per_slot_messages, b.stats.per_slot_messages);
    }

    #[test]
    fn snapshot_roundtrip_is_stable() {
        let s = random_scenario(5, 4, 8, 1);
        let engine = OnlineEngine::new(s, OnlineConfig::default(), 32);
        let snap = engine.snapshot();
        let restored = OnlineEngine::restore(&snap).unwrap();
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn admission_control_backpressure_and_badtask() {
        let s = random_scenario(13, 3, 0, 0);
        let mut engine = OnlineEngine::new(s, OnlineConfig::default(), 2);
        let good = TaskSpec {
            device_pos: Vec2::new(10.0, 10.0),
            device_facing: Angle::from_radians(1.0),
            end_slot: 6,
            required_energy: 800.0,
            weight: 1.0,
        };
        assert!(engine.submit(good).is_ok());
        assert!(engine.submit(good).is_ok());
        assert_eq!(
            engine.submit(good),
            Err(AdmitError::Backpressure { limit: 2 })
        );
        // A tick drains the pending window.
        engine.tick().unwrap();
        assert!(engine.submit(good).is_ok());
        // Window entirely in the past / beyond the grid.
        assert!(matches!(
            engine.submit(TaskSpec {
                end_slot: 1,
                ..good
            }),
            Err(AdmitError::BadTask(_))
        ));
        assert!(matches!(
            engine.submit(TaskSpec {
                end_slot: 10_000,
                ..good
            }),
            Err(AdmitError::BadTask(_))
        ));
        assert!(matches!(
            engine.submit(TaskSpec {
                required_energy: -1.0,
                ..good
            }),
            Err(AdmitError::BadTask(_))
        ));
        let (admitted, rejected, pending) = engine.counters();
        assert_eq!(admitted, 3);
        assert_eq!(rejected, 4);
        assert_eq!(pending, 1);
        // Exhaust the grid: everything is Closed afterwards.
        while engine.tick().is_some() {}
        assert_eq!(engine.submit(good), Err(AdmitError::Closed));
    }

    #[test]
    fn snapshot_error_paths() {
        // Truncated document.
        assert!(OnlineEngine::restore("clock 3\n").is_err());
        // Corrupt directive order.
        assert!(OnlineEngine::restore("counters 0 0 0\nclock 1\n").is_err());
        // Block announcing more lines than exist.
        let err = OnlineEngine::restore(
            "clock 0\ncounters 0 0 0\nconfig 1 1 0 rounds 0 1 8\nstats 0 0 0 0\n\
             perslot messages 0\nperslot rounds 0\nscenario 99\nparams 1 0 10 1 1\n",
        )
        .unwrap_err();
        assert!(err.reason.contains("truncated"), "{err}");
        // Tampered embedded scenario surfaces the nested parse error.
        let s = random_scenario(3, 2, 2, 0);
        let snap = OnlineEngine::new(s, OnlineConfig::default(), 8).snapshot();
        let bad = snap.replace("delays", "dleays");
        let err = OnlineEngine::restore(&bad).unwrap_err();
        assert!(err.reason.contains("embedded scenario"), "{err}");
    }

    #[test]
    fn staged_releases_count_as_admitted() {
        let s = random_scenario(17, 4, 9, 1);
        let m = s.num_tasks() as u64;
        let result = replay_trace(s, OnlineConfig::default());
        // All staged tasks were injected; the utility is well-defined.
        assert!(result.report.total_utility.is_finite());
        assert!(m > 0);
    }
}
