//! Distributed online scheduling for HASTE (Algorithm 3 of the paper).
//!
//! * [`NeighborGraph`] — chargers sharing a task are neighbors and can talk,
//! * [`negotiate_rounds`] — the bid/update negotiation protocol, simulated
//!   in deterministic synchronous rounds with exact message accounting,
//! * [`negotiate_threaded`] — the same protocol with one OS thread per
//!   charger and real crossbeam message passing; bit-identical outcomes,
//! * [`solve_online`] — the arrival event loop with rescheduling delay `τ`,
//! * [`solve_baseline_online`] — GreedyUtility / GreedyCover under the same
//!   online visibility rules,
//! * [`OnlineEngine`] — the same event loop as a long-lived incremental
//!   state machine (live task submission, virtual-time ticks,
//!   snapshot/restore) for the scheduling daemon in `haste-service`.
//!
//! Theorem 6.1: the online algorithm achieves a `½(1 − ρ)(1 − 1/e)`
//! competitive ratio; the test suites and Figs. 9/12–16 exercise it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod neighbors;
mod online;
mod protocol;
mod round_engine;
mod threaded_engine;

pub use engine::{replay_trace, AdmitError, OnlineEngine, SnapshotError, TaskSpec};
pub use neighbors::NeighborGraph;
pub use online::{
    solve_baseline_online, solve_online, ChargerFailure, EngineKind, OnlineConfig, OnlineResult,
};
pub use protocol::{color_of, final_color_of, NegotiationConfig, NegotiationStats};
pub use round_engine::negotiate_rounds;
pub use threaded_engine::negotiate_threaded;
