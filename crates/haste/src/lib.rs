//! **HASTE** — Charging task scheduling for directional wireless charger
//! networks.
//!
//! A full reproduction of *"Charging Task Scheduling for Directional
//! Wireless Charger Networks"* (Dai et al., ICPP 2018 / IEEE TMC 2021) as a
//! Rust library. This umbrella crate re-exports the whole public API:
//!
//! * [`geometry`] — vectors, angles, sectors, arcs,
//! * [`model`] — chargers, tasks, the directional charging model, utility
//!   functions, schedules and the P1 evaluator,
//! * [`core`] — dominant task set extraction, the HASTE-R submodular
//!   formulation, the centralized offline algorithm, baselines and the
//!   brute-force optimum,
//! * [`distributed`] — the distributed online algorithm with round-based
//!   and threaded negotiation engines, plus the incremental online engine,
//! * [`service`] — the long-running scheduling daemon (TCP wire protocol,
//!   snapshot/restore) with its client and load-generator harness,
//! * [`submodular`] — generic submodular maximization under a partition
//!   matroid,
//! * [`sim`] — scenario generators, parallel sweeps and the experiment
//!   registry reproducing every figure of the paper,
//! * [`testbed`] — the field-experiment substitute topologies,
//! * [`parallel`] — the small crossbeam-based parallel substrate.
//!
//! # Quickstart
//!
//! ```
//! use haste::prelude::*;
//!
//! // A 20 m field with two chargers and three charging tasks.
//! let spec = ScenarioSpec {
//!     field: 20.0,
//!     num_chargers: 2,
//!     num_tasks: 3,
//!     ..ScenarioSpec::small_scale()
//! };
//! let scenario = spec.generate(7);
//! let coverage = CoverageMap::build(&scenario);
//!
//! // Centralized offline schedule (Algorithm 2).
//! let result = solve_offline(&scenario, &coverage, &OfflineConfig::default());
//! assert!(result.report.total_utility >= 0.0);
//!
//! // Distributed online schedule (Algorithm 3).
//! let online = solve_online(&scenario, &coverage, &OnlineConfig::default());
//! assert!(online.report.total_utility <= result.relaxed_value + 1e-9 + 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use haste_core as core;
pub use haste_distributed as distributed;
pub use haste_geometry as geometry;
pub use haste_model as model;
pub use haste_parallel as parallel;
pub use haste_service as service;
pub use haste_sim as sim;
pub use haste_submodular as submodular;
pub use haste_testbed as testbed;

/// The most common imports in one place.
pub mod prelude {
    pub use haste_core::{
        extract_dominant_sets, solve_baseline, solve_exact, solve_offline, solve_offline_emr,
        BaselineKind, DominantScope, EmrOptions, HasteRInstance, OfflineConfig, SolveResult,
    };
    pub use haste_distributed::{
        negotiate_rounds, negotiate_threaded, replay_trace, solve_baseline_online, solve_online,
        ChargerFailure, EngineKind, NegotiationConfig, NeighborGraph, OnlineConfig, OnlineEngine,
        TaskSpec,
    };
    pub use haste_geometry::{Angle, Arc, Sector, Vec2};
    pub use haste_model::{
        evaluate, evaluate_relaxed, Charger, ChargingParams, CoverageMap, EvalOptions, EvalReport,
        Scenario, Schedule, Task, TimeGrid, UtilityFn,
    };
    pub use haste_sim::{Algo, ExperimentCtx, FigureTable, Placement, ScenarioSpec, Summary};
}
