//! Field-experiment substitute (Section 8 of the paper).
//!
//! The paper evaluates on two physical testbeds of Powercast TX91501 power
//! transmitters and rechargeable sensor nodes. This crate reproduces those
//! experiments *in silico* by driving the identical scheduling code through
//! the empirical charging model the paper itself fits to that hardware:
//! `α = 41.93`, `β = 0.6428`, `D = 4 m`, `A_s = 60°`, `A_o = 120°`,
//! `ρ = 1/12`, `τ = 1`, `w_j = 1/8` (resp. `1/20`), `T_s = 1 min`.
//!
//! **Units.** With `α = 41.93` the power law yields tens of *milliwatts* at
//! meter range (a TX91501 emits 3 W and delivers mW-scale harvested power),
//! so this crate works in milliwatts and millijoules: required energies of
//! 3–5 J become 3000–5000 mJ. Utilities are dimensionless either way.
//!
//! **Topologies.** The paper does not tabulate node coordinates. Topology 1
//! follows Fig. 20's description — 8 transmitters on the boundary of a
//! 2.4 m × 2.4 m square, 8 nodes inside, task windows/orientations as
//! printed, with tasks 1 and 6 carrying the longest windows. Topology 2 is
//! the paper's "randomly generated, much more irregular" 16-transmitter /
//! 20-node layout, reproduced here as a seed-fixed random layout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use haste_core::BaselineKind;
use haste_geometry::{Angle, Vec2};
use haste_model::{Charger, ChargingParams, CoverageMap, Scenario, Task, TimeGrid};
use haste_sim::{Algo, FigureTable, Series};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's small testbed: 8 TX91501 transmitters on the boundary of a
/// 2.4 m × 2.4 m square, 8 rechargeable sensor nodes / tasks inside.
pub fn topology1() -> Scenario {
    let params = ChargingParams::testbed_tx91501();
    // Transmitters on the square boundary (meters).
    let chargers = vec![
        Charger::new(0, Vec2::new(0.0, 0.6)),
        Charger::new(1, Vec2::new(0.0, 1.8)),
        Charger::new(2, Vec2::new(0.6, 0.0)),
        Charger::new(3, Vec2::new(1.8, 0.0)),
        Charger::new(4, Vec2::new(2.4, 0.6)),
        Charger::new(5, Vec2::new(2.4, 1.8)),
        Charger::new(6, Vec2::new(0.6, 2.4)),
        Charger::new(7, Vec2::new(1.8, 2.4)),
    ];
    // Nodes inside; orientation / release / end (slots) per task.
    // Required energy in millijoules. The paper quotes 3–5 J; at our
    // synthesized coordinates the fitted α delivers noticeably more power
    // than at the paper's physical layout, so the requirements are scaled
    // ~2.5× (7.5–12.5 J) to restore the published utility range (0.4–1.0)
    // — see DESIGN.md §4. Tasks 0 and 5 (the paper's tasks 1 and 6) hold
    // the longest windows.
    let w = 1.0 / 8.0;
    let tasks = vec![
        Task::new(
            0,
            Vec2::new(0.5, 1.2),
            Angle::from_degrees(180.0),
            0,
            10,
            8_750.0,
            w,
        ),
        Task::new(
            1,
            Vec2::new(1.2, 0.5),
            Angle::from_degrees(270.0),
            1,
            5,
            10_500.0,
            w,
        ),
        Task::new(
            2,
            Vec2::new(1.9, 1.0),
            Angle::from_degrees(0.0),
            0,
            4,
            7_500.0,
            w,
        ),
        Task::new(
            3,
            Vec2::new(1.2, 1.9),
            Angle::from_degrees(90.0),
            2,
            6,
            12_500.0,
            w,
        ),
        Task::new(
            4,
            Vec2::new(0.8, 0.8),
            Angle::from_degrees(225.0),
            3,
            7,
            9_500.0,
            w,
        ),
        Task::new(
            5,
            Vec2::new(1.6, 1.6),
            Angle::from_degrees(45.0),
            0,
            9,
            10_000.0,
            w,
        ),
        Task::new(
            6,
            Vec2::new(0.4, 1.9),
            Angle::from_degrees(135.0),
            4,
            8,
            11_500.0,
            w,
        ),
        Task::new(
            7,
            Vec2::new(2.0, 0.4),
            Angle::from_degrees(300.0),
            2,
            7,
            8_000.0,
            w,
        ),
    ];
    Scenario::new(
        params,
        TimeGrid::minutes(10),
        chargers,
        tasks,
        1.0 / 12.0,
        1,
    )
    .expect("topology 1 is a valid scenario")
}

/// The paper's large testbed: 16 transmitters and 20 nodes in an irregular
/// (randomly generated) layout.
pub fn topology2() -> Scenario {
    let params = ChargingParams::testbed_tx91501();
    let mut rng = StdRng::seed_from_u64(0x7E57_BEDF);
    let side = 3.6;
    let chargers: Vec<Charger> = (0..16)
        .map(|i| {
            Charger::new(
                i as u32,
                Vec2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
            )
        })
        .collect();
    let w = 1.0 / 20.0;
    let tasks = (0..20)
        .map(|j| {
            let release = rng.gen_range(0..4usize);
            let duration = rng.gen_range(3..=9usize);
            // Resample placement/facing until at least one transmitter can
            // reach the node: an unreachable node would be a dead row in
            // Figs. 24–25, and the paper's physical deployment has none.
            loop {
                let task = Task::new(
                    j as u32,
                    Vec2::new(
                        rng.gen_range(0.2..side - 0.2),
                        rng.gen_range(0.2..side - 0.2),
                    ),
                    Angle::from_degrees(rng.gen_range(0.0..360.0)),
                    release,
                    release + duration,
                    rng.gen_range(8_000.0..14_000.0),
                    w,
                );
                if chargers
                    .iter()
                    .any(|c| haste_model::power::chargeable(&params, c, &task))
                {
                    break task;
                }
            }
        })
        .collect();
    Scenario::new(
        params,
        TimeGrid::minutes(13),
        chargers,
        tasks,
        1.0 / 12.0,
        1,
    )
    .expect("topology 2 is a valid scenario")
}

/// The testbed algorithm roster of Figs. 21–25.
fn roster(online: bool) -> Vec<Algo> {
    if online {
        vec![
            Algo::OnlineHaste { colors: 4 },
            Algo::OnlineBaseline(BaselineKind::GreedyUtility),
            Algo::OnlineBaseline(BaselineKind::GreedyCover),
        ]
    } else {
        vec![
            Algo::OfflineHaste { colors: 4 },
            Algo::OfflineBaseline(BaselineKind::GreedyUtility),
            Algo::OfflineBaseline(BaselineKind::GreedyCover),
        ]
    }
}

/// Per-task utilities of one algorithm on a testbed scenario.
pub fn per_task_utilities(scenario: &Scenario, algo: Algo, seed: u64) -> Vec<f64> {
    let coverage = CoverageMap::build(scenario);
    match algo {
        Algo::OfflineHaste { colors } => {
            haste_core::solve_offline(
                scenario,
                &coverage,
                &haste_core::OfflineConfig {
                    colors,
                    seed,
                    ..haste_core::OfflineConfig::default()
                },
            )
            .report
            .per_task_utility
        }
        Algo::OnlineHaste { .. } => {
            algo.run_online(scenario, &coverage, seed)
                .report
                .per_task_utility
        }
        Algo::OfflineBaseline(kind) => {
            haste_core::solve_baseline(scenario, &coverage, kind)
                .report
                .per_task_utility
        }
        Algo::OnlineBaseline(kind) => {
            haste_distributed::solve_baseline_online(scenario, &coverage, kind)
                .report
                .per_task_utility
        }
        Algo::Exact { budget } => {
            haste_core::solve_exact(scenario, &coverage, budget)
                .expect("testbed instances are small")
                .report
                .per_task_utility
        }
    }
}

/// Builds the per-task utility table of one testbed figure.
fn testbed_figure(id: &str, title: &str, scenario: &Scenario, online: bool) -> FigureTable {
    let algos = roster(online);
    let series = algos
        .iter()
        .map(|&algo| Series {
            name: algo.label(),
            values: per_task_utilities(scenario, algo, 0xBED),
        })
        .collect();
    FigureTable {
        id: id.into(),
        title: title.into(),
        x_label: "task".into(),
        x: (1..=scenario.num_tasks()).map(|j| j as f64).collect(),
        series,
    }
}

/// Fig. 21: per-task utility on topology 1, centralized offline.
pub fn fig21() -> FigureTable {
    testbed_figure(
        "fig21",
        "testbed topology 1: per-task utility (centralized offline)",
        &topology1(),
        false,
    )
}

/// Fig. 22: per-task utility on topology 1, distributed online.
pub fn fig22() -> FigureTable {
    testbed_figure(
        "fig22",
        "testbed topology 1: per-task utility (distributed online)",
        &topology1(),
        true,
    )
}

/// Fig. 24: per-task utility on topology 2, centralized offline.
pub fn fig24() -> FigureTable {
    testbed_figure(
        "fig24",
        "testbed topology 2: per-task utility (centralized offline)",
        &topology2(),
        false,
    )
}

/// Fig. 25: per-task utility on topology 2, distributed online.
pub fn fig25() -> FigureTable {
    testbed_figure(
        "fig25",
        "testbed topology 2: per-task utility (distributed online)",
        &topology2(),
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_are_valid_and_covered() {
        for s in [topology1(), topology2()] {
            s.validate().unwrap();
            let cov = CoverageMap::build(&s);
            // Every task should be chargeable by at least one transmitter —
            // a dead node would make the figure meaningless.
            let orphan = s
                .tasks
                .iter()
                .filter(|t| cov.chargers_of(t.id).is_empty())
                .count();
            assert_eq!(orphan, 0, "{orphan} unreachable tasks");
        }
    }

    #[test]
    fn topology_shapes_match_paper() {
        let t1 = topology1();
        assert_eq!(t1.num_chargers(), 8);
        assert_eq!(t1.num_tasks(), 8);
        assert!((t1.total_weight() - 1.0).abs() < 1e-9);
        let t2 = topology2();
        assert_eq!(t2.num_chargers(), 16);
        assert_eq!(t2.num_tasks(), 20);
    }

    #[test]
    fn figures_have_full_series() {
        let f = fig21();
        assert_eq!(f.x.len(), 8);
        assert_eq!(f.series.len(), 3);
        for s in &f.series {
            assert_eq!(s.values.len(), 8);
            assert!(s.values.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
        }
    }

    #[test]
    fn haste_beats_baselines_on_average_topology1() {
        for f in [fig21(), fig22()] {
            let haste = f.series_mean("HASTE(C=4)").unwrap();
            let bu = f.series_mean("GreedyUtility").unwrap();
            let bc = f.series_mean("GreedyCover").unwrap();
            assert!(
                haste >= bu - 1e-9 && haste >= bc - 1e-9,
                "{}: HASTE {haste} vs GU {bu} GC {bc}",
                f.id
            );
        }
    }

    #[test]
    fn longest_tasks_fare_well_offline() {
        // The paper observes tasks 1 and 6 (indices 0 and 5) achieve the
        // top utilities thanks to their long windows.
        let f = fig21();
        let haste = &f.series[0].values;
        let mut ranked: Vec<usize> = (0..haste.len()).collect();
        ranked.sort_by(|&a, &b| haste[b].partial_cmp(&haste[a]).unwrap());
        assert!(
            ranked[..3].contains(&0) || ranked[..3].contains(&5),
            "long-window tasks not near the top: {ranked:?} {haste:?}"
        );
    }

    #[test]
    fn deterministic_topology2() {
        let a = topology2();
        let b = topology2();
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.chargers, b.chargers);
    }
}
