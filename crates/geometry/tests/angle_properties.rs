//! Property-based tests of the circular-angle algebra — the foundation the
//! dominant-set sweep relies on.

use haste_geometry::{Angle, Arc, Sector, Vec2, TAU};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Normalization is idempotent and lands in [0, 2π).
    #[test]
    fn normalization_invariant(raw in -1e6f64..1e6) {
        let a = Angle::from_radians(raw);
        prop_assert!((0.0..TAU).contains(&a.radians()));
        let again = Angle::from_radians(a.radians());
        prop_assert!((a.radians() - again.radians()).abs() < 1e-9);
    }

    /// ccw_delta is the inverse of rotation: b = a + ccw_delta(a, b).
    #[test]
    fn ccw_delta_inverts_rotation(a in 0.0f64..TAU, b in 0.0f64..TAU) {
        let a = Angle::from_radians(a);
        let b = Angle::from_radians(b);
        let rebuilt = a + a.ccw_delta(b);
        prop_assert!(rebuilt.distance(b).radians() < 1e-9);
    }

    /// Distance is symmetric, bounded by π, and zero iff equal (mod 2π).
    #[test]
    fn distance_metric_properties(a in 0.0f64..TAU, b in 0.0f64..TAU) {
        let a = Angle::from_radians(a);
        let b = Angle::from_radians(b);
        let d1 = a.distance(b).radians();
        let d2 = b.distance(a).radians();
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!(d1 <= std::f64::consts::PI + 1e-12);
        prop_assert!(a.distance(a).radians() < 1e-12);
    }

    /// Triangle inequality on the circle.
    #[test]
    fn distance_triangle(a in 0.0f64..TAU, b in 0.0f64..TAU, c in 0.0f64..TAU) {
        let (a, b, c) = (
            Angle::from_radians(a),
            Angle::from_radians(b),
            Angle::from_radians(c),
        );
        prop_assert!(
            a.distance(c).radians() <= a.distance(b).radians() + b.distance(c).radians() + 1e-9
        );
    }

    /// An arc contains exactly the points within its sweep.
    #[test]
    fn arc_membership_matches_delta(start in 0.0f64..TAU, width in 0.0f64..TAU, probe in 0.0f64..TAU) {
        let start = Angle::from_radians(start);
        let arc = Arc::new(start, width);
        let probe = Angle::from_radians(probe);
        let inside = start.ccw_delta(probe).radians() <= width + 1e-12;
        prop_assert_eq!(arc.contains(probe), inside);
    }

    /// within() agrees with the symmetric arc test.
    #[test]
    fn within_matches_centered_arc(center in 0.0f64..TAU, half in 0.0f64..(TAU / 2.0), probe in 0.0f64..TAU) {
        let center = Angle::from_radians(center);
        let probe = Angle::from_radians(probe);
        let arc = Arc::centered(center, half);
        // Allow boundary fuzz: the two predicates use the same tolerance
        // but accumulate rounding differently.
        if (probe.distance(center).radians() - half).abs() > 1e-9 {
            prop_assert_eq!(probe.within(center, half), arc.contains(probe));
        }
    }

    /// Sector containment is invariant under translation and rotation of
    /// the whole picture.
    #[test]
    fn sector_rigid_motion_invariance(
        facing in 0.0f64..TAU,
        opening in 0.1f64..TAU,
        px in -30.0f64..30.0,
        py in -30.0f64..30.0,
        shift in 0.0f64..TAU,
        dx in -50.0f64..50.0,
        dy in -50.0f64..50.0,
    ) {
        let apex = Vec2::new(3.0, -2.0);
        let p = Vec2::new(px, py);
        let sector = Sector::new(apex, Angle::from_radians(facing), opening, 25.0);
        let original = sector.contains(p);

        // Rotate everything by `shift` around the origin, then translate.
        let rot = |v: Vec2| {
            let (s, c) = shift.sin_cos();
            Vec2::new(v.x * c - v.y * s, v.x * s + v.y * c)
        };
        let t = Vec2::new(dx, dy);
        let moved = Sector::new(
            rot(apex) + t,
            Angle::from_radians(facing + shift),
            opening,
            25.0,
        );
        // Skip razor-edge cases where rounding flips the boundary.
        let d = (p - apex).norm();
        let edge = ((p - apex).azimuth().distance(Angle::from_radians(facing)).radians()
            - opening / 2.0)
            .abs();
        prop_assume!((d - 25.0).abs() > 1e-6 && edge > 1e-6);
        prop_assert_eq!(original, moved.contains(rot(p) + t));
    }
}
