//! Sector-shaped coverage areas of the directional charging model.

use serde::{Deserialize, Serialize};

use crate::{Angle, Vec2};

/// A sector in the plane: apex, facing direction, full opening angle and
/// radius.
///
/// In the directional charging model of the paper both the charger's
/// *charging area* (opening angle `A_s`) and a device's *receiving area*
/// (opening angle `A_o`) are sectors of radius `D`. A device is chargeable by
/// a charger iff each lies in the other's sector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sector {
    /// Apex of the sector (the charger / device position).
    pub apex: Vec2,
    /// Facing direction of the sector axis.
    pub facing: Angle,
    /// Full opening angle in radians (the paper's `A_s` / `A_o`).
    pub opening: f64,
    /// Radius in meters (the paper's `D`).
    pub radius: f64,
}

impl Sector {
    /// Creates a sector.
    #[inline]
    pub fn new(apex: Vec2, facing: Angle, opening: f64, radius: f64) -> Self {
        Sector {
            apex,
            facing,
            opening,
            radius,
        }
    }

    /// Whether point `p` lies inside the (closed) sector.
    ///
    /// This is the paper's coverage test: `‖apex→p‖ ≤ radius` and the angle
    /// between `apex→p` and the facing direction is at most `opening / 2`.
    /// The apex itself is considered covered (a device co-located with a
    /// charger is trivially in range).
    pub fn contains(&self, p: Vec2) -> bool {
        let d = p - self.apex;
        let dist = d.norm();
        if dist > self.radius + 1e-12 {
            return false;
        }
        if dist <= f64::EPSILON {
            return true;
        }
        d.azimuth().within(self.facing, self.opening / 2.0)
    }

    /// The same angular test as [`Sector::contains`] but ignoring the radius
    /// — used when range has already been checked once and only the rotating
    /// orientation varies.
    pub fn contains_direction(&self, p: Vec2) -> bool {
        let d = p - self.apex;
        if d.norm() <= f64::EPSILON {
            return true;
        }
        d.azimuth().within(self.facing, self.opening / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sector(facing_deg: f64, opening_deg: f64, radius: f64) -> Sector {
        Sector::new(
            Vec2::ZERO,
            Angle::from_degrees(facing_deg),
            opening_deg.to_radians(),
            radius,
        )
    }

    #[test]
    fn contains_in_range_and_angle() {
        let s = sector(0.0, 60.0, 10.0);
        assert!(s.contains(Vec2::new(5.0, 0.0)));
        // 29° off-axis, still inside the 30° half-angle.
        let p = Vec2::unit(Angle::from_degrees(29.0)) * 5.0;
        assert!(s.contains(p));
        // 31° off-axis: outside.
        let q = Vec2::unit(Angle::from_degrees(31.0)) * 5.0;
        assert!(!s.contains(q));
    }

    #[test]
    fn contains_respects_radius() {
        let s = sector(0.0, 60.0, 10.0);
        assert!(s.contains(Vec2::new(10.0, 0.0)));
        assert!(!s.contains(Vec2::new(10.1, 0.0)));
    }

    #[test]
    fn apex_is_covered() {
        let s = sector(123.0, 1.0, 10.0);
        assert!(s.contains(Vec2::ZERO));
    }

    #[test]
    fn wrapping_facing() {
        let s = sector(350.0, 40.0, 10.0);
        let p = Vec2::unit(Angle::from_degrees(5.0)) * 3.0;
        assert!(s.contains(p));
        let q = Vec2::unit(Angle::from_degrees(15.0)) * 3.0;
        assert!(!q.norm().is_nan());
        assert!(!s.contains(q));
    }

    #[test]
    fn direction_only_test_ignores_radius() {
        let s = sector(0.0, 60.0, 1.0);
        assert!(s.contains_direction(Vec2::new(100.0, 0.0)));
        assert!(!s.contains(Vec2::new(100.0, 0.0)));
    }
}
