//! Points and displacement vectors in the plane.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::Angle;

/// A point or displacement vector in the 2D plane, in meters.
///
/// `Vec2` is used both for positions (charger and device locations) and for
/// direction vectors (the `r_θ` unit vectors of the charging model). It is a
/// plain `Copy` value type.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Vec2 {
    /// The origin / zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The unit vector pointing in direction `angle` (measured
    /// counter-clockwise from the positive x-axis).
    #[inline]
    pub fn unit(angle: Angle) -> Self {
        let (s, c) = angle.radians().sin_cos();
        Vec2 { x: c, y: s }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 3D cross product; positive when `other` is
    /// counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (avoids the square root in distance tests).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (other - self).norm()
    }

    /// The direction of this vector as an [`Angle`] in `[0, 2π)`.
    ///
    /// The zero vector maps to angle `0`.
    #[inline]
    pub fn azimuth(self) -> Angle {
        Angle::from_radians(self.y.atan2(self.x))
    }

    /// Returns this vector scaled to unit length, or `None` for a (near-)zero
    /// vector.
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_basics() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert!(approx(a.dot(b), 0.0));
        assert!(approx(a.cross(b), 1.0));
        assert!(approx(b.cross(a), -1.0));
    }

    #[test]
    fn norms_and_distance() {
        let a = Vec2::new(3.0, 4.0);
        assert!(approx(a.norm(), 5.0));
        assert!(approx(a.norm_sq(), 25.0));
        assert!(approx(Vec2::ZERO.distance(a), 5.0));
    }

    #[test]
    fn azimuth_of_axes() {
        assert!(approx(Vec2::new(1.0, 0.0).azimuth().radians(), 0.0));
        assert!(approx(
            Vec2::new(0.0, 1.0).azimuth().radians(),
            std::f64::consts::FRAC_PI_2
        ));
        assert!(approx(
            Vec2::new(-1.0, 0.0).azimuth().radians(),
            std::f64::consts::PI
        ));
        // Fourth quadrant normalizes into [0, 2π).
        let a = Vec2::new(0.0, -1.0).azimuth().radians();
        assert!(approx(a, 3.0 * std::f64::consts::FRAC_PI_2));
    }

    #[test]
    fn unit_roundtrip() {
        for k in 0..16 {
            let theta = Angle::from_radians(k as f64 * 0.4);
            let v = Vec2::unit(theta);
            assert!(approx(v.norm(), 1.0));
            assert!(theta.distance(v.azimuth()).radians() < 1e-9);
        }
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let n = Vec2::new(0.0, 2.0).normalized().unwrap();
        assert!(approx(n.norm(), 1.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }
}
