//! Orientations on the circle, normalized to `[0, 2π)`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Neg, Sub};

use serde::{Deserialize, Serialize};

/// `2π`, the full circle.
pub const TAU: f64 = std::f64::consts::TAU;

/// An orientation angle on the circle, stored normalized to `[0, 2π)`.
///
/// Chargers in the HASTE model rotate freely in `[0, 2π)`; all of the
/// dominant-task-set machinery reasons about directions modulo a full turn,
/// so this type keeps its invariant (`0 ≤ radians < 2π`) at every operation
/// and offers wrap-aware arithmetic ([`Angle::distance`],
/// [`Angle::ccw_delta`]).
///
/// `Angle` intentionally does **not** implement `Ord`: there is no total
/// order on the circle. Use [`Angle::ccw_delta`] relative to a reference
/// direction when a sweep order is needed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Angle(f64);

impl Angle {
    /// The zero angle (positive x-axis).
    pub const ZERO: Angle = Angle(0.0);

    /// Creates an angle from radians, normalizing into `[0, 2π)`.
    #[inline]
    pub fn from_radians(radians: f64) -> Self {
        let mut r = radians % TAU;
        if r < 0.0 {
            r += TAU;
        }
        // `% TAU` of a value barely below 0 can round to TAU itself.
        if r >= TAU {
            r = 0.0;
        }
        Angle(r)
    }

    /// Creates an angle from degrees, normalizing into `[0°, 360°)`.
    #[inline]
    pub fn from_degrees(degrees: f64) -> Self {
        Angle::from_radians(degrees.to_radians())
    }

    /// The normalized value in radians, in `[0, 2π)`.
    #[inline]
    pub fn radians(self) -> f64 {
        self.0
    }

    /// The normalized value in degrees, in `[0°, 360°)`.
    #[inline]
    pub fn degrees(self) -> f64 {
        self.0.to_degrees()
    }

    /// Counter-clockwise offset from `self` to `other`, in `[0, 2π)`.
    ///
    /// This is the rotation a charger at orientation `self` must perform,
    /// rotating counter-clockwise, to reach `other`.
    #[inline]
    pub fn ccw_delta(self, other: Angle) -> Angle {
        Angle::from_radians(other.0 - self.0)
    }

    /// The unsigned angular distance between two orientations, in `[0, π]`.
    #[inline]
    pub fn distance(self, other: Angle) -> Angle {
        let d = (self.0 - other.0).abs();
        Angle(d.min(TAU - d))
    }

    /// Whether `self` lies within `half_width` of `center` on the circle.
    ///
    /// The comparison is inclusive, matching the `≥ 0` dot-product tests in
    /// the paper's charging model (Eq. for `P_r`).
    #[inline]
    pub fn within(self, center: Angle, half_width: f64) -> bool {
        self.distance(center).radians() <= half_width + 1e-12
    }

    /// Midpoint of the counter-clockwise arc from `self` to `other`.
    #[inline]
    pub fn ccw_midpoint(self, other: Angle) -> Angle {
        Angle::from_radians(self.0 + self.ccw_delta(other).0 / 2.0)
    }

    /// Compares two angles by their counter-clockwise offset from a
    /// reference direction — the sweep order used by dominant-task-set
    /// extraction.
    #[inline]
    pub fn sweep_cmp(self, other: Angle, reference: Angle) -> Ordering {
        let a = reference.ccw_delta(self).0;
        let b = reference.ccw_delta(other).0;
        a.partial_cmp(&b).expect("angles are finite")
    }
}

impl Add for Angle {
    type Output = Angle;
    #[inline]
    fn add(self, rhs: Angle) -> Angle {
        Angle::from_radians(self.0 + rhs.0)
    }
}

impl Sub for Angle {
    type Output = Angle;
    #[inline]
    fn sub(self, rhs: Angle) -> Angle {
        Angle::from_radians(self.0 - rhs.0)
    }
}

impl Neg for Angle {
    type Output = Angle;
    #[inline]
    fn neg(self) -> Angle {
        Angle::from_radians(-self.0)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}°", self.degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Angle::from_radians(TAU).radians(), 0.0);
        assert_eq!(Angle::from_radians(-TAU).radians(), 0.0);
        let a = Angle::from_radians(-0.5);
        assert!((a.radians() - (TAU - 0.5)).abs() < 1e-12);
        let b = Angle::from_radians(3.0 * TAU + 1.0);
        assert!((b.radians() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_never_yields_tau() {
        // Values just below zero must wrap strictly below 2π.
        let a = Angle::from_radians(-1e-18);
        assert!(a.radians() < TAU);
        assert!(a.radians() >= 0.0);
    }

    #[test]
    fn degrees_roundtrip() {
        let a = Angle::from_degrees(270.0);
        assert!((a.degrees() - 270.0).abs() < 1e-9);
        assert!((a.radians() - 3.0 * std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn ccw_delta_wraps() {
        let a = Angle::from_degrees(350.0);
        let b = Angle::from_degrees(10.0);
        assert!((a.ccw_delta(b).degrees() - 20.0).abs() < 1e-9);
        assert!((b.ccw_delta(a).degrees() - 340.0).abs() < 1e-9);
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let a = Angle::from_degrees(10.0);
        let b = Angle::from_degrees(200.0);
        let d1 = a.distance(b).degrees();
        let d2 = b.distance(a).degrees();
        assert!((d1 - d2).abs() < 1e-9);
        assert!((d1 - 170.0).abs() < 1e-9);
    }

    #[test]
    fn within_inclusive_boundary() {
        let c = Angle::from_degrees(90.0);
        assert!(Angle::from_degrees(120.0).within(c, 30f64.to_radians()));
        assert!(!Angle::from_degrees(121.0).within(c, 30f64.to_radians()));
    }

    #[test]
    fn ccw_midpoint_wraps() {
        let a = Angle::from_degrees(350.0);
        let b = Angle::from_degrees(10.0);
        assert!((a.ccw_midpoint(b).degrees() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_order() {
        let reference = Angle::from_degrees(45.0);
        let a = Angle::from_degrees(50.0);
        let b = Angle::from_degrees(40.0); // 355° past the reference going CCW
        assert_eq!(a.sweep_cmp(b, reference), Ordering::Less);
    }
}
