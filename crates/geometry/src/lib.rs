//! 2D geometry substrate for directional wireless charger networks.
//!
//! This crate provides the geometric vocabulary the HASTE reproduction is
//! built on:
//!
//! * [`Vec2`] — points and displacement vectors in the plane,
//! * [`Angle`] — an orientation on the circle, always normalized to
//!   `[0, 2π)`, with arithmetic that respects wrap-around,
//! * [`Sector`] — the charging / receiving area of the directional charging
//!   model (an apex, a facing direction, a half-angle and a radius),
//! * [`Arc`] — a circular arc of directions, the object swept by the
//!   dominant-task-set extraction algorithm.
//!
//! Everything here is plain value types with no allocation, suitable for the
//! hot loops of the schedulers; all operations are `f64` and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod angle;
mod arc;
mod sector;
mod vec2;

pub use angle::{Angle, TAU};
pub use arc::Arc;
pub use sector::Sector;
pub use vec2::Vec2;
