//! Circular arcs of directions.

use serde::{Deserialize, Serialize};

use crate::{Angle, TAU};

/// A closed arc of directions on the circle, described by a start direction
/// and a counter-clockwise width.
///
/// Arcs are the central object of dominant-task-set extraction: the set of
/// charger orientations that cover a given task is the arc of width `A_s`
/// centered at the task's azimuth from the charger.
///
/// A width of `2π` (or more, clamped) denotes the full circle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arc {
    start: Angle,
    width: f64,
}

impl Arc {
    /// The full circle.
    pub const FULL: Arc = Arc {
        start: Angle::ZERO,
        width: TAU,
    };

    /// Creates the arc starting at `start` and extending `width` radians
    /// counter-clockwise. Widths are clamped to `[0, 2π]`.
    #[inline]
    pub fn new(start: Angle, width: f64) -> Self {
        Arc {
            start,
            width: width.clamp(0.0, TAU),
        }
    }

    /// Creates the arc of half-width `half_width` centered on `center`.
    #[inline]
    pub fn centered(center: Angle, half_width: f64) -> Self {
        let hw = half_width.clamp(0.0, TAU / 2.0);
        Arc::new(center - Angle::from_radians(hw), 2.0 * hw)
    }

    /// The start direction (counter-clockwise end is `start + width`).
    #[inline]
    pub fn start(&self) -> Angle {
        self.start
    }

    /// The counter-clockwise end direction.
    #[inline]
    pub fn end(&self) -> Angle {
        self.start + Angle::from_radians(self.width)
    }

    /// The arc width in radians, in `[0, 2π]`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The direction at the middle of the arc.
    #[inline]
    pub fn midpoint(&self) -> Angle {
        self.start + Angle::from_radians(self.width / 2.0)
    }

    /// Whether the arc is the full circle.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.width >= TAU - 1e-12
    }

    /// Whether direction `a` lies on the (closed) arc.
    #[inline]
    pub fn contains(&self, a: Angle) -> bool {
        if self.is_full() {
            return true;
        }
        self.start.ccw_delta(a).radians() <= self.width + 1e-12
    }

    /// Whether two arcs share at least one direction.
    pub fn intersects(&self, other: &Arc) -> bool {
        if self.is_full() || other.is_full() {
            return true;
        }
        self.contains(other.start)
            || self.contains(other.end())
            || other.contains(self.start)
            || other.contains(self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deg(d: f64) -> Angle {
        Angle::from_degrees(d)
    }

    #[test]
    fn contains_simple() {
        let a = Arc::new(deg(10.0), 40f64.to_radians());
        assert!(a.contains(deg(10.0)));
        assert!(a.contains(deg(30.0)));
        assert!(a.contains(deg(50.0)));
        assert!(!a.contains(deg(51.0)));
        assert!(!a.contains(deg(9.0)));
    }

    #[test]
    fn contains_wrapping() {
        let a = Arc::new(deg(350.0), 30f64.to_radians());
        assert!(a.contains(deg(355.0)));
        assert!(a.contains(deg(0.0)));
        assert!(a.contains(deg(20.0)));
        assert!(!a.contains(deg(21.0)));
        assert!(!a.contains(deg(349.0)));
    }

    #[test]
    fn centered_matches_within() {
        let c = deg(90.0);
        let arc = Arc::centered(c, 30f64.to_radians());
        assert!(arc.contains(deg(60.0)));
        assert!(arc.contains(deg(120.0)));
        assert!(!arc.contains(deg(121.0)));
        assert!((arc.midpoint().degrees() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn full_circle() {
        assert!(Arc::FULL.is_full());
        assert!(Arc::FULL.contains(deg(123.0)));
        let nearly = Arc::new(deg(0.0), TAU);
        assert!(nearly.is_full());
    }

    #[test]
    fn zero_width_is_a_point() {
        let a = Arc::new(deg(45.0), 0.0);
        assert!(a.contains(deg(45.0)));
        assert!(!a.contains(deg(46.0)));
    }

    #[test]
    fn intersects_cases() {
        let a = Arc::new(deg(0.0), 60f64.to_radians());
        let b = Arc::new(deg(50.0), 60f64.to_radians());
        let c = Arc::new(deg(200.0), 20f64.to_radians());
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&Arc::FULL));
        // One arc fully inside the other.
        let inner = Arc::new(deg(10.0), 10f64.to_radians());
        assert!(a.intersects(&inner));
        assert!(inner.intersects(&a));
    }

    #[test]
    fn width_clamped() {
        let a = Arc::new(deg(0.0), 10.0 * TAU);
        assert!(a.is_full());
        let b = Arc::new(deg(0.0), -1.0);
        assert_eq!(b.width(), 0.0);
    }
}
