//! End-to-end daemon tests over real loopback TCP: protocol behavior,
//! kill-and-restore determinism, and the load-generator harness.

use haste_distributed::{replay_trace, OnlineEngine, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_model::{Charger, ChargingParams, Scenario, TimeGrid};
use haste_service::{loadgen, serve, Client, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small deployment: chargers only; tasks arrive over the wire.
fn base_scenario(seed: u64, chargers: usize, slots: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let chargers = (0..chargers)
        .map(|i| {
            Charger::new(
                i as u32,
                Vec2::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0)),
            )
        })
        .collect();
    Scenario::new(
        ChargingParams::simulation_default(),
        TimeGrid::new(60.0, slots),
        chargers,
        Vec::new(),
        1.0 / 12.0,
        1,
    )
    .unwrap()
}

/// A deterministic stream of submissions: `(slot, spec)` sorted by slot.
fn submission_trace(seed: u64, count: usize, slots: usize) -> Vec<(usize, TaskSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace: Vec<(usize, TaskSpec)> = (0..count)
        .map(|_| {
            let slot = rng.gen_range(0..slots);
            let duration = rng.gen_range(2..=6usize);
            (
                slot,
                TaskSpec {
                    device_pos: Vec2::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0)),
                    device_facing: Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
                    end_slot: (slot + duration).min(slots),
                    required_energy: rng.gen_range(500.0..2500.0),
                    weight: 1.0,
                },
            )
        })
        .collect();
    trace.sort_by_key(|(slot, _)| *slot);
    trace
}

/// Drives a full session: submit each spec in its slot, tick through the
/// grid, return (schedule text, utility fields).
fn drive(
    client: &mut Client,
    trace: &[(usize, TaskSpec)],
    slots: usize,
    from_slot: usize,
) -> (String, f64, f64) {
    let mut next = trace.partition_point(|(slot, _)| *slot < from_slot);
    for slot in from_slot..slots {
        while next < trace.len() && trace[next].0 == slot {
            client.submit(&trace[next].1).unwrap();
            next += 1;
        }
        client.tick(1).unwrap();
    }
    assert_eq!(next, trace.len());
    let schedule = client.snapshot().unwrap(); // full state, includes schedule
    let (utility, relaxed) = client.utility().unwrap();
    (schedule, utility, relaxed)
}

#[test]
fn daemon_session_is_deterministic_across_kill_and_restore() {
    let scenario = base_scenario(42, 5, 12);
    let trace = submission_trace(43, 30, 12);

    // Run A: one daemon, uninterrupted.
    let server_a = serve(ServerConfig::default()).unwrap();
    let mut client_a = Client::connect(server_a.addr()).unwrap();
    client_a.load(&scenario).unwrap();
    let (snap_a, utility_a, relaxed_a) = drive(&mut client_a, &trace, 12, 0);
    client_a.bye().unwrap();
    server_a.shutdown();

    // Run B: daemon killed mid-run, state carried over via SNAPSHOT into a
    // fresh daemon, session continues with the identical remaining trace.
    let server_b1 = serve(ServerConfig::default()).unwrap();
    let mut client_b = Client::connect(server_b1.addr()).unwrap();
    client_b.load(&scenario).unwrap();
    let mut next = 0;
    for slot in 0..6 {
        while next < trace.len() && trace[next].0 == slot {
            client_b.submit(&trace[next].1).unwrap();
            next += 1;
        }
        client_b.tick(1).unwrap();
    }
    let mid_snapshot = client_b.snapshot().unwrap();
    drop(client_b);
    server_b1.shutdown(); // kill

    let server_b2 = serve(ServerConfig::default()).unwrap();
    let mut client_b2 = Client::connect(server_b2.addr()).unwrap();
    let restored_clock = client_b2.restore(&mid_snapshot).unwrap();
    assert_eq!(restored_clock, 6);
    let (snap_b, utility_b, relaxed_b) = drive(&mut client_b2, &trace, 12, 6);
    client_b2.bye().unwrap();
    server_b2.shutdown();

    // Bit-identical final state: full snapshots (schedule, counters,
    // negotiation statistics) and utilities agree exactly.
    assert_eq!(snap_a, snap_b);
    assert_eq!(utility_a.to_bits(), utility_b.to_bits());
    assert_eq!(relaxed_a.to_bits(), relaxed_b.to_bits());
}

#[test]
fn daemon_streamed_session_matches_batch_replay() {
    let scenario = base_scenario(7, 4, 10);
    let trace = submission_trace(8, 20, 10);
    let server = serve(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.load(&scenario).unwrap();
    let (final_snapshot, utility, _relaxed) = drive(&mut client, &trace, 10, 0);
    client.bye().unwrap();
    server.shutdown();

    let engine = OnlineEngine::restore(&final_snapshot).unwrap();
    let replayed = replay_trace(engine.scenario().clone(), engine.config().clone());
    assert_eq!(replayed.report.total_utility.to_bits(), utility.to_bits());
}

#[test]
fn protocol_error_paths() {
    let server = serve(ServerConfig {
        max_pending: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let spec = TaskSpec {
        device_pos: Vec2::new(5.0, 5.0),
        device_facing: Angle::from_radians(1.0),
        end_slot: 4,
        required_energy: 700.0,
        weight: 1.0,
    };

    // Engine queries before LOAD.
    assert_eq!(
        client.submit(&spec).unwrap_err().code(),
        Some("no-scenario")
    );
    assert_eq!(client.tick(1).unwrap_err().code(), Some("no-scenario"));
    assert_eq!(client.schedule().unwrap_err().code(), Some("no-scenario"));

    client.load(&base_scenario(1, 3, 6)).unwrap();
    // Double LOAD is rejected.
    assert_eq!(
        client.load(&base_scenario(2, 3, 6)).unwrap_err().code(),
        Some("already-loaded")
    );
    // Admission control: third submission in a slot bounces.
    client.submit(&spec).unwrap();
    client.submit(&spec).unwrap();
    assert_eq!(client.submit(&spec).unwrap_err().code(), Some("overload"));
    // A tick drains the pending window.
    client.tick(1).unwrap();
    client.submit(&spec).unwrap();
    // Bad task: window already over.
    assert_eq!(
        client
            .submit(&TaskSpec {
                end_slot: 1,
                ..spec
            })
            .unwrap_err()
            .code(),
        Some("bad-task")
    );
    // Exhaust the grid; further ticks and submits report at-horizon.
    client.tick(16).unwrap();
    assert_eq!(client.tick(1).unwrap_err().code(), Some("at-horizon"));
    assert_eq!(client.submit(&spec).unwrap_err().code(), Some("at-horizon"));
    // Garbage snapshot.
    assert_eq!(
        client.restore("not a snapshot\n").unwrap_err().code(),
        Some("bad-snapshot")
    );
    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn concurrent_sessions_share_one_engine() {
    let server = serve(ServerConfig::default()).unwrap();
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    a.load(&base_scenario(3, 3, 8)).unwrap();
    let spec = TaskSpec {
        device_pos: Vec2::new(5.0, 5.0),
        device_facing: Angle::from_radians(0.5),
        end_slot: 6,
        required_energy: 900.0,
        weight: 1.0,
    };
    let (id_a, _) = a.submit(&spec).unwrap();
    let (id_b, _) = b.submit(&spec).unwrap();
    // Ids are assigned from one shared arrival sequence.
    assert_ne!(id_a, id_b);
    let (clock, open) = b.tick(1).unwrap();
    assert_eq!(clock, 1);
    assert!(open);
    let (clock_seen_by_a, _) = a.clock().unwrap();
    assert_eq!(clock_seen_by_a, 1);
    a.bye().unwrap();
    b.bye().unwrap();
    server.shutdown();
}

/// Rule-P1 regression guard: every malformed-but-parseable request must
/// produce a structured `ERR <code>` reply, and no sequence of them may
/// kill the daemon's connection loop. Raw TCP (no `Client`) so the test
/// controls the exact wire bytes, hostile values included.
#[test]
fn malformed_sequences_cannot_kill_the_connection() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    /// Sends `payload` verbatim and reads back one reply line.
    fn roundtrip(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        payload: &str,
    ) -> String {
        write!(stream, "{payload}").unwrap();
        stream.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            !reply.is_empty(),
            "connection died after request {payload:?}"
        );
        reply.trim_end().to_string()
    }
    fn code_of(reply: &str) -> String {
        let mut fields = reply.split_whitespace();
        assert_eq!(fields.next(), Some("ERR"), "expected ERR reply: {reply}");
        fields.next().unwrap_or_default().to_string()
    }

    let server = serve(ServerConfig::default()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |payload: String| roundtrip(&mut stream, &mut reader, &payload);

    // A hostile sequence: every line parses (or fails to parse) without
    // panicking, and each gets exactly one structured reply.
    assert_eq!(code_of(&send("HELLO v9\n".into())), "version");
    // `nan`/`inf` are valid f64 spellings — parseable, then rejected.
    assert_eq!(
        code_of(&send("SUBMIT nan nan nan 6 700 1\n".into())),
        "bad-task"
    );
    assert_eq!(code_of(&send("TICK 0\n".into())), "bad-request");
    assert_eq!(
        code_of(&send("TICK 99999999999999999999999999\n".into())),
        "bad-request"
    );
    assert_eq!(code_of(&send("CLOCK? noise\n".into())), "bad-request");
    assert_eq!(code_of(&send("SCHEDULE?\n".into())), "no-scenario");

    // LOAD with an unparsable one-line scenario document.
    assert_eq!(
        code_of(&send("LOAD 1\nnot a scenario\n".into())),
        "bad-request"
    );

    // Load a real scenario over the same (still healthy) connection.
    let scenario_text = haste_model::io::write_scenario(&base_scenario(11, 3, 8));
    let load = format!("LOAD {}\n{scenario_text}", scenario_text.lines().count());
    assert!(send(load).starts_with("OK "), "LOAD failed");

    // Hostile submissions against the live engine.
    assert_eq!(
        code_of(&send("SUBMIT 5 5 0.5 6 nan 1\n".into())),
        "bad-task"
    );
    assert_eq!(
        code_of(&send("SUBMIT 5 5 0.5 6 -700 1\n".into())),
        "bad-task"
    );
    assert_eq!(
        code_of(&send("SUBMIT 5 5 0.5 6 700 nan\n".into())),
        "bad-task"
    );
    assert_eq!(
        code_of(&send("SUBMIT 5 5 0.5 999999 700 1\n".into())),
        "bad-task"
    );
    assert_eq!(
        code_of(&send("SUBMIT 5 5 inf 6 700 1\n".into())),
        "bad-task"
    );

    // RESTORE with a garbage one-line snapshot.
    assert_eq!(
        code_of(&send("RESTORE 1\ngarbage\n".into())),
        "bad-snapshot"
    );

    // The connection loop survived all of it: a normal session still works.
    assert!(send("SUBMIT 5 5 0.5 6 900 1\n".into()).starts_with("OK task=0"));
    assert!(send("TICK\n".into()).starts_with("OK slot=1"));
    assert!(send("UTILITY?\n".into()).starts_with("OK utility="));
    assert_eq!(send("BYE\n".into()), "OK bye");
    server.shutdown();
}

#[test]
fn loadgen_smoke_run_verifies_replay() {
    let report = loadgen::run(&loadgen::LoadgenConfig {
        connections: 4,
        submissions: 300,
        chargers: 5,
        field: 120.0,
        slots: 16,
        seed: 5,
        verify_replay: true,
        ..loadgen::LoadgenConfig::default()
    })
    .unwrap();
    assert_eq!(report.submitted, 300);
    assert_eq!(report.accepted, 300);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.replay_matches, Some(true));
    assert!(report.p50_us <= report.p99_us);
    assert!(report.p99_us <= report.max_us);
    assert!(report.utility.is_finite());
}
