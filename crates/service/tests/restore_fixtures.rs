//! `RESTORE` robustness: truncated or corrupted composite snapshot
//! documents must produce a structured `ERR bad-snapshot` — never a
//! panic, never a partially restored router. Driven by the static
//! fixtures in `tests/fixtures/restore/`, an exhaustive truncation sweep
//! of a real composite document, and a spliced inconsistent cut.

use haste_distributed::{OnlineConfig, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_model::{Charger, ChargingParams, Scenario, Task, TimeGrid};
use haste_service::{parse_composite, render_composite, serve_router, Client, RouterConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SLOTS: usize = 12;

/// Same halo-safe 200×100 / 2×1 layout as the other router tests.
fn partitionable_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chargers = Vec::new();
    for i in 0..6u32 {
        let x0 = if i % 2 == 0 { 30.0 } else { 130.0 };
        chargers.push(Charger::new(
            i,
            Vec2::new(x0 + rng.gen_range(0.0..40.0), rng.gen_range(20.0..80.0)),
        ));
    }
    let mut tasks = Vec::new();
    for j in 0..8u32 {
        let x0 = if j % 2 == 0 { 25.0 } else { 125.0 };
        let release = if j < 4 { 0 } else { rng.gen_range(1..5) };
        tasks.push(Task::new(
            j,
            Vec2::new(x0 + rng.gen_range(0.0..50.0), rng.gen_range(15.0..85.0)),
            Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
            release,
            (release + rng.gen_range(3..6usize)).min(SLOTS),
            rng.gen_range(500.0..2000.0),
            1.0,
        ));
    }
    Scenario::new(
        ChargingParams::simulation_default(),
        TimeGrid::new(60.0, SLOTS),
        chargers,
        tasks,
        1.0 / 12.0,
        1,
    )
    .unwrap()
}

/// In-cell live submissions, as in the router tests.
fn submission_trace(seed: u64, count: usize) -> Vec<(usize, TaskSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace: Vec<(usize, TaskSpec)> = (0..count)
        .map(|k| {
            let slot = rng.gen_range(0..SLOTS);
            let x0 = if k % 2 == 0 { 25.0 } else { 125.0 };
            (
                slot,
                TaskSpec {
                    device_pos: Vec2::new(x0 + rng.gen_range(0.0..50.0), rng.gen_range(15.0..85.0)),
                    device_facing: Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
                    end_slot: (slot + rng.gen_range(2..6usize)).min(SLOTS),
                    required_energy: rng.gen_range(500.0..2500.0),
                    weight: 1.0,
                },
            )
        })
        .collect();
    trace.sort_by_key(|(slot, _)| *slot);
    trace
}

fn router_config() -> RouterConfig {
    RouterConfig {
        scheduling: OnlineConfig {
            localized: true,
            ..OnlineConfig::default()
        },
        cells: (2, 1),
        field: (200.0, 100.0),
        ..RouterConfig::default()
    }
}

/// Drives a session up to (not through) `to_slot` and returns the client.
fn drive_to(client: &mut Client, trace: &[(usize, TaskSpec)], to_slot: usize) {
    let mut next = 0;
    for slot in 0..to_slot {
        while next < trace.len() && trace[next].0 == slot {
            client.submit(&trace[next].1).unwrap();
            next += 1;
        }
        client.tick(1).unwrap();
    }
}

/// `render_composite(parse_composite(text)) == text` is asserted against
/// live snapshots before any spliced document is trusted, so corruption
/// built on top of the round-trip corrupts exactly what it means to.
fn render(c: &haste_service::CompositeSnapshot) -> String {
    render_composite(c)
}

/// The full live-state fingerprint a failed RESTORE must not perturb.
fn fingerprint(client: &mut Client) -> (usize, haste_model::Schedule, u64, u64, String) {
    let (clock, _open) = client.clock().unwrap();
    let schedule = client.schedule().unwrap();
    let (utility, relaxed) = client.utility().unwrap();
    let snapshot = client.snapshot().unwrap();
    (
        clock,
        schedule,
        utility.to_bits(),
        relaxed.to_bits(),
        snapshot,
    )
}

#[test]
fn corrupted_fixture_documents_error_and_leave_live_state_untouched() {
    let router = serve_router(router_config()).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&partitionable_scenario(11)).unwrap();
    drive_to(&mut client, &submission_trace(12, 16), 5);
    let before = fingerprint(&mut client);

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/restore");
    let mut fixtures: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "snap"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 10,
        "fixture corpus went missing: found {}",
        fixtures.len()
    );

    for fixture in &fixtures {
        let text = std::fs::read_to_string(fixture).unwrap();
        let err = client
            .restore(&text)
            .expect_err(&format!("fixture {} must be rejected", fixture.display()));
        assert_eq!(
            err.code(),
            Some("bad-snapshot"),
            "fixture {}: wrong error: {err}",
            fixture.display()
        );
        // Nothing restored, nothing lost: the live session is bitwise
        // intact after every rejected document.
        assert_eq!(fingerprint(&mut client), before, "{}", fixture.display());
    }

    // The router is still fully serviceable: the session continues, and
    // a *valid* document still restores exactly.
    client.tick(1).unwrap();
    assert_eq!(client.restore(&before.4).unwrap(), before.0);
    assert_eq!(fingerprint(&mut client), before);
    client.bye().unwrap();
    router.shutdown();
}

#[test]
fn every_truncation_of_a_real_composite_is_rejected() {
    // A real mid-session composite document...
    let router = serve_router(router_config()).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&partitionable_scenario(21)).unwrap();
    drive_to(&mut client, &submission_trace(22, 16), 6);
    let snapshot = client.snapshot().unwrap();
    client.bye().unwrap();
    router.shutdown();

    // ...restored into a fresh router only when whole: every proper
    // prefix (drop the last k lines) must fail with `bad-snapshot`, and
    // after the sweep the intact document must still restore exactly.
    let lines: Vec<&str> = snapshot.lines().collect();
    let victim = serve_router(router_config()).unwrap();
    let mut target = Client::connect(victim.addr()).unwrap();
    for keep in 0..lines.len() {
        let mut truncated = lines[..keep].join("\n");
        if keep > 0 {
            truncated.push('\n');
        }
        let err = target
            .restore(&truncated)
            .expect_err(&format!("prefix of {keep} lines must be rejected"));
        assert_eq!(
            err.code(),
            Some("bad-snapshot"),
            "prefix of {keep} lines: wrong error: {err}"
        );
    }
    let clock = target.restore(&snapshot).unwrap();
    assert_eq!(clock, 6);
    assert_eq!(target.snapshot().unwrap(), snapshot);
    target.bye().unwrap();
    victim.shutdown();
}

#[test]
fn an_inconsistent_cut_spliced_from_two_clocks_is_rejected() {
    let router = serve_router(router_config()).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&partitionable_scenario(31)).unwrap();
    let trace = submission_trace(32, 16);
    drive_to(&mut client, &trace, 4);
    let early = client.snapshot().unwrap();
    let mut next = trace.partition_point(|(slot, _)| *slot < 4);
    for slot in 4..7 {
        while next < trace.len() && trace[next].0 == slot {
            client.submit(&trace[next].1).unwrap();
            next += 1;
        }
        client.tick(1).unwrap();
    }
    let late = client.snapshot().unwrap();
    let before = fingerprint(&mut client);

    // The render helper must reproduce live documents byte-for-byte, or
    // the splice below would not be testing what it claims to.
    let early_parsed = parse_composite(&early).unwrap();
    let late_parsed = parse_composite(&late).unwrap();
    assert_eq!(render(&early_parsed), early);
    assert_eq!(render(&late_parsed), late);

    // Shard 0 at clock 4, shard 1 at clock 7: each section is valid on
    // its own, but together they are not a consistent cut.
    let mut spliced = early_parsed.clone();
    spliced.shards[1] = late_parsed.shards[1].clone();
    let err = client.restore(&render(&spliced)).unwrap_err();
    assert_eq!(err.code(), Some("bad-snapshot"));
    assert_eq!(fingerprint(&mut client), before);

    // Both genuine documents still restore: rejecting the splice was
    // about consistency, not formatting.
    assert_eq!(client.restore(&late).unwrap(), 7);
    assert_eq!(client.restore(&early).unwrap(), 4);
    client.bye().unwrap();
    router.shutdown();
}
