//! Live elastic-resharding tests over real loopback TCP: a mid-run cell
//! split (and the merge that inverts it) must leave the global schedule
//! and utility bit-identical to an undisturbed single-engine run, in and
//! out of process; concurrent tenants must be bit-identical to each
//! running alone; quotas cap per-slot admissions; and the `SHARDS?` line
//! grammar (tenant and routing-map fields included) is pinned.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use haste_distributed::{OnlineConfig, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_model::{Charger, ChargingParams, Scenario, Task, TimeGrid};
use haste_service::{serve, serve_router, Client, ProcessShardConfig, RouterConfig, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SLOTS: usize = 12;

/// Localized replanning keeps Alg. 3 negotiations inside a partition
/// cell — the precondition for the router's bitwise contract, which the
/// migration must preserve across every topology it serves.
fn localized() -> OnlineConfig {
    OnlineConfig {
        localized: true,
        ..OnlineConfig::default()
    }
}

/// A 200×100 field that stays partitionable across the whole reshard
/// lineage: the base 2×1 boundary at `x = 100` *and* the `x = 50`
/// boundary a `RESHARD SPLIT 0` introduces. Chargers cluster in
/// `x ∈ [6, 26]` and `x ∈ [72, 78]` (cell 0 — both ≥ 22 m from `x = 50`
/// and `x = 100`, clear of the 20 m halo) and `x ∈ [128, 172]` (cell 1);
/// tasks sit within reach of exactly one cluster, so no reachable set
/// spans a boundary before or after the split.
fn splittable_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chargers = Vec::new();
    for i in 0..8u32 {
        let x = match i % 4 {
            0 => 6.0 + rng.gen_range(0.0..20.0),
            1 => 72.0 + rng.gen_range(0.0..6.0),
            _ => 128.0 + rng.gen_range(0.0..44.0),
        };
        chargers.push(Charger::new(i, Vec2::new(x, rng.gen_range(25.0..75.0))));
    }
    let mut tasks = Vec::new();
    for j in 0..8u32 {
        let release = if j < 4 { 0 } else { rng.gen_range(1..5) };
        tasks.push(Task::new(
            j,
            Vec2::new(cluster_x(j as usize, &mut rng), rng.gen_range(20.0..80.0)),
            Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
            release,
            (release + rng.gen_range(3..6usize)).min(SLOTS),
            rng.gen_range(500.0..2000.0),
            1.0,
        ));
    }
    Scenario::new(
        ChargingParams::simulation_default(),
        TimeGrid::new(60.0, SLOTS),
        chargers,
        tasks,
        1.0 / 12.0,
        1,
    )
    .unwrap()
}

/// A device x-coordinate near exactly one charger cluster of
/// [`splittable_scenario`] — never within 20 m of another cluster, on
/// either side of `x = 50` or `x = 100`.
fn cluster_x(k: usize, rng: &mut StdRng) -> f64 {
    match k % 4 {
        0 => 8.0 + rng.gen_range(0.0..20.0),
        1 => 66.0 + rng.gen_range(0.0..18.0),
        _ => 126.0 + rng.gen_range(0.0..46.0),
    }
}

/// Live submissions confined to the charger clusters, valid before and
/// after the `SPLIT 0` topology change.
fn splittable_trace(seed: u64, count: usize) -> Vec<(usize, TaskSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace: Vec<(usize, TaskSpec)> = (0..count)
        .map(|k| {
            let slot = rng.gen_range(0..SLOTS);
            (
                slot,
                TaskSpec {
                    device_pos: Vec2::new(cluster_x(k, &mut rng), rng.gen_range(20.0..80.0)),
                    device_facing: Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
                    end_slot: (slot + rng.gen_range(2..6usize)).min(SLOTS),
                    required_energy: rng.gen_range(500.0..2500.0),
                    weight: 1.0,
                },
            )
        })
        .collect();
    trace.sort_by_key(|(slot, _)| *slot);
    trace
}

/// Submits each spec in its slot and ticks from `from` up to (not
/// including) slot `to`.
fn drive_span(client: &mut Client, trace: &[(usize, TaskSpec)], from: usize, to: usize) {
    let mut next = trace.partition_point(|(slot, _)| *slot < from);
    for slot in from..to {
        while next < trace.len() && trace[next].0 == slot {
            client.submit(&trace[next].1).unwrap();
            next += 1;
        }
        client.tick(1).unwrap();
    }
}

/// Reads back the session's final state.
fn finish(client: &mut Client) -> (haste_model::Schedule, f64, f64) {
    let schedule = client.schedule().unwrap();
    let (utility, relaxed) = client.utility().unwrap();
    (schedule, utility, relaxed)
}

/// The undisturbed reference: one engine owning the whole field.
fn single_engine_run(
    scenario: &Scenario,
    trace: &[(usize, TaskSpec)],
) -> (haste_model::Schedule, f64, f64) {
    let single = serve(ServerConfig {
        scheduling: localized(),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(single.addr()).unwrap();
    client.load(scenario).unwrap();
    drive_span(&mut client, trace, 0, SLOTS);
    let result = finish(&mut client);
    client.bye().unwrap();
    single.shutdown();
    result
}

fn router_config() -> RouterConfig {
    RouterConfig {
        scheduling: localized(),
        cells: (2, 1),
        field: (200.0, 100.0),
        ..RouterConfig::default()
    }
}

fn process_router_config() -> RouterConfig {
    RouterConfig {
        process: Some(ProcessShardConfig {
            shardd: Some(PathBuf::from(env!("CARGO_BIN_EXE_haste-shardd"))),
            deadline: Some(Duration::from_secs(60)),
            fault_plan: None,
        }),
        ..router_config()
    }
}

/// Drives a router session with a `SPLIT 0` after slot 6 and the
/// inverting `MERGE 0 1` after slot 9, asserting the topology reports
/// (shard count, routing-map version, owning tenant) at each stage.
fn drive_with_split_and_merge(
    client: &mut Client,
    trace: &[(usize, TaskSpec)],
    tenant: &str,
) -> (haste_model::Schedule, f64, f64) {
    drive_span(client, trace, 0, 6);
    assert_eq!(client.reshard_split(0).unwrap(), (3, 2));
    let shards = client.shards().unwrap();
    let mine: Vec<_> = shards.iter().filter(|s| s.tenant == tenant).collect();
    assert_eq!(mine.len(), 3);
    assert!(mine.iter().all(|s| s.map_version == 2));
    assert!(mine.iter().all(|s| s.slot == 6));

    drive_span(client, trace, 6, 9);
    assert_eq!(client.reshard_merge(0, 1).unwrap(), (2, 3));
    let shards = client.shards().unwrap();
    let mine: Vec<_> = shards.iter().filter(|s| s.tenant == tenant).collect();
    assert_eq!(mine.len(), 2);
    assert!(mine.iter().all(|s| s.map_version == 3));

    drive_span(client, trace, 9, SLOTS);
    finish(client)
}

#[test]
fn live_split_then_merge_matches_single_engine_bit_for_bit() {
    let scenario = splittable_scenario(71);
    let trace = splittable_trace(72, 24);
    let (ref_schedule, ref_utility, ref_relaxed) = single_engine_run(&scenario, &trace);

    let router = serve_router(router_config()).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&scenario).unwrap();
    let (schedule, utility, relaxed) = drive_with_split_and_merge(&mut client, &trace, "default");
    client.bye().unwrap();
    router.shutdown();

    assert_eq!(schedule, ref_schedule);
    assert_eq!(utility.to_bits(), ref_utility.to_bits());
    assert_eq!(relaxed.to_bits(), ref_relaxed.to_bits());
}

#[test]
fn out_of_process_live_split_and_merge_match_single_engine_bit_for_bit() {
    let scenario = splittable_scenario(81);
    let trace = splittable_trace(82, 20);
    let (ref_schedule, ref_utility, ref_relaxed) = single_engine_run(&scenario, &trace);

    let router = serve_router(process_router_config()).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&scenario).unwrap();
    let (schedule, utility, relaxed) = drive_with_split_and_merge(&mut client, &trace, "default");
    client.bye().unwrap();
    router.shutdown();

    assert_eq!(schedule, ref_schedule);
    assert_eq!(utility.to_bits(), ref_utility.to_bits());
    assert_eq!(relaxed.to_bits(), ref_relaxed.to_bits());
}

#[test]
fn concurrent_tenants_are_bit_identical_to_running_alone() {
    let scenario_a = splittable_scenario(91);
    let trace_a = splittable_trace(92, 18);
    let scenario_b = splittable_scenario(93);
    let trace_b = splittable_trace(94, 18);

    // Solo references. A mid-run split does not change bits (the test
    // above), so one undisturbed single-engine run per tenant covers
    // both the resharded and the untouched tenant.
    let (ref_schedule_a, ref_utility_a, _) = single_engine_run(&scenario_a, &trace_a);
    let (ref_schedule_b, ref_utility_b, _) = single_engine_run(&scenario_b, &trace_b);

    // One router, two tenants, interleaved slot by slot; tenant `alpha`
    // additionally splits its hot cell mid-run while `beta` keeps
    // serving undisturbed.
    let router = serve_router(router_config()).unwrap();
    let mut alpha = Client::connect(router.addr()).unwrap();
    alpha.tenant("alpha", None).unwrap();
    alpha.load(&scenario_a).unwrap();
    let mut beta = Client::connect(router.addr()).unwrap();
    beta.tenant("beta", None).unwrap();
    beta.load(&scenario_b).unwrap();

    for slot in 0..SLOTS {
        if slot == 6 {
            assert_eq!(alpha.reshard_split(0).unwrap(), (3, 2));
        }
        drive_span(&mut alpha, &trace_a, slot, slot + 1);
        drive_span(&mut beta, &trace_b, slot, slot + 1);
    }

    // Both fleets coexist under their own tenants.
    let shards = alpha.shards().unwrap();
    assert_eq!(shards.iter().filter(|s| s.tenant == "alpha").count(), 3);
    assert_eq!(shards.iter().filter(|s| s.tenant == "beta").count(), 2);

    let (schedule_a, utility_a, _) = finish(&mut alpha);
    let (schedule_b, utility_b, _) = finish(&mut beta);
    alpha.bye().unwrap();
    beta.bye().unwrap();
    router.shutdown();

    assert_eq!(schedule_a, ref_schedule_a);
    assert_eq!(utility_a.to_bits(), ref_utility_a.to_bits());
    assert_eq!(schedule_b, ref_schedule_b);
    assert_eq!(utility_b.to_bits(), ref_utility_b.to_bits());
}

#[test]
fn tenant_quota_caps_accepted_submissions_per_slot() {
    let router = serve_router(router_config()).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();

    // Selecting never creates: the quota parks on the session until the
    // LOAD that creates the tenant, and every other verb refuses.
    client.tenant("acme", Some(2)).unwrap();
    assert_eq!(client.clock().unwrap_err().code(), Some("unknown-tenant"));
    client.load(&splittable_scenario(101)).unwrap();

    let spec = |x: f64| TaskSpec {
        device_pos: Vec2::new(x, 50.0),
        device_facing: Angle::from_radians(0.0),
        end_slot: 6,
        required_energy: 800.0,
        weight: 1.0,
    };
    client.submit(&spec(10.0)).unwrap();
    client.submit(&spec(140.0)).unwrap();
    // The quota counts *accepted* submissions per open slot, across all
    // cells of the tenant.
    assert_eq!(
        client.submit(&spec(12.0)).unwrap_err().code(),
        Some("quota")
    );
    // The counter resets when the slot closes.
    client.tick(1).unwrap();
    client.submit(&spec(14.0)).unwrap();

    // Re-binding without a quota leaves the cap unchanged.
    client.tenant("acme", None).unwrap();
    client.submit(&spec(142.0)).unwrap();
    assert_eq!(
        client.submit(&spec(16.0)).unwrap_err().code(),
        Some("quota")
    );

    client.bye().unwrap();
    router.shutdown();

    // A single-engine daemon serves only `default`.
    let single = serve(ServerConfig::default()).unwrap();
    let mut mono = Client::connect(single.addr()).unwrap();
    mono.tenant("default", None).unwrap();
    assert_eq!(
        mono.tenant("acme", None).unwrap_err().code(),
        Some("unknown-tenant")
    );
    mono.bye().unwrap();
    single.shutdown();
}

#[test]
fn reshard_failures_leave_the_live_topology_untouched() {
    let router = serve_router(router_config()).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();

    assert_eq!(
        client.reshard_split(0).unwrap_err().code(),
        Some("no-scenario")
    );

    // Chargers at x ∈ [30, 70] sit inside the 20 m halo of the x = 50
    // boundary a split of cell 0 would introduce: the migration must
    // refuse and leave the 2-shard topology (and its map version) as-is.
    let mut rng = StdRng::seed_from_u64(111);
    let chargers = (0..4u32)
        .map(|i| {
            let x0 = if i % 2 == 0 { 30.0 } else { 130.0 };
            Charger::new(
                i,
                Vec2::new(x0 + rng.gen_range(0.0..40.0), rng.gen_range(25.0..75.0)),
            )
        })
        .collect();
    let unsplittable = Scenario::new(
        ChargingParams::simulation_default(),
        TimeGrid::new(60.0, SLOTS),
        chargers,
        Vec::new(),
        1.0 / 12.0,
        1,
    )
    .unwrap();
    client.load(&unsplittable).unwrap();
    assert_eq!(
        client.reshard_split(0).unwrap_err().code(),
        Some("unpartitionable")
    );
    assert_eq!(
        client.reshard_split(7).unwrap_err().code(),
        Some("unpartitionable")
    );
    // Merging cells that do not share an edge into a rectangle refuses
    // too (a 2×1 grid's cells do merge; ask for a bogus pair).
    assert_eq!(
        client.reshard_merge(0, 7).unwrap_err().code(),
        Some("unpartitionable")
    );
    let shards = client.shards().unwrap();
    assert_eq!(shards.len(), 2);
    assert!(shards.iter().all(|s| s.map_version == 1));

    client.bye().unwrap();
    router.shutdown();

    // A single-engine daemon has no cells to reshard at all.
    let single = serve(ServerConfig::default()).unwrap();
    let mut mono = Client::connect(single.addr()).unwrap();
    assert_eq!(
        mono.reshard_split(0).unwrap_err().code(),
        Some("bad-request")
    );
    mono.bye().unwrap();
    single.shutdown();
}

/// Pins the `SHARDS?` wire grammar itself — field names, field order,
/// and the tenant/routing-map columns — over a raw text connection, so
/// a client parsing lines positionally cannot be broken silently.
#[test]
fn shards_line_grammar_is_pinned() {
    let router = serve_router(router_config()).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&splittable_scenario(121)).unwrap();
    client.tick(1).unwrap();
    assert_eq!(client.reshard_split(0).unwrap(), (3, 2));

    let mut raw = TcpStream::connect(router.addr()).unwrap();
    raw.write_all(b"SHARDS?\n").unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut header = String::new();
    reader.read_line(&mut header).unwrap();
    let count: usize = header
        .trim()
        .strip_prefix("DATA ")
        .expect("SHARDS? answers DATA")
        .parse()
        .unwrap();
    assert_eq!(count, 3);

    const KEYS: [&str; 14] = [
        "shard", "cell", "slot", "open", "tasks", "staged", "admitted", "rejected", "pending",
        "health", "restarts", "replay", "tenant", "map",
    ];
    for index in 0..count {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let fields: Vec<(&str, &str)> = line
            .split_whitespace()
            .map(|field| field.split_once('=').expect("every field is key=value"))
            .collect();
        let keys: Vec<&str> = fields.iter().map(|(key, _)| *key).collect();
        assert_eq!(keys, KEYS, "SHARDS? field order is part of the grammar");
        let value = |key: &str| fields.iter().find(|(k, _)| *k == key).unwrap().1;
        assert_eq!(value("shard"), index.to_string());
        assert_eq!(value("slot"), "1");
        assert_eq!(value("tenant"), "default");
        assert_eq!(value("map"), "2");
    }

    client.bye().unwrap();
    router.shutdown();
}
