//! Fault-injection tests for the out-of-process router over real
//! loopback TCP: shards run as supervised `haste-shardd` child processes
//! (resolved via `CARGO_BIN_EXE_haste-shardd`), a seeded fault plan kills
//! or stalls them mid-run, and the surviving cells must finish
//! bit-identical to an undisturbed run while the targeted cells recover
//! through snapshot-baseline + journal replay.

use std::path::PathBuf;
use std::time::Duration;

use haste_distributed::{OnlineConfig, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_model::{Charger, ChargingParams, Scenario, Task, TimeGrid};
use haste_service::shard::ShardHealth;
use haste_service::{
    serve, serve_router, Client, FaultPlan, ProcessShardConfig, RouterConfig, ServerConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SLOTS: usize = 12;

/// Localized replanning keeps Alg. 3 negotiations inside a partition
/// cell — the precondition for the router's bitwise contract, in or out
/// of process.
fn localized() -> OnlineConfig {
    OnlineConfig {
        localized: true,
        ..OnlineConfig::default()
    }
}

/// Same halo-safe 200×100 / 2×1 layout as the in-process router tests:
/// chargers cluster in `x ∈ [30, 70]` (cell 0) and `x ∈ [130, 170]`
/// (cell 1), tasks in both cells, some staged past release 0.
fn partitionable_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chargers = Vec::new();
    for i in 0..6u32 {
        let x0 = if i % 2 == 0 { 30.0 } else { 130.0 };
        chargers.push(Charger::new(
            i,
            Vec2::new(x0 + rng.gen_range(0.0..40.0), rng.gen_range(20.0..80.0)),
        ));
    }
    let mut tasks = Vec::new();
    for j in 0..8u32 {
        let x0 = if j % 2 == 0 { 25.0 } else { 125.0 };
        let release = if j < 4 { 0 } else { rng.gen_range(1..5) };
        tasks.push(Task::new(
            j,
            Vec2::new(x0 + rng.gen_range(0.0..50.0), rng.gen_range(15.0..85.0)),
            Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
            release,
            (release + rng.gen_range(3..6usize)).min(SLOTS),
            rng.gen_range(500.0..2000.0),
            1.0,
        ));
    }
    Scenario::new(
        ChargingParams::simulation_default(),
        TimeGrid::new(60.0, SLOTS),
        chargers,
        tasks,
        1.0 / 12.0,
        1,
    )
    .unwrap()
}

/// Live submissions whose devices stay inside their cell's charger reach.
fn submission_trace(seed: u64, count: usize) -> Vec<(usize, TaskSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace: Vec<(usize, TaskSpec)> = (0..count)
        .map(|k| {
            let slot = rng.gen_range(0..SLOTS);
            let x0 = if k % 2 == 0 { 25.0 } else { 125.0 };
            (
                slot,
                TaskSpec {
                    device_pos: Vec2::new(x0 + rng.gen_range(0.0..50.0), rng.gen_range(15.0..85.0)),
                    device_facing: Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
                    end_slot: (slot + rng.gen_range(2..6usize)).min(SLOTS),
                    required_energy: rng.gen_range(500.0..2500.0),
                    weight: 1.0,
                },
            )
        })
        .collect();
    trace.sort_by_key(|(slot, _)| *slot);
    trace
}

/// The cell a spec routes to under the 2×1 split of the 200 m field.
fn cell_of(spec: &TaskSpec) -> usize {
    usize::from(spec.device_pos.x >= 100.0)
}

/// Drives a session from `from_slot` to the horizon, submitting each spec
/// in its slot; returns (merged schedule, utility, relaxed utility).
fn drive(
    client: &mut Client,
    trace: &[(usize, TaskSpec)],
    from_slot: usize,
) -> (haste_model::Schedule, f64, f64) {
    let mut next = trace.partition_point(|(slot, _)| *slot < from_slot);
    for slot in from_slot..SLOTS {
        while next < trace.len() && trace[next].0 == slot {
            client.submit(&trace[next].1).unwrap();
            next += 1;
        }
        client.tick(1).unwrap();
    }
    assert_eq!(next, trace.len());
    let schedule = client.schedule().unwrap();
    let (utility, relaxed) = client.utility().unwrap();
    (schedule, utility, relaxed)
}

/// Like [`drive`] from slot 0, but a submission bounced by a down shard
/// (`ERR unavailable`) is recorded instead of failing the test. Returns
/// the indices (into `trace`) of the bounced submissions.
fn drive_tolerant(
    client: &mut Client,
    trace: &[(usize, TaskSpec)],
) -> (haste_model::Schedule, f64, f64, Vec<usize>) {
    let mut bounced = Vec::new();
    for (index, (slot, spec)) in trace.iter().enumerate() {
        while client.clock().unwrap().0 < *slot {
            client.tick(1).unwrap();
        }
        match client.submit(spec) {
            Ok(_) => {}
            Err(e) if e.code() == Some("unavailable") => bounced.push(index),
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    while client.clock().unwrap().0 < SLOTS {
        client.tick(1).unwrap();
    }
    let schedule = client.schedule().unwrap();
    let (utility, relaxed) = client.utility().unwrap();
    (schedule, utility, relaxed, bounced)
}

/// Out-of-process router config: child daemons resolved from the
/// Cargo-provided binary path, optionally with a fault plan.
fn process_router_config(plan: Option<&str>) -> RouterConfig {
    RouterConfig {
        scheduling: localized(),
        cells: (2, 1),
        field: (200.0, 100.0),
        process: Some(ProcessShardConfig {
            shardd: Some(PathBuf::from(env!("CARGO_BIN_EXE_haste-shardd"))),
            deadline: Some(Duration::from_secs(60)),
            fault_plan: plan.map(|text| FaultPlan::parse(text).unwrap()),
        }),
        ..RouterConfig::default()
    }
}

/// In-process router config — the undisturbed reference deployment.
fn in_process_router_config() -> RouterConfig {
    RouterConfig {
        scheduling: localized(),
        cells: (2, 1),
        field: (200.0, 100.0),
        ..RouterConfig::default()
    }
}

#[test]
fn out_of_process_router_matches_single_engine_bit_for_bit() {
    let scenario = partitionable_scenario(61);
    let trace = submission_trace(62, 24);

    let single = serve(ServerConfig {
        scheduling: localized(),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut ref_client = Client::connect(single.addr()).unwrap();
    ref_client.load(&scenario).unwrap();
    let (ref_schedule, ref_utility, ref_relaxed) = drive(&mut ref_client, &trace, 0);
    ref_client.bye().unwrap();
    single.shutdown();

    let router = serve_router(process_router_config(None)).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&scenario).unwrap();
    let (schedule, utility, relaxed) = drive(&mut client, &trace, 0);
    let shards = client.shards().unwrap();
    client.bye().unwrap();
    router.shutdown();

    assert_eq!(schedule, ref_schedule);
    assert_eq!(utility.to_bits(), ref_utility.to_bits());
    assert_eq!(relaxed.to_bits(), ref_relaxed.to_bits());
    for shard in &shards {
        assert_eq!(shard.health, ShardHealth::Up);
        assert_eq!(shard.restarts, 0);
    }
}

#[test]
fn killed_shard_replays_from_checkpoint_and_stays_bit_identical() {
    let scenario = partitionable_scenario(71);
    // No cell-1 submissions while that shard is down (slot 6, between the
    // kill maturing at clock 6 and the rejoin at the next tick), so the
    // fault run sees the complete trace and must match everywhere.
    let trace: Vec<(usize, TaskSpec)> = submission_trace(72, 24)
        .into_iter()
        .filter(|(slot, spec)| !(*slot == 6 && cell_of(spec) == 1))
        .collect();

    // Reference: in-process router, no faults, same trace.
    let router_ref = serve_router(in_process_router_config()).unwrap();
    let mut ref_client = Client::connect(router_ref.addr()).unwrap();
    ref_client.load(&scenario).unwrap();
    let (ref_schedule, ref_utility, ref_relaxed) = drive(&mut ref_client, &trace, 0);
    let ref_final = ref_client.snapshot().unwrap();
    ref_client.bye().unwrap();
    router_ref.shutdown();

    // Fault run: child for cell 1 is killed when the clock reaches 6; a
    // mid-run SNAPSHOT at clock 4 makes that checkpoint the replay
    // baseline, so the rejoin replays baseline + journaled ops.
    let router = serve_router(process_router_config(Some("kill 1 @6\n"))).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&scenario).unwrap();
    let mut next = 0;
    for slot in 0..4 {
        while next < trace.len() && trace[next].0 == slot {
            client.submit(&trace[next].1).unwrap();
            next += 1;
        }
        client.tick(1).unwrap();
    }
    client.snapshot().unwrap();
    let (schedule, utility, relaxed) = drive(&mut client, &trace, 4);
    let shards = client.shards().unwrap();
    let fault_final = client.snapshot().unwrap();
    client.bye().unwrap();
    router.shutdown();

    assert_eq!(schedule, ref_schedule);
    assert_eq!(utility.to_bits(), ref_utility.to_bits());
    assert_eq!(relaxed.to_bits(), ref_relaxed.to_bits());
    // The whole composite document agrees with the undisturbed run: the
    // killed shard's replayed engine state is exact, not approximate.
    assert_eq!(fault_final, ref_final);

    assert_eq!(shards[0].health, ShardHealth::Up);
    assert_eq!(shards[0].restarts, 0);
    assert_eq!(shards[1].health, ShardHealth::Degraded);
    assert_eq!(shards[1].restarts, 1);
    assert!(
        shards[1].replay > 0,
        "the rejoin must have replayed journaled operations"
    );
}

#[test]
fn submissions_to_a_down_cell_bounce_and_other_cells_are_unaffected() {
    let scenario = partitionable_scenario(81);
    let trace = submission_trace(83, 40);
    let expected_bounced: Vec<usize> = trace
        .iter()
        .enumerate()
        .filter(|(_, (slot, spec))| *slot == 6 && cell_of(spec) == 1)
        .map(|(index, _)| index)
        .collect();
    assert!(
        !expected_bounced.is_empty(),
        "seed must produce cell-1 submissions in the down window"
    );

    // Fault run: every cell-1 submission in slot 6 bounces with
    // `ERR unavailable`; everything else is served.
    let router = serve_router(process_router_config(Some("kill 1 @6\n"))).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&scenario).unwrap();
    let (schedule, utility, relaxed, bounced) = drive_tolerant(&mut client, &trace);
    let shards = client.shards().unwrap();
    client.bye().unwrap();
    router.shutdown();
    assert_eq!(bounced, expected_bounced);

    // Reference: in-process router fed the trace minus the bounced
    // submissions — degraded mode must be equivalent to those requests
    // never having been made.
    let reference_trace: Vec<(usize, TaskSpec)> = trace
        .iter()
        .enumerate()
        .filter(|(index, _)| !bounced.contains(index))
        .map(|(_, entry)| *entry)
        .collect();
    let router_ref = serve_router(in_process_router_config()).unwrap();
    let mut ref_client = Client::connect(router_ref.addr()).unwrap();
    ref_client.load(&scenario).unwrap();
    let (ref_schedule, ref_utility, ref_relaxed) = drive(&mut ref_client, &reference_trace, 0);
    ref_client.bye().unwrap();
    router_ref.shutdown();

    assert_eq!(schedule, ref_schedule);
    assert_eq!(utility.to_bits(), ref_utility.to_bits());
    assert_eq!(relaxed.to_bits(), ref_relaxed.to_bits());
    assert_eq!(shards[1].health, ShardHealth::Degraded);
    assert_eq!(shards[1].restarts, 1);
    assert_eq!(shards[0].restarts, 0);
}

#[test]
fn stalls_and_dropped_connections_recover_without_cross_cell_damage() {
    let scenario = partitionable_scenario(91);
    // The stall matures at clock 3 and is consumed by the tick closing
    // slot 3 (killing the child, missing that tick); the shard rejoins at
    // the tick closing slot 4 and replays the missed slot. Keep cell 1
    // quiet over slots 3–4 so no submission lands in the down window.
    let trace: Vec<(usize, TaskSpec)> = submission_trace(92, 24)
        .into_iter()
        .filter(|(slot, spec)| !((*slot == 3 || *slot == 4) && cell_of(spec) == 1))
        .collect();

    let router_ref = serve_router(in_process_router_config()).unwrap();
    let mut ref_client = Client::connect(router_ref.addr()).unwrap();
    ref_client.load(&scenario).unwrap();
    let (ref_schedule, ref_utility, ref_relaxed) = drive(&mut ref_client, &trace, 0);
    ref_client.bye().unwrap();
    router_ref.shutdown();

    // The dropped connection on cell 0 is re-established transparently:
    // no restart, no replay, no divergence.
    let plan = "stall 1 for 1 @3\ndrop-conn 0 @2\n";
    let router = serve_router(process_router_config(Some(plan))).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&scenario).unwrap();
    let (schedule, utility, relaxed) = drive(&mut client, &trace, 0);
    let shards = client.shards().unwrap();
    client.bye().unwrap();
    router.shutdown();

    assert_eq!(schedule, ref_schedule);
    assert_eq!(utility.to_bits(), ref_utility.to_bits());
    assert_eq!(relaxed.to_bits(), ref_relaxed.to_bits());
    assert_eq!(shards[0].health, ShardHealth::Up);
    assert_eq!(shards[0].restarts, 0);
    assert_eq!(shards[1].health, ShardHealth::Degraded);
    assert_eq!(shards[1].restarts, 1);
    assert!(shards[1].replay > 0);
}

#[test]
fn loadgen_chaos_mode_proves_surviving_cells_and_recovery() {
    use haste_service::loadgen::{self, LoadgenConfig};
    let report = loadgen::run(&LoadgenConfig {
        connections: 3,
        submissions: 150,
        chargers: 6,
        field: 200.0,
        slots: 16,
        seed: 5,
        verify_replay: true,
        cells: Some((2, 1)),
        shardd: Some(PathBuf::from(env!("CARGO_BIN_EXE_haste-shardd"))),
        fault_plan: Some(FaultPlan::parse("kill 1 @8\n").unwrap()),
        ..LoadgenConfig::default()
    })
    .unwrap();
    let chaos = report
        .chaos
        .expect("fault plan must produce a chaos report");
    assert_eq!(chaos.fault_cells, vec![1]);
    assert!(
        chaos.surviving_match,
        "surviving cell diverged from the no-fault run"
    );
    assert!(chaos.recovered, "killed shard did not rejoin");
    assert!(chaos.restarts >= 1);
    assert_eq!(
        report.accepted + report.rejected + report.unavailable,
        report.submitted
    );
    // The fault session itself still satisfies the replay identity: its
    // snapshot trace contains exactly the admitted submissions.
    assert_eq!(report.replay_matches, Some(true));
}
