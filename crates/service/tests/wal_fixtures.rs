//! WAL robustness: a damaged write-ahead log must never panic recovery
//! and never block a boot — scanning truncates at the last valid frame
//! boundary and the router resumes from whatever survived. Driven by an
//! exhaustive truncation sweep of a real log, single-bit flips across
//! every byte, spliced valid-CRC-but-unparsable records, and end-to-end
//! boots of whole damaged directories — the durability mirror of
//! `restore_fixtures.rs`.
//!
//! Also pins the satellite invariant that `SNAPSHOT` replies and WAL
//! checkpoints share one composite-render path: the `<tenant>.ckpt`
//! file on disk is byte-identical to the reply the client received.

use std::path::{Path, PathBuf};

use haste_distributed::{OnlineConfig, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_model::{Charger, ChargingParams, Scenario, Task, TimeGrid};
use haste_service::wal::{frame, recover_dir, scan_wal, WalConfig, WalRecord, WAL_MAGIC};
use haste_service::{serve_router, Client, RouterConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SLOTS: usize = 12;

/// Same halo-safe 200×100 / 2×1 layout as the other router tests.
fn partitionable_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chargers = Vec::new();
    for i in 0..6u32 {
        let x0 = if i % 2 == 0 { 30.0 } else { 130.0 };
        chargers.push(Charger::new(
            i,
            Vec2::new(x0 + rng.gen_range(0.0..40.0), rng.gen_range(20.0..80.0)),
        ));
    }
    let mut tasks = Vec::new();
    for j in 0..8u32 {
        let x0 = if j % 2 == 0 { 25.0 } else { 125.0 };
        let release = if j < 4 { 0 } else { rng.gen_range(1..5) };
        tasks.push(Task::new(
            j,
            Vec2::new(x0 + rng.gen_range(0.0..50.0), rng.gen_range(15.0..85.0)),
            Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
            release,
            (release + rng.gen_range(3..6usize)).min(SLOTS),
            rng.gen_range(500.0..2000.0),
            1.0,
        ));
    }
    Scenario::new(
        ChargingParams::simulation_default(),
        TimeGrid::new(60.0, SLOTS),
        chargers,
        tasks,
        1.0 / 12.0,
        1,
    )
    .unwrap()
}

/// In-cell live submissions, as in the router tests.
fn submission_trace(seed: u64, count: usize) -> Vec<(usize, TaskSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace: Vec<(usize, TaskSpec)> = (0..count)
        .map(|k| {
            let slot = rng.gen_range(0..SLOTS);
            let x0 = if k % 2 == 0 { 25.0 } else { 125.0 };
            (
                slot,
                TaskSpec {
                    device_pos: Vec2::new(x0 + rng.gen_range(0.0..50.0), rng.gen_range(15.0..85.0)),
                    device_facing: Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
                    end_slot: (slot + rng.gen_range(2..6usize)).min(SLOTS),
                    required_energy: rng.gen_range(500.0..2500.0),
                    weight: 1.0,
                },
            )
        })
        .collect();
    trace.sort_by_key(|(slot, _)| *slot);
    trace
}

fn durable_config(dir: &Path) -> RouterConfig {
    RouterConfig {
        scheduling: OnlineConfig {
            localized: true,
            ..OnlineConfig::default()
        },
        cells: (2, 1),
        field: (200.0, 100.0),
        wal: Some(WalConfig::new(dir)),
        ..RouterConfig::default()
    }
}

/// Drives a session over `from..to`, submitting the trace's in-slot
/// entries before each `TICK`.
fn drive_span(client: &mut Client, trace: &[(usize, TaskSpec)], from: usize, to: usize) {
    let mut next = trace.partition_point(|(slot, _)| *slot < from);
    for slot in from..to {
        while next < trace.len() && trace[next].0 == slot {
            client.submit(&trace[next].1).unwrap();
            next += 1;
        }
        client.tick(1).unwrap();
    }
}

/// A fresh per-test scratch directory under the system temp dir (the
/// workspace has no tempfile crate; the pid suffix keeps concurrent
/// `cargo test` processes apart, the tag keeps concurrent tests apart).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("haste-wal-fixtures-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs one real durable session to slot 8 and returns its WAL
/// directory plus the clean log and checkpoint bytes it left on disk.
fn seeded_wal(tag: &str, seed: u64) -> (PathBuf, Vec<u8>, Vec<u8>) {
    let dir = scratch(tag);
    let router = serve_router(durable_config(&dir)).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&partitionable_scenario(seed)).unwrap();
    drive_span(&mut client, &submission_trace(seed + 1, 16), 0, 8);
    client.bye().unwrap();
    router.shutdown();
    let log = std::fs::read(dir.join("default.wal")).unwrap();
    let ckpt = std::fs::read(dir.join("default.ckpt")).unwrap();
    (dir, log, ckpt)
}

/// Byte ranges of a clean log's regions: the header, then each frame.
fn regions(log: &[u8]) -> Vec<(usize, usize)> {
    let mut bounds = vec![(0, WAL_MAGIC.len())];
    let mut offset = WAL_MAGIC.len();
    while offset < log.len() {
        let len = u32::from_be_bytes(log[offset..offset + 4].try_into().unwrap()) as usize;
        bounds.push((offset, offset + 8 + len));
        offset += 8 + len;
    }
    assert_eq!(offset, log.len(), "seed log must itself be clean");
    bounds
}

/// Installs one tenant's damaged files into `dir` (a missing `log`
/// models the crash-right-after-checkpoint shape).
fn install(dir: &Path, log: Option<&[u8]>, ckpt: &[u8]) {
    for name in ["default.wal", "default.ckpt", "default.ckpt.tmp"] {
        let _ = std::fs::remove_file(dir.join(name));
    }
    std::fs::write(dir.join("default.ckpt"), ckpt).unwrap();
    if let Some(bytes) = log {
        std::fs::write(dir.join("default.wal"), bytes).unwrap();
    }
}

#[test]
fn recovery_survives_truncation_at_every_byte() {
    let (_dir, log, ckpt) = seeded_wal("trunc", 41);
    let bounds = regions(&log);
    // Header + 8 ticks + the trace entries that landed before slot 8:
    // a meaty sweep, not a toy log.
    assert!(bounds.len() >= 1 + 8 + 4, "log too small: {}", bounds.len());

    let victim = scratch("trunc-victim");
    for cut in 0..=log.len() {
        install(&victim, Some(&log[..cut]), &ckpt);
        let recovered = recover_dir(&victim)
            .unwrap_or_else(|e| panic!("recovery must survive truncation at byte {cut}: {e}"));
        assert_eq!(recovered.len(), 1, "cut {cut}");
        let tenant = &recovered[0];
        assert_eq!(tenant.tenant, "default", "cut {cut}");

        // The valid prefix ends at the last region boundary at or before
        // the cut — never past it, and never mid-frame.
        let expected_valid = if cut < WAL_MAGIC.len() {
            0
        } else {
            bounds
                .iter()
                .map(|&(_, end)| end)
                .filter(|&end| end <= cut)
                .max()
                .unwrap_or(0)
        };
        assert_eq!(tenant.valid_len, expected_valid, "cut {cut}");

        // The replayable tail is exactly the whole frames before the cut.
        let whole_frames = bounds
            .iter()
            .skip(1)
            .filter(|&&(_, end)| end <= cut)
            .count();
        assert_eq!(tenant.tail.len(), whole_frames, "cut {cut}");

        // A cut on a region boundary looks like a clean (shorter) log;
        // anywhere else the scan must say why it stopped.
        let on_boundary = cut >= WAL_MAGIC.len() && tenant.valid_len == cut;
        assert_eq!(tenant.truncated.is_none(), on_boundary, "cut {cut}");
    }
}

#[test]
fn a_single_bit_flip_truncates_at_its_frame() {
    let (_dir, log, _ckpt) = seeded_wal("flip", 43);
    let bounds = regions(&log);
    assert!(scan_wal(&log).truncated.is_none());

    for pos in 0..log.len() {
        let region = bounds
            .iter()
            .position(|&(start, end)| pos >= start && pos < end)
            .unwrap();
        for bit in 0..8 {
            let mut mutated = log.clone();
            mutated[pos] ^= 1u8 << bit;
            let scan = scan_wal(&mutated);
            // A flip in the header invalidates everything; a flip inside
            // frame k (length, CRC or payload) cuts exactly at k's start.
            let expected_valid = if region == 0 { 0 } else { bounds[region].0 };
            let expected_records = region.saturating_sub(1);
            assert_eq!(scan.valid_len, expected_valid, "pos {pos} bit {bit}");
            assert_eq!(scan.records.len(), expected_records, "pos {pos} bit {bit}");
            assert!(scan.truncated.is_some(), "pos {pos} bit {bit}");
        }
    }
}

#[test]
fn spliced_and_garbage_suffixed_logs_truncate_at_the_splice() {
    let (_dir, log, ckpt) = seeded_wal("splice", 47);
    let bounds = regions(&log);
    let clean_records = bounds.len() - 1;

    // A frame whose CRC is perfectly valid but whose payload is outside
    // the record grammar, spliced between two genuine frames with the
    // rest of the real log behind it: the scan must stop at the splice —
    // a valid checksum does not make bytes a record.
    let splice_at = bounds[bounds.len() / 2].0;
    let pre_splice_records = bounds.len() / 2 - 1;
    let mut spliced = log[..splice_at].to_vec();
    spliced.extend_from_slice(&frame(b"gibberish beyond the record grammar"));
    spliced.extend_from_slice(&log[splice_at..]);
    let scan = scan_wal(&spliced);
    assert_eq!(scan.valid_len, splice_at);
    assert_eq!(scan.records.len(), pre_splice_records);
    let reason = scan.truncated.expect("the splice must be reported");
    assert!(reason.contains("unparsable"), "wrong reason: {reason}");

    // Raw garbage appended to a clean log: everything real survives.
    let mut garbaged = log.clone();
    garbaged.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42]);
    let scan = scan_wal(&garbaged);
    assert_eq!(scan.valid_len, log.len());
    assert_eq!(scan.records.len(), clean_records);
    assert!(scan.truncated.is_some());

    // Directory-level recovery replays exactly the pre-splice prefix.
    let victim = scratch("splice-victim");
    install(&victim, Some(&spliced), &ckpt);
    let recovered = recover_dir(&victim).unwrap();
    assert_eq!(recovered.len(), 1);
    assert_eq!(recovered[0].tail.len(), pre_splice_records);
    assert_eq!(recovered[0].valid_len, splice_at);
}

#[test]
fn damaged_directories_boot_and_resume_serving() {
    let (dir, log, ckpt) = seeded_wal("boot", 53);
    let bounds = regions(&log);

    let torn = log[..log.len() - 3].to_vec();
    let mut flipped = log.clone();
    flipped[log.len() / 2] ^= 0x10;
    let splice_at = bounds[bounds.len() / 2].0;
    let mut spliced = log[..splice_at].to_vec();
    spliced.extend_from_slice(&frame(b"not a record"));
    spliced.extend_from_slice(&log[splice_at..]);

    let cases: Vec<(&str, Option<Vec<u8>>)> = vec![
        ("empty-log", Some(Vec::new())),
        ("header-only", Some(WAL_MAGIC.to_vec())),
        ("torn-mid-frame", Some(torn)),
        ("flipped-bit", Some(flipped)),
        ("spliced-record", Some(spliced)),
        ("missing-log", None),
    ];
    for (tag, damaged) in &cases {
        let case_dir = scratch(&format!("boot-{tag}"));
        install(&case_dir, damaged.as_deref(), &ckpt);
        // The checkpoint is the LOAD-time document (clock 0), so the
        // recovered clock is the number of ticks in the surviving tail.
        let expected_clock = damaged.as_deref().map_or(0, |bytes| {
            scan_wal(bytes)
                .records
                .iter()
                .filter(|record| matches!(record, WalRecord::Tick))
                .count()
        });

        let router = serve_router(durable_config(&case_dir))
            .unwrap_or_else(|e| panic!("{tag}: recovery must boot: {e}"));
        let mut client = Client::connect(router.addr()).unwrap();
        assert_eq!(client.clock().unwrap().0, expected_clock, "{tag}");

        // Not just up — serving: a fresh submission and a tick land.
        client
            .submit(&TaskSpec {
                device_pos: Vec2::new(40.0, 50.0),
                device_facing: Angle::from_radians(0.0),
                end_slot: SLOTS,
                required_energy: 800.0,
                weight: 1.0,
            })
            .unwrap_or_else(|e| panic!("{tag}: recovered router must accept: {e}"));
        client.tick(1).unwrap();
        assert_eq!(client.clock().unwrap().0, expected_clock + 1, "{tag}");
        client.bye().unwrap();
        router.shutdown();
    }

    // A stale `.ckpt.tmp` (crash mid-checkpoint-write) is swept away at
    // recovery and the fully written pair boots with nothing lost.
    std::fs::write(dir.join("default.ckpt.tmp"), b"half-written checkpoint").unwrap();
    let router = serve_router(durable_config(&dir)).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    assert_eq!(client.clock().unwrap().0, 8);
    assert!(
        !dir.join("default.ckpt.tmp").exists(),
        "recovery must remove the stale temp checkpoint"
    );
    client.bye().unwrap();
    router.shutdown();
}

#[test]
fn snapshot_replies_and_checkpoints_share_one_render_path() {
    let dir = scratch("pin");
    let router = serve_router(durable_config(&dir)).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&partitionable_scenario(61)).unwrap();
    let trace = submission_trace(62, 16);
    drive_span(&mut client, &trace, 0, 5);

    // The checkpoint on disk is the very reply the client received —
    // one composite-render path, pinned byte for byte.
    let reply = client.snapshot().unwrap();
    assert_eq!(
        std::fs::read_to_string(dir.join("default.ckpt")).unwrap(),
        reply
    );
    // ...and the log collapsed back to its bare header behind it.
    assert_eq!(std::fs::read(dir.join("default.wal")).unwrap(), WAL_MAGIC);

    // Still true later in the run, against a different document.
    drive_span(&mut client, &trace, 5, 9);
    let later = client.snapshot().unwrap();
    assert_ne!(later, reply);
    assert_eq!(
        std::fs::read_to_string(dir.join("default.ckpt")).unwrap(),
        later
    );
    client.bye().unwrap();
    router.shutdown();
}
