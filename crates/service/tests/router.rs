//! End-to-end sharded-router tests over real loopback TCP: bit-identical
//! equivalence with a single-engine daemon, composite consistent-cut
//! kill-and-restore, topology reporting, and partition rejection.

use haste_distributed::{OnlineConfig, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_model::{Charger, ChargingParams, Scenario, Task, TimeGrid};
use haste_service::{loadgen, serve, serve_router, Client, RouterConfig, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SLOTS: usize = 12;

/// Scheduling config for bit-equivalence runs: localized replanning keeps
/// Alg. 3 negotiations inside a partition cell, the precondition for the
/// router's bitwise contract. Used for BOTH the router and the reference
/// single-engine daemon.
fn localized() -> OnlineConfig {
    OnlineConfig {
        localized: true,
        ..OnlineConfig::default()
    }
}

/// A 200×100 field that splits cleanly into 2×1 cells of width 100:
/// chargers cluster in `x ∈ [30, 70]` (cell 0) and `x ∈ [130, 170]`
/// (cell 1), comfortably clear of the halo (radius 20 m) around the
/// interior boundary at `x = 100`. Includes release-0 tasks and staged
/// (release > 0) tasks in both cells.
fn partitionable_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chargers = Vec::new();
    for i in 0..6u32 {
        let x0 = if i % 2 == 0 { 30.0 } else { 130.0 };
        chargers.push(Charger::new(
            i,
            Vec2::new(x0 + rng.gen_range(0.0..40.0), rng.gen_range(20.0..80.0)),
        ));
    }
    let mut tasks = Vec::new();
    for j in 0..8u32 {
        let x0 = if j % 2 == 0 { 25.0 } else { 125.0 };
        let release = if j < 4 { 0 } else { rng.gen_range(1..5) };
        tasks.push(Task::new(
            j,
            Vec2::new(x0 + rng.gen_range(0.0..50.0), rng.gen_range(15.0..85.0)),
            Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
            release,
            (release + rng.gen_range(3..6usize)).min(SLOTS),
            rng.gen_range(500.0..2000.0),
            1.0,
        ));
    }
    Scenario::new(
        ChargingParams::simulation_default(),
        TimeGrid::new(60.0, SLOTS),
        chargers,
        tasks,
        1.0 / 12.0,
        1,
    )
    .unwrap()
}

/// Live submissions whose devices stay inside their cell's charger reach
/// (never within the 20 m radius of the other cell's chargers).
fn submission_trace(seed: u64, count: usize) -> Vec<(usize, TaskSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace: Vec<(usize, TaskSpec)> = (0..count)
        .map(|k| {
            let slot = rng.gen_range(0..SLOTS);
            let x0 = if k % 2 == 0 { 25.0 } else { 125.0 };
            (
                slot,
                TaskSpec {
                    device_pos: Vec2::new(x0 + rng.gen_range(0.0..50.0), rng.gen_range(15.0..85.0)),
                    device_facing: Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
                    end_slot: (slot + rng.gen_range(2..6usize)).min(SLOTS),
                    required_energy: rng.gen_range(500.0..2500.0),
                    weight: 1.0,
                },
            )
        })
        .collect();
    trace.sort_by_key(|(slot, _)| *slot);
    trace
}

/// Drives a session from `from_slot` to the horizon, submitting each spec
/// in its slot; returns (merged schedule, utility, relaxed utility).
fn drive(
    client: &mut Client,
    trace: &[(usize, TaskSpec)],
    from_slot: usize,
) -> (haste_model::Schedule, f64, f64) {
    let mut next = trace.partition_point(|(slot, _)| *slot < from_slot);
    for slot in from_slot..SLOTS {
        while next < trace.len() && trace[next].0 == slot {
            client.submit(&trace[next].1).unwrap();
            next += 1;
        }
        client.tick(1).unwrap();
    }
    assert_eq!(next, trace.len());
    let schedule = client.schedule().unwrap();
    let (utility, relaxed) = client.utility().unwrap();
    (schedule, utility, relaxed)
}

fn router_config() -> RouterConfig {
    RouterConfig {
        scheduling: localized(),
        cells: (2, 1),
        field: (200.0, 100.0),
        ..RouterConfig::default()
    }
}

#[test]
fn router_with_two_shards_matches_single_engine_bit_for_bit() {
    let scenario = partitionable_scenario(21);
    let trace = submission_trace(22, 24);

    // Reference: one engine owning the whole field.
    let single = serve(ServerConfig {
        scheduling: localized(),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut ref_client = Client::connect(single.addr()).unwrap();
    ref_client.load(&scenario).unwrap();
    let (ref_schedule, ref_utility, ref_relaxed) = drive(&mut ref_client, &trace, 0);
    ref_client.bye().unwrap();
    single.shutdown();

    // Router: same scenario split across 2 shards, same submissions.
    let router = serve_router(router_config()).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&scenario).unwrap();
    let (schedule, utility, relaxed) = drive(&mut client, &trace, 0);
    client.bye().unwrap();
    router.shutdown();

    // The merged schedule is the single engine's, bit for bit; so are the
    // streamed utility totals (same addends, same summation order).
    assert_eq!(schedule, ref_schedule);
    assert_eq!(utility.to_bits(), ref_utility.to_bits());
    assert_eq!(relaxed.to_bits(), ref_relaxed.to_bits());
}

/// Drives a session like [`drive`], but over one v3 binary-framed
/// connection with `batch`-sized `OP_BATCH` submissions. One client means
/// the global arrival order is the trace order — the precondition for
/// comparing utilities bit for bit across wire formats.
fn drive_batched(
    client: &mut Client,
    trace: &[(usize, TaskSpec)],
    batch: usize,
) -> (haste_model::Schedule, f64, f64) {
    let mut next = 0;
    for slot in 0..SLOTS {
        let mut specs = Vec::new();
        while next < trace.len() && trace[next].0 == slot {
            specs.push(trace[next].1);
            next += 1;
        }
        for chunk in specs.chunks(batch) {
            for ack in client.submit_batch(chunk).unwrap() {
                ack.unwrap();
            }
        }
        client.tick(1).unwrap();
    }
    assert_eq!(next, trace.len());
    let schedule = client.schedule().unwrap();
    let (utility, relaxed) = client.utility().unwrap();
    (schedule, utility, relaxed)
}

#[test]
fn binary_batched_router_matches_single_engine_bit_for_bit() {
    let scenario = partitionable_scenario(21);
    let trace = submission_trace(22, 24);

    // Reference: one engine, plain v1 text, serial SUBMITs.
    let single = serve(ServerConfig {
        scheduling: localized(),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut ref_client = Client::connect(single.addr()).unwrap();
    ref_client.load(&scenario).unwrap();
    let (ref_schedule, ref_utility, ref_relaxed) = drive(&mut ref_client, &trace, 0);
    ref_client.bye().unwrap();
    single.shutdown();

    // Same scenario and trace through the 2-shard router over protocol v3
    // binary framing, 5 submissions per OP_BATCH frame (a size that
    // leaves a ragged final chunk), with the pipelined lockstep tick.
    let router = serve_router(router_config()).unwrap();
    let (mut client, topology) = Client::connect_v3(router.addr()).unwrap();
    assert!(client.is_binary());
    assert_eq!(topology.shards, 2);
    client.load(&scenario).unwrap();
    let (schedule, utility, relaxed) = drive_batched(&mut client, &trace, 5);
    client.bye().unwrap();
    router.shutdown();

    assert_eq!(schedule, ref_schedule);
    assert_eq!(utility.to_bits(), ref_utility.to_bits());
    assert_eq!(relaxed.to_bits(), ref_relaxed.to_bits());
}

#[test]
fn router_session_survives_kill_and_restore_bit_identically() {
    let scenario = partitionable_scenario(31);
    let trace = submission_trace(32, 20);

    // Run A: one router, uninterrupted.
    let router_a = serve_router(router_config()).unwrap();
    let mut client_a = Client::connect(router_a.addr()).unwrap();
    client_a.load(&scenario).unwrap();
    let (schedule_a, utility_a, relaxed_a) = drive(&mut client_a, &trace, 0);
    let final_a = client_a.snapshot().unwrap();
    client_a.bye().unwrap();
    router_a.shutdown();

    // Run B: killed at mid-horizon, composite snapshot carried into a
    // fresh router, identical remaining trace.
    let router_b1 = serve_router(router_config()).unwrap();
    let mut client_b = Client::connect(router_b1.addr()).unwrap();
    client_b.load(&scenario).unwrap();
    let mut next = 0;
    for slot in 0..SLOTS / 2 {
        while next < trace.len() && trace[next].0 == slot {
            client_b.submit(&trace[next].1).unwrap();
            next += 1;
        }
        client_b.tick(1).unwrap();
    }
    let mid = client_b.snapshot().unwrap();
    drop(client_b);
    router_b1.shutdown(); // kill

    let router_b2 = serve_router(router_config()).unwrap();
    let mut client_b2 = Client::connect(router_b2.addr()).unwrap();
    let restored_clock = client_b2.restore(&mid).unwrap();
    assert_eq!(restored_clock, SLOTS / 2);
    let (schedule_b, utility_b, relaxed_b) = drive(&mut client_b2, &trace, SLOTS / 2);
    let final_b = client_b2.snapshot().unwrap();
    client_b2.bye().unwrap();
    router_b2.shutdown();

    assert_eq!(schedule_a, schedule_b);
    assert_eq!(utility_a.to_bits(), utility_b.to_bits());
    assert_eq!(relaxed_a.to_bits(), relaxed_b.to_bits());
    // The full composite documents agree: every shard's engine state,
    // the arrival order and the staged-release plan restored exactly.
    assert_eq!(final_a, final_b);
}

#[test]
fn hello_v2_advertises_topology_and_shards_reports_per_shard_state() {
    let router = serve_router(router_config()).unwrap();
    let (mut client, topology) = Client::connect_v2(router.addr()).unwrap();
    assert_eq!(topology.shards, 2);
    assert_eq!(topology.cells, (2, 1));

    client.load(&partitionable_scenario(41)).unwrap();
    client.tick(2).unwrap();
    let shards = client.shards().unwrap();
    assert_eq!(shards.len(), 2);
    for (i, shard) in shards.iter().enumerate() {
        assert_eq!(shard.index, i);
        assert_eq!(shard.cell, (i, 0));
        assert_eq!(shard.slot, 2);
        assert!(shard.open);
        assert!(shard.tasks > 0, "both cells hold tasks in this scenario");
    }

    // The plain daemon reports itself as a 1×1 topology.
    let single = serve(ServerConfig::default()).unwrap();
    let (mut mono, topology) = Client::connect_v2(single.addr()).unwrap();
    assert_eq!(topology.shards, 1);
    assert_eq!(topology.cells, (1, 1));
    // SHARDS? needs a loaded engine, exactly like the router.
    assert_eq!(mono.shards().unwrap_err().code(), Some("no-scenario"));
    mono.load(&partitionable_scenario(42)).unwrap();
    let shards = mono.shards().unwrap();
    assert_eq!(shards.len(), 1);
    mono.bye().unwrap();
    single.shutdown();

    client.bye().unwrap();
    router.shutdown();
}

#[test]
fn unpartitionable_scenarios_are_rejected_at_load() {
    let router = serve_router(router_config()).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();

    // Queries before LOAD still produce the structured v1 errors.
    assert_eq!(client.tick(1).unwrap_err().code(), Some("no-scenario"));
    assert_eq!(client.schedule().unwrap_err().code(), Some("no-scenario"));

    // A charger 5 m from the interior boundary sits inside the 20 m halo:
    // its reach crosses the cut, so the partition is invalid.
    let bad = Scenario::new(
        ChargingParams::simulation_default(),
        TimeGrid::new(60.0, SLOTS),
        vec![
            Charger::new(0, Vec2::new(50.0, 50.0)),
            Charger::new(1, Vec2::new(95.0, 50.0)),
        ],
        Vec::new(),
        1.0 / 12.0,
        1,
    )
    .unwrap();
    assert_eq!(
        client.load(&bad).unwrap_err().code(),
        Some("unpartitionable")
    );

    // The rejection left no partial state behind: a good LOAD succeeds.
    client.load(&partitionable_scenario(51)).unwrap();
    client.bye().unwrap();
    router.shutdown();
}

#[test]
fn loadgen_router_mode_verifies_merged_shard_replay() {
    let report = loadgen::run(&loadgen::LoadgenConfig {
        connections: 3,
        submissions: 200,
        chargers: 6,
        field: 200.0,
        slots: 16,
        seed: 9,
        verify_replay: true,
        cells: Some((2, 1)),
        ..loadgen::LoadgenConfig::default()
    })
    .unwrap();
    assert_eq!(report.shards, Some(2));
    assert_eq!(report.submitted, 200);
    assert_eq!(report.accepted + report.rejected, 200);
    assert_eq!(report.replay_matches, Some(true));
    assert!(report.utility.is_finite());
}

#[test]
fn loadgen_binary_batched_matches_the_text_run_bit_for_bit() {
    // One connection pins the global arrival order to the generated plan,
    // so the streamed utility is comparable across wire formats bit for
    // bit; both runs also self-verify against the merged shard replay.
    let config = loadgen::LoadgenConfig {
        connections: 1,
        submissions: 150,
        chargers: 6,
        field: 200.0,
        slots: 16,
        seed: 13,
        verify_replay: true,
        cells: Some((2, 1)),
        ..loadgen::LoadgenConfig::default()
    };
    let text = loadgen::run(&config).unwrap();
    let binary = loadgen::run(&loadgen::LoadgenConfig {
        binary: true,
        batch: 8,
        ..config
    })
    .unwrap();

    assert_eq!(text.replay_matches, Some(true));
    assert_eq!(binary.replay_matches, Some(true));
    assert_eq!(binary.accepted, text.accepted);
    assert_eq!(binary.utility.to_bits(), text.utility.to_bits());
    assert_eq!(binary.relaxed.to_bits(), text.relaxed.to_bits());
    assert!(binary.submit_elapsed_s > 0.0);
    assert!(binary.submit_elapsed_s <= binary.elapsed_s);
}
