//! Crash recovery end to end: `kill -9` of a live router mid-run,
//! respawn over the same WAL directory, and the resumed run must be
//! bit-identical to an undisturbed reference — over real TCP, for
//! in-process and out-of-process shards, through the loadgen chaos
//! harness and through a hand-driven two-tenant session with a live
//! `RESHARD` straddling the kill.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use haste_distributed::{OnlineConfig, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_model::{Charger, ChargingParams, Scenario, Task, TimeGrid};
use haste_service::loadgen::{run, LoadgenConfig};
use haste_service::wal::WalConfig;
use haste_service::{serve_router, Client, FaultPlan, RouterConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SLOTS: usize = 12;

/// Same halo-safe 200×100 / 2×1 layout as the other router tests.
fn partitionable_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chargers = Vec::new();
    for i in 0..6u32 {
        let x0 = if i % 2 == 0 { 30.0 } else { 130.0 };
        chargers.push(Charger::new(
            i,
            Vec2::new(x0 + rng.gen_range(0.0..40.0), rng.gen_range(20.0..80.0)),
        ));
    }
    let mut tasks = Vec::new();
    for j in 0..8u32 {
        let x0 = if j % 2 == 0 { 25.0 } else { 125.0 };
        let release = if j < 4 { 0 } else { rng.gen_range(1..5) };
        tasks.push(Task::new(
            j,
            Vec2::new(x0 + rng.gen_range(0.0..50.0), rng.gen_range(15.0..85.0)),
            Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
            release,
            (release + rng.gen_range(3..6usize)).min(SLOTS),
            rng.gen_range(500.0..2000.0),
            1.0,
        ));
    }
    Scenario::new(
        ChargingParams::simulation_default(),
        TimeGrid::new(60.0, SLOTS),
        chargers,
        tasks,
        1.0 / 12.0,
        1,
    )
    .unwrap()
}

/// In-cell live submissions, as in the router tests.
fn submission_trace(seed: u64, count: usize) -> Vec<(usize, TaskSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace: Vec<(usize, TaskSpec)> = (0..count)
        .map(|k| {
            let slot = rng.gen_range(0..SLOTS);
            let x0 = if k % 2 == 0 { 25.0 } else { 125.0 };
            (
                slot,
                TaskSpec {
                    device_pos: Vec2::new(x0 + rng.gen_range(0.0..50.0), rng.gen_range(15.0..85.0)),
                    device_facing: Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
                    end_slot: (slot + rng.gen_range(2..6usize)).min(SLOTS),
                    required_energy: rng.gen_range(500.0..2500.0),
                    weight: 1.0,
                },
            )
        })
        .collect();
    trace.sort_by_key(|(slot, _)| *slot);
    trace
}

/// A 200×100 field that stays partitionable across the whole reshard
/// lineage (the base `x = 100` boundary and the `x = 50` boundary a
/// `RESHARD SPLIT 0` introduces), as in the reshard tests: charger
/// clusters and devices keep 20 m clear of both boundaries.
fn splittable_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chargers = Vec::new();
    for i in 0..8u32 {
        let x = match i % 4 {
            0 => 6.0 + rng.gen_range(0.0..20.0),
            1 => 72.0 + rng.gen_range(0.0..6.0),
            _ => 128.0 + rng.gen_range(0.0..44.0),
        };
        chargers.push(Charger::new(i, Vec2::new(x, rng.gen_range(25.0..75.0))));
    }
    let mut tasks = Vec::new();
    for j in 0..8u32 {
        let release = if j < 4 { 0 } else { rng.gen_range(1..5) };
        tasks.push(Task::new(
            j,
            Vec2::new(cluster_x(j as usize, &mut rng), rng.gen_range(20.0..80.0)),
            Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
            release,
            (release + rng.gen_range(3..6usize)).min(SLOTS),
            rng.gen_range(500.0..2000.0),
            1.0,
        ));
    }
    Scenario::new(
        ChargingParams::simulation_default(),
        TimeGrid::new(60.0, SLOTS),
        chargers,
        tasks,
        1.0 / 12.0,
        1,
    )
    .unwrap()
}

/// A device x-coordinate near exactly one charger cluster of
/// [`splittable_scenario`].
fn cluster_x(k: usize, rng: &mut StdRng) -> f64 {
    match k % 4 {
        0 => 8.0 + rng.gen_range(0.0..20.0),
        1 => 66.0 + rng.gen_range(0.0..18.0),
        _ => 126.0 + rng.gen_range(0.0..46.0),
    }
}

/// Live submissions confined to the charger clusters, valid before and
/// after the `SPLIT 0` topology change.
fn splittable_trace(seed: u64, count: usize) -> Vec<(usize, TaskSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace: Vec<(usize, TaskSpec)> = (0..count)
        .map(|k| {
            let slot = rng.gen_range(0..SLOTS);
            (
                slot,
                TaskSpec {
                    device_pos: Vec2::new(cluster_x(k, &mut rng), rng.gen_range(20.0..80.0)),
                    device_facing: Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
                    end_slot: (slot + rng.gen_range(2..6usize)).min(SLOTS),
                    required_energy: rng.gen_range(500.0..2500.0),
                    weight: 1.0,
                },
            )
        })
        .collect();
    trace.sort_by_key(|(slot, _)| *slot);
    trace
}

/// Drives a session over `from..to`, submitting the trace's in-slot
/// entries before each `TICK`.
fn drive_span(client: &mut Client, trace: &[(usize, TaskSpec)], from: usize, to: usize) {
    let mut next = trace.partition_point(|(slot, _)| *slot < from);
    for slot in from..to {
        while next < trace.len() && trace[next].0 == slot {
            client.submit(&trace[next].1).unwrap();
            next += 1;
        }
        client.tick(1).unwrap();
    }
}

/// The final bit-level outcome of one tenant's session.
fn finish(client: &mut Client) -> (haste_model::Schedule, u64, u64) {
    let schedule = client.schedule().unwrap();
    let (utility, relaxed) = client.utility().unwrap();
    (schedule, utility.to_bits(), relaxed.to_bits())
}

/// A fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("haste-wal-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ----------------------------------------------------------------------
// kill-router through the loadgen chaos harness
// ----------------------------------------------------------------------

fn kill_config(tag: &str, plan: &str) -> LoadgenConfig {
    LoadgenConfig {
        cells: Some((2, 1)),
        connections: 3,
        submissions: 600,
        slots: 24,
        verify_replay: true,
        fault_plan: Some(FaultPlan::parse(plan).unwrap()),
        wal_dir: Some(scratch(tag)),
        routerd: Some(PathBuf::from(env!("CARGO_BIN_EXE_routerd"))),
        ..LoadgenConfig::default()
    }
}

#[test]
fn a_router_kill_recovers_bit_identically_in_process() {
    let report = run(&kill_config("lg-inproc", "kill-router @8")).unwrap();
    let chaos = report
        .chaos
        .expect("kill-router runs carry a chaos verdict");
    assert_eq!(chaos.router_kills, 1);
    // kill-router targets no cell: the bitwise comparison against the
    // undisturbed reference covers the whole fleet.
    assert!(chaos.fault_cells.is_empty());
    assert!(chaos.surviving_match, "recovery must be bit-identical");
    assert_eq!(report.replay_matches, Some(true));
    assert!(report.accepted > 0);
}

#[test]
fn a_router_kill_recovers_with_out_of_process_shards() {
    let mut config = kill_config("lg-oop", "kill-router @8");
    config.out_of_process = true;
    config.shardd = Some(PathBuf::from(env!("CARGO_BIN_EXE_haste-shardd")));
    let report = run(&config).unwrap();
    let chaos = report
        .chaos
        .expect("kill-router runs carry a chaos verdict");
    assert_eq!(chaos.router_kills, 1);
    assert!(chaos.surviving_match, "recovery must be bit-identical");
    assert_eq!(report.replay_matches, Some(true));
}

#[test]
fn router_kills_straddling_a_live_reshard_recover() {
    // One kill before the scripted split (replays a pre-split log) and
    // one after it (replays the split record itself), over v3 binary
    // framing with batched submissions.
    let mut config = kill_config("lg-reshard", "kill-router @8\nkill-router @20");
    config.reshard_split = Some((12, 0));
    config.binary = true;
    config.batch = 8;
    let report = run(&config).unwrap();
    let chaos = report
        .chaos
        .expect("kill-router runs carry a chaos verdict");
    assert_eq!(chaos.router_kills, 2);
    assert!(chaos.surviving_match, "recovery must be bit-identical");
    assert_eq!(report.replay_matches, Some(true));
    assert_eq!(report.shards, Some(3), "the split must survive the kills");
}

// ----------------------------------------------------------------------
// In-process restart: shutdown is just a polite crash
// ----------------------------------------------------------------------

#[test]
fn a_restarted_router_resumes_bit_identically_in_process() {
    let localized = OnlineConfig {
        localized: true,
        ..OnlineConfig::default()
    };
    let config = |wal: Option<WalConfig>| RouterConfig {
        scheduling: localized.clone(),
        cells: (2, 1),
        field: (200.0, 100.0),
        wal,
        ..RouterConfig::default()
    };
    let scenario = partitionable_scenario(71);
    let trace = submission_trace(72, 16);

    // Undisturbed, non-durable reference run.
    let reference = serve_router(config(None)).unwrap();
    let mut client = Client::connect(reference.addr()).unwrap();
    client.load(&scenario).unwrap();
    drive_span(&mut client, &trace, 0, SLOTS);
    let expected = finish(&mut client);
    client.bye().unwrap();
    reference.shutdown();

    // Durable run, stopped cold at slot 8. No SNAPSHOT is taken, so the
    // restart must replay the LOAD checkpoint plus the full log tail.
    let dir = scratch("restart");
    let router = serve_router(config(Some(WalConfig::new(&dir)))).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    client.load(&scenario).unwrap();
    drive_span(&mut client, &trace, 0, 8);
    let mid = finish(&mut client);
    client.bye().unwrap();
    router.shutdown();

    // Restart over the same directory: the recovered router is at the
    // same clock with the same bits, and finishing the trace lands on
    // the undisturbed final state exactly.
    let router = serve_router(config(Some(WalConfig::new(&dir)))).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();
    assert_eq!(client.clock().unwrap().0, 8);
    assert_eq!(finish(&mut client), mid);
    drive_span(&mut client, &trace, 8, SLOTS);
    assert_eq!(finish(&mut client), expected);
    client.bye().unwrap();
    router.shutdown();
}

// ----------------------------------------------------------------------
// kill -9 over real TCP: two tenants, a live RESHARD, a real SIGKILL
// ----------------------------------------------------------------------

/// Reserves a free listening address by binding port 0 and dropping the
/// listener (std sets SO_REUSEADDR, so the respawn can rebind it too).
fn reserve_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap().to_string()
}

/// Spawns a durable `routerd` and blocks until its greeting line, which
/// prints only after WAL recovery finished — the contract the kill test
/// leans on: a connectable router is a fully recovered router.
fn spawn_routerd(addr: &str, dir: &Path) -> Child {
    let mut child = Command::new(env!("CARGO_BIN_EXE_routerd"))
        .args([
            "--addr",
            addr,
            "--cells",
            "2x1",
            "--field",
            "200x100",
            "--origin",
            "0,0",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--wal-sync",
            "every-tick",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut greeting = String::new();
    BufReader::new(stdout).read_line(&mut greeting).unwrap();
    assert!(
        greeting.contains("listening on"),
        "routerd failed to come up: `{}`",
        greeting.trim_end()
    );
    child
}

/// One slot of the two-tenant script: `alpha` splits its cell 0 live at
/// slot 6 while `beta` keeps serving undisturbed.
fn drive_tenants_span(
    alpha: &mut Client,
    beta: &mut Client,
    trace_a: &[(usize, TaskSpec)],
    trace_b: &[(usize, TaskSpec)],
    from: usize,
    to: usize,
) {
    for slot in from..to {
        if slot == 6 {
            assert_eq!(alpha.reshard_split(0).unwrap(), (3, 2));
        }
        drive_span(alpha, trace_a, slot, slot + 1);
        drive_span(beta, trace_b, slot, slot + 1);
    }
}

#[test]
fn two_tenants_and_a_live_reshard_survive_kill_nine() {
    let scenario_a = splittable_scenario(81);
    let trace_a = splittable_trace(82, 18);
    let scenario_b = splittable_scenario(83);
    let trace_b = splittable_trace(84, 18);

    // Undisturbed reference: an in-process router with the exact config
    // `routerd` builds from the flags below (default scheduling, no WAL
    // — durability must not change bits), same full script.
    let reference = serve_router(RouterConfig {
        cells: (2, 1),
        field: (200.0, 100.0),
        ..RouterConfig::default()
    })
    .unwrap();
    let mut alpha = Client::connect(reference.addr()).unwrap();
    alpha.tenant("alpha", Some(64)).unwrap();
    alpha.load(&scenario_a).unwrap();
    let mut beta = Client::connect(reference.addr()).unwrap();
    beta.tenant("beta", None).unwrap();
    beta.load(&scenario_b).unwrap();
    drive_tenants_span(&mut alpha, &mut beta, &trace_a, &trace_b, 0, SLOTS);
    let ref_a = finish(&mut alpha);
    let ref_b = finish(&mut beta);
    alpha.bye().unwrap();
    beta.bye().unwrap();
    reference.shutdown();

    // Disturbed run: a real routerd process over real TCP, SIGKILLed
    // cold at slot 8 — after the tick fsync, mid-session for both
    // tenants, with alpha's live split already in the log.
    let dir = scratch("kill9");
    let addr = reserve_addr();
    let mut child = spawn_routerd(&addr, &dir);
    let mut alpha = Client::connect(&addr).unwrap();
    alpha.tenant("alpha", Some(64)).unwrap();
    alpha.load(&scenario_a).unwrap();
    let mut beta = Client::connect(&addr).unwrap();
    beta.tenant("beta", None).unwrap();
    beta.load(&scenario_b).unwrap();
    drive_tenants_span(&mut alpha, &mut beta, &trace_a, &trace_b, 0, 8);
    drop(alpha);
    drop(beta);
    child.kill().unwrap();
    child.wait().unwrap();

    // Respawn over the same WAL directory and reconnect both tenants:
    // recovery must land each on clock 8 with alpha's 3-shard post-split
    // topology intact, and finishing the script must produce the
    // reference bits exactly.
    let mut child = spawn_routerd(&addr, &dir);
    let mut alpha = Client::connect(&addr).unwrap();
    alpha.tenant("alpha", None).unwrap();
    let mut beta = Client::connect(&addr).unwrap();
    beta.tenant("beta", None).unwrap();
    assert_eq!(alpha.clock().unwrap().0, 8);
    assert_eq!(beta.clock().unwrap().0, 8);
    let shards = alpha.shards().unwrap();
    assert_eq!(shards.iter().filter(|s| s.tenant == "alpha").count(), 3);
    assert_eq!(shards.iter().filter(|s| s.tenant == "beta").count(), 2);

    drive_tenants_span(&mut alpha, &mut beta, &trace_a, &trace_b, 8, SLOTS);
    assert_eq!(finish(&mut alpha), ref_a);
    assert_eq!(finish(&mut beta), ref_b);
    alpha.bye().unwrap();
    beta.bye().unwrap();
    child.kill().unwrap();
    child.wait().unwrap();
}
