//! The wire protocol: request parsing and reply formatting.
//!
//! The protocol is line-oriented UTF-8 (in practice ASCII), `\n`-terminated,
//! with whitespace-separated fields — the same conventions as the
//! `model::io` text formats, so scenario/schedule/snapshot documents embed
//! verbatim. Multi-line payloads are length-prefixed by a line count
//! (`LOAD <n>`, `DATA <n>`, `RESTORE <n>`); there are no sentinels to
//! escape. `docs/service_protocol.md` is the normative spec.
//!
//! Every request gets exactly one reply:
//!
//! * `OK [key=value]...` — success, fields are informational,
//! * `DATA <n>` followed by `n` payload lines — success with a document,
//! * `ERR <code> <message>` — failure; `code` is one of [`ErrCode`] and is
//!   stable, the message is free-form.

/// Protocol version spoken by this crate (the `HELLO v1` handshake).
pub const VERSION: &str = "v1";

/// The sharded protocol revision (the `HELLO v2` handshake): the greeting
/// advertises shard topology, `SHARDS?` becomes available, and snapshots
/// of a router are composite documents. Every v1 request keeps its exact
/// v1 semantics.
pub const VERSION_V2: &str = "v2";

/// The binary-framing revision (the `HELLO v3` handshake): after the
/// (text) `OK` greeting the connection switches to length-prefixed binary
/// frames — text requests and replies ride inside `OP_TEXT`/`OP_REPLY`
/// frames with unchanged semantics and byte-exact reply text, and batched
/// `SUBMIT`s (`OP_BATCH`, one vectored ack) become available. Snapshot and
/// schedule documents stay text: shortest-roundtrip f64 text is the
/// determinism anchor. Frame layout: the `framing` module and the
/// "Protocol v3" section of `docs/service_protocol.md`.
pub const VERSION_V3: &str = "v3";

/// Stable machine-readable error codes of `ERR` replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Malformed request line (unknown directive, bad field count/values).
    BadRequest,
    /// The submitted task is invalid (bad window, non-finite fields, …).
    BadTask,
    /// Admission control rejected the submission; retry after a `TICK`.
    Overload,
    /// No scenario loaded yet (`LOAD` or `RESTORE` first).
    NoScenario,
    /// A scenario is already loaded (`RESTORE` replaces, `LOAD` does not).
    AlreadyLoaded,
    /// The virtual clock has consumed every slot of the grid.
    AtHorizon,
    /// A `RESTORE` payload failed to parse.
    BadSnapshot,
    /// The loaded scenario cannot be split across the configured shard
    /// grid: a charger sits inside the reach halo of an interior cell
    /// boundary, or a task's reachable chargers span two cells.
    Unpartitionable,
    /// The shard owning the request's cell is down or recovering; the
    /// message starts with the cell index. Healthy cells keep serving —
    /// retry after the shard rejoins (watch `SHARDS?`).
    Unavailable,
    /// A request-level deadline expired before the reply arrived. Never
    /// sent by a daemon: clients and the router's shard supervisor
    /// synthesize it when [`TcpStream::set_read_timeout`] fires, so the
    /// code shares the protocol's error namespace.
    Timeout,
    /// Unsupported protocol version in `HELLO`.
    Version,
    /// The request handler panicked; the daemon caught it and kept the
    /// connection. Engine state is unspecified — `RESTORE` (or `LOAD` on a
    /// fresh daemon) to recover a known-good state.
    Internal,
    /// The session's tenant id names a tenant that was never created
    /// (`LOAD` under a `TENANT` binding creates one). Only sent by a
    /// router — the single daemon serves the `default` tenant alone.
    UnknownTenant,
    /// The tenant's admission quota for the open slot is exhausted; retry
    /// after a `TICK` (the per-slot counter resets when the slot closes).
    Quota,
}

impl ErrCode {
    /// The wire token of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::BadRequest => "bad-request",
            ErrCode::BadTask => "bad-task",
            ErrCode::Overload => "overload",
            ErrCode::NoScenario => "no-scenario",
            ErrCode::AlreadyLoaded => "already-loaded",
            ErrCode::AtHorizon => "at-horizon",
            ErrCode::BadSnapshot => "bad-snapshot",
            ErrCode::Unpartitionable => "unpartitionable",
            ErrCode::Unavailable => "unavailable",
            ErrCode::Timeout => "timeout",
            ErrCode::Version => "version",
            ErrCode::Internal => "internal",
            ErrCode::UnknownTenant => "unknown-tenant",
            ErrCode::Quota => "quota",
        }
    }

    /// The inverse of [`as_str`](ErrCode::as_str): parses a wire token
    /// back into a code. Used by the router's shard supervisor to pass a
    /// child daemon's structured `ERR` replies through unchanged.
    pub fn parse(token: &str) -> Option<ErrCode> {
        const ALL: [ErrCode; 14] = [
            ErrCode::BadRequest,
            ErrCode::BadTask,
            ErrCode::Overload,
            ErrCode::NoScenario,
            ErrCode::AlreadyLoaded,
            ErrCode::AtHorizon,
            ErrCode::BadSnapshot,
            ErrCode::Unpartitionable,
            ErrCode::Unavailable,
            ErrCode::Timeout,
            ErrCode::Version,
            ErrCode::Internal,
            ErrCode::UnknownTenant,
            ErrCode::Quota,
        ];
        ALL.into_iter().find(|code| code.as_str() == token)
    }
}

impl std::fmt::Display for ErrCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A reply to one request, ready to serialize with [`Reply::serialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `OK <text>`.
    Ok(String),
    /// `DATA <n>` + the payload (must be newline-terminated or empty).
    Data(String),
    /// `ERR <code> <message>`.
    Err(ErrCode, String),
}

impl Reply {
    /// Renders the reply as wire bytes (always newline-terminated).
    pub fn serialize(&self) -> String {
        match self {
            Reply::Ok(text) if text.is_empty() => "OK\n".to_string(),
            Reply::Ok(text) => format!("OK {text}\n"),
            Reply::Data(payload) => {
                debug_assert!(payload.is_empty() || payload.ends_with('\n'));
                format!("DATA {}\n{payload}", payload.lines().count())
            }
            Reply::Err(code, message) => format!("ERR {code} {message}\n"),
        }
    }
}

/// A parsed request line. Multi-line payload sections (`LOAD`, `RESTORE`)
/// carry their announced line count; the connection handler reads the
/// payload lines after parsing the head line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `HELLO <version>` — handshake.
    Hello(String),
    /// `LOAD <n>` — load a scenario document of `n` lines.
    Load(usize),
    /// `SUBMIT <x> <y> <facing_rad> <end_slot> <energy> <weight>`.
    Submit {
        /// Device position x (meters).
        x: f64,
        /// Device position y (meters).
        y: f64,
        /// Receiving-sector orientation (radians).
        facing: f64,
        /// One past the last active slot (absolute).
        end_slot: usize,
        /// Required charging energy (joules).
        energy: f64,
        /// Weight in the overall utility.
        weight: f64,
    },
    /// `TICK [n]` — close `n` slots (default 1).
    Tick(usize),
    /// `CLOCK?` — current open slot.
    Clock,
    /// `SCHEDULE?` — the schedule as planned/executed so far.
    Schedule,
    /// `UTILITY?` — full P1 utility and relaxed (HASTE-R) value.
    Utility,
    /// `PARTS?` — per-task weighted utility terms in arrival order (v2).
    Parts,
    /// `METRICS?` — solver metrics and negotiation counters.
    Metrics,
    /// `EXPORT?` — Prometheus-style text exposition of the typed metric
    /// registry (`# TYPE`/`# HELP` comments plus cumulative histogram
    /// bucket lines). The legacy `METRICS?` keys survive as aliased
    /// families; `docs/service_protocol.md` has the normative schema.
    Export,
    /// `SHARDS?` — per-shard slot, cell, and admission counters (v2).
    Shards,
    /// `TENANT <id> [<quota>]` — bind this connection's session tenant,
    /// optionally (re)setting its per-slot admission quota (v2 router).
    Tenant {
        /// The tenant id (alphanumeric plus `-`, `_`, `.`; max 64 bytes).
        id: String,
        /// Per-slot accepted-submission cap; `None` leaves it unchanged
        /// (unlimited for a tenant that never set one).
        quota: Option<u64>,
    },
    /// `RESHARD SPLIT <cell>` — split a cell of the session tenant's
    /// partition in two and migrate its engine live (v2 router).
    ReshardSplit(usize),
    /// `RESHARD MERGE <a> <b>` — merge two rect-adjacent cells of the
    /// session tenant's partition live (v2 router).
    ReshardMerge(usize, usize),
    /// `SNAPSHOT` — serialize full engine state.
    Snapshot,
    /// `RESTORE <n>` — replace engine state from an `n`-line snapshot.
    Restore(usize),
    /// `BYE` — close the connection.
    Bye,
}

impl Request {
    /// The wire directive of this request, for metric `opcode` labels.
    /// Stable tokens: exactly the directives of the protocol spec.
    pub fn opcode(&self) -> &'static str {
        match self {
            Request::Hello(_) => "HELLO",
            Request::Load(_) => "LOAD",
            Request::Submit { .. } => "SUBMIT",
            Request::Tick(_) => "TICK",
            Request::Clock => "CLOCK?",
            Request::Schedule => "SCHEDULE?",
            Request::Utility => "UTILITY?",
            Request::Parts => "PARTS?",
            Request::Metrics => "METRICS?",
            Request::Export => "EXPORT?",
            Request::Shards => "SHARDS?",
            Request::Tenant { .. } => "TENANT",
            Request::ReshardSplit(_) | Request::ReshardMerge(..) => "RESHARD",
            Request::Snapshot => "SNAPSHOT",
            Request::Restore(_) => "RESTORE",
            Request::Bye => "BYE",
        }
    }

    /// Parses one request line (already stripped of its newline).
    ///
    /// Field access is by slice pattern throughout — no indexing, nothing
    /// that can panic on a short line (lint rule P1 enforces this for all
    /// request-handling code).
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut fields = line.split_whitespace();
        let directive = fields.next().ok_or("empty request")?;
        let rest: Vec<&str> = fields.collect();
        let arity =
            |n: usize| -> String { format!("{directive} expects {n} fields, got {}", rest.len()) };
        let uint = |s: &str| -> Result<usize, String> {
            s.parse().map_err(|_| format!("`{s}` is not a count"))
        };
        let num = |s: &str| -> Result<f64, String> {
            s.parse().map_err(|_| format!("`{s}` is not a number"))
        };
        let tenant_id = |s: &str| -> Result<String, String> {
            let well_formed = !s.is_empty()
                && s.len() <= 64
                && s.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'));
            if well_formed {
                Ok(s.to_string())
            } else {
                Err(format!(
                    "`{s}` is not a tenant id (alphanumeric plus `-`, `_`, `.`; max 64 bytes)"
                ))
            }
        };
        match (directive, rest.as_slice()) {
            ("HELLO", [version]) => Ok(Request::Hello(version.to_string())),
            ("HELLO", _) => Err(arity(1)),
            ("LOAD", [count]) => Ok(Request::Load(uint(count)?)),
            ("LOAD", _) => Err(arity(1)),
            ("SUBMIT", [x, y, facing, end_slot, energy, weight]) => Ok(Request::Submit {
                x: num(x)?,
                y: num(y)?,
                facing: num(facing)?,
                end_slot: uint(end_slot)?,
                energy: num(energy)?,
                weight: num(weight)?,
            }),
            ("SUBMIT", _) => Err(arity(6)),
            ("TICK", []) => Ok(Request::Tick(1)),
            ("TICK", [n]) => {
                let n = uint(n)?;
                if n == 0 {
                    return Err("TICK of 0 slots".to_string());
                }
                Ok(Request::Tick(n))
            }
            ("TICK", _) => Err("TICK expects at most 1 field".to_string()),
            ("CLOCK?", []) => Ok(Request::Clock),
            ("CLOCK?", _) => Err(arity(0)),
            ("SCHEDULE?", []) => Ok(Request::Schedule),
            ("SCHEDULE?", _) => Err(arity(0)),
            ("UTILITY?", []) => Ok(Request::Utility),
            ("UTILITY?", _) => Err(arity(0)),
            ("PARTS?", []) => Ok(Request::Parts),
            ("PARTS?", _) => Err(arity(0)),
            ("METRICS?", []) => Ok(Request::Metrics),
            ("METRICS?", _) => Err(arity(0)),
            ("EXPORT?", []) => Ok(Request::Export),
            ("EXPORT?", _) => Err(arity(0)),
            ("SHARDS?", []) => Ok(Request::Shards),
            ("SHARDS?", _) => Err(arity(0)),
            ("TENANT", [id]) => Ok(Request::Tenant {
                id: tenant_id(id)?,
                quota: None,
            }),
            ("TENANT", [id, quota]) => Ok(Request::Tenant {
                id: tenant_id(id)?,
                quota: Some(uint(quota)? as u64),
            }),
            ("TENANT", _) => Err("TENANT expects 1 or 2 fields".to_string()),
            ("RESHARD", ["SPLIT", cell]) => Ok(Request::ReshardSplit(uint(cell)?)),
            ("RESHARD", ["MERGE", a, b]) => Ok(Request::ReshardMerge(uint(a)?, uint(b)?)),
            ("RESHARD", _) => Err("RESHARD expects SPLIT <cell> or MERGE <a> <b>".to_string()),
            ("SNAPSHOT", []) => Ok(Request::Snapshot),
            ("SNAPSHOT", _) => Err(arity(0)),
            ("RESTORE", [count]) => Ok(Request::Restore(uint(count)?)),
            ("RESTORE", _) => Err(arity(1)),
            ("BYE", []) => Ok(Request::Bye),
            ("BYE", _) => Err(arity(0)),
            (other, _) => Err(format!("unknown directive `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_directive() {
        assert_eq!(
            Request::parse("HELLO v1"),
            Ok(Request::Hello("v1".to_string()))
        );
        assert_eq!(Request::parse("LOAD 12"), Ok(Request::Load(12)));
        assert_eq!(
            Request::parse("SUBMIT 1.5 -2 0.25 8 900 1"),
            Ok(Request::Submit {
                x: 1.5,
                y: -2.0,
                facing: 0.25,
                end_slot: 8,
                energy: 900.0,
                weight: 1.0,
            })
        );
        assert_eq!(Request::parse("TICK"), Ok(Request::Tick(1)));
        assert_eq!(Request::parse("TICK 4"), Ok(Request::Tick(4)));
        assert_eq!(Request::parse("CLOCK?"), Ok(Request::Clock));
        assert_eq!(Request::parse("SCHEDULE?"), Ok(Request::Schedule));
        assert_eq!(Request::parse("UTILITY?"), Ok(Request::Utility));
        assert_eq!(Request::parse("PARTS?"), Ok(Request::Parts));
        assert_eq!(Request::parse("METRICS?"), Ok(Request::Metrics));
        assert_eq!(Request::parse("EXPORT?"), Ok(Request::Export));
        assert_eq!(Request::parse("SHARDS?"), Ok(Request::Shards));
        assert_eq!(
            Request::parse("TENANT acme"),
            Ok(Request::Tenant {
                id: "acme".to_string(),
                quota: None,
            })
        );
        assert_eq!(
            Request::parse("TENANT acme-2 500"),
            Ok(Request::Tenant {
                id: "acme-2".to_string(),
                quota: Some(500),
            })
        );
        assert_eq!(
            Request::parse("RESHARD SPLIT 0"),
            Ok(Request::ReshardSplit(0))
        );
        assert_eq!(
            Request::parse("RESHARD MERGE 1 2"),
            Ok(Request::ReshardMerge(1, 2))
        );
        assert_eq!(Request::parse("SNAPSHOT"), Ok(Request::Snapshot));
        assert_eq!(Request::parse("RESTORE 40"), Ok(Request::Restore(40)));
        assert_eq!(Request::parse("BYE"), Ok(Request::Bye));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("NOPE 1").is_err());
        assert!(Request::parse("LOAD").is_err());
        assert!(Request::parse("LOAD x").is_err());
        assert!(Request::parse("SUBMIT 1 2 3").is_err());
        assert!(Request::parse("SUBMIT 1 2 3 four 5 6").is_err());
        assert!(Request::parse("TICK 0").is_err());
        assert!(Request::parse("TICK 1 2").is_err());
        assert!(Request::parse("CLOCK? now").is_err());
        assert!(Request::parse("PARTS? 1").is_err());
        assert!(Request::parse("EXPORT? all").is_err());
        assert!(Request::parse("TENANT").is_err());
        assert!(Request::parse("TENANT bad id extra").is_err());
        assert!(Request::parse("TENANT spaced/slash").is_err());
        assert!(Request::parse("TENANT acme lots").is_err());
        assert!(Request::parse("RESHARD").is_err());
        assert!(Request::parse("RESHARD SPLIT").is_err());
        assert!(Request::parse("RESHARD SPLIT x").is_err());
        assert!(Request::parse("RESHARD MERGE 1").is_err());
        assert!(Request::parse("RESHARD GROW 1").is_err());
    }

    #[test]
    fn opcode_round_trips_through_parse() {
        for line in [
            "HELLO v1",
            "LOAD 3",
            "SUBMIT 1 2 0.5 8 900 1",
            "TICK",
            "CLOCK?",
            "SCHEDULE?",
            "UTILITY?",
            "PARTS?",
            "METRICS?",
            "EXPORT?",
            "SHARDS?",
            "TENANT acme",
            "RESHARD SPLIT 0",
            "RESHARD MERGE 0 1",
            "SNAPSHOT",
            "RESTORE 4",
            "BYE",
        ] {
            let request = Request::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            let directive = line.split_whitespace().next().unwrap_or_default();
            assert_eq!(request.opcode(), directive);
        }
    }

    #[test]
    fn errcode_parse_inverts_as_str() {
        for token in [
            "bad-request",
            "bad-task",
            "overload",
            "no-scenario",
            "already-loaded",
            "at-horizon",
            "bad-snapshot",
            "unpartitionable",
            "unavailable",
            "timeout",
            "version",
            "internal",
            "unknown-tenant",
            "quota",
        ] {
            let code = ErrCode::parse(token).unwrap_or_else(|| panic!("unknown token {token}"));
            assert_eq!(code.as_str(), token);
        }
        assert_eq!(ErrCode::parse("nope"), None);
    }

    #[test]
    fn reply_serialization() {
        assert_eq!(Reply::Ok(String::new()).serialize(), "OK\n");
        assert_eq!(Reply::Ok("slot=3".to_string()).serialize(), "OK slot=3\n");
        assert_eq!(
            Reply::Data("a\nb\n".to_string()).serialize(),
            "DATA 2\na\nb\n"
        );
        assert_eq!(Reply::Data(String::new()).serialize(), "DATA 0\n");
        assert_eq!(
            Reply::Err(ErrCode::Overload, "queue full".to_string()).serialize(),
            "ERR overload queue full\n"
        );
    }
}
