//! The daemon: TCP accept loop, connection handlers, request dispatch.
//!
//! Plain `std::net` blocking sockets — no async runtime. The accept loop
//! runs on one thread in non-blocking mode (polling a shutdown flag);
//! each accepted connection is handled on a worker of a
//! [`haste_parallel::ThreadPool`]. Handlers use short read timeouts so an
//! idle connection notices shutdown promptly. All connections share one
//! engine behind a mutex: requests are serialized, which matches the
//! engine's semantics (submissions within a slot are ordered by admission,
//! and that order *is* the determinism contract).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use haste_distributed::{AdmitError, OnlineConfig, OnlineEngine, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_model::io as model_io;
use haste_parallel::ThreadPool;
use parking_lot::Mutex;

use crate::proto::{ErrCode, Reply, Request, VERSION};

/// How long a handler blocks on a read before re-checking the shutdown
/// flag. Short enough for prompt shutdown, long enough to stay off the CPU.
const READ_POLL: Duration = Duration::from_millis(25);

/// Configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 to let the OS pick (the bound address is
    /// available on the returned handle).
    pub addr: String,
    /// Connection-handler threads. This is the connection cap: with `c`
    /// workers, connection `c + 1` waits until one closes. Keep it at or
    /// above the expected client count (barrier-coordinated load
    /// generators deadlock below it).
    pub worker_threads: usize,
    /// Admission bound: submissions per open slot before `ERR overload`.
    pub max_pending: usize,
    /// Scheduling configuration for engines created by `LOAD`.
    pub scheduling: OnlineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            worker_threads: 64,
            max_pending: 4096,
            scheduling: OnlineConfig::default(),
        }
    }
}

/// State shared by every connection of one daemon.
struct Shared {
    engine: Mutex<Option<OnlineEngine>>,
    scheduling: OnlineConfig,
    max_pending: usize,
    shutdown: AtomicBool,
}

/// A running daemon. Dropping the handle shuts the daemon down and joins
/// its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins the accept loop and all handlers. Open
    /// connections are closed after their in-flight request completes.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Starts a daemon and returns its handle. The accept loop and handlers
/// run on background threads; the call itself returns immediately after
/// binding.
pub fn serve(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        engine: Mutex::new(None),
        scheduling: config.scheduling.clone(),
        max_pending: config.max_pending,
        shutdown: AtomicBool::new(false),
    });
    let accept_shared = Arc::clone(&shared);
    let workers = config.worker_threads.max(1);
    let accept_thread = std::thread::Builder::new()
        .name("haste-service-accept".to_string())
        .spawn(move || {
            // The pool lives (and on exit drains + joins) inside the
            // accept thread, so joining the accept thread joins everything.
            let pool = ThreadPool::new(workers);
            while !accept_shared.shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let conn_shared = Arc::clone(&accept_shared);
                        pool.execute(move || {
                            let _ = handle_connection(stream, &conn_shared);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })?;
    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

/// Reads one `\n`-terminated line, polling the shutdown flag across read
/// timeouts. Partial bytes accumulate in `buf` between polls, so a slow
/// sender never loses data. Returns `None` on EOF or shutdown. Generic
/// over the reader so request handling is unit-testable off a socket.
fn read_line_polling<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<String>> {
    buf.clear();
    loop {
        match reader.read_until(b'\n', buf) {
            Ok(0) => return Ok(None),
            // A read without a trailing newline means EOF mid-line; the
            // fragment is treated as a final line.
            Ok(_) => {
                let line = String::from_utf8_lossy(buf).trim_end().to_string();
                return Ok(Some(line));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Reads `count` payload lines (a length-prefixed document).
fn read_payload<R: BufRead>(
    reader: &mut R,
    count: usize,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<String>> {
    let mut payload = String::new();
    let mut buf = Vec::new();
    for _ in 0..count {
        match read_line_polling(reader, &mut buf, shutdown)? {
            Some(line) => {
                payload.push_str(&line);
                payload.push('\n');
            }
            None => return Ok(None),
        }
    }
    Ok(Some(payload))
}

/// Serves one connection until EOF, `BYE`, or shutdown.
fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut buf = Vec::new();
    loop {
        let Some(line) = read_line_polling(&mut reader, &mut buf, &shared.shutdown)? else {
            return Ok(());
        };
        if line.is_empty() {
            continue;
        }
        let (reply, close) = dispatch(&line, &mut reader, shared)?;
        writer.write_all(reply.serialize().as_bytes())?;
        writer.flush()?;
        if close {
            return Ok(());
        }
    }
}

/// Parses and executes one request; returns the reply and whether the
/// connection should close.
///
/// Execution runs under [`catching`]: a panic anywhere in a handler (or in
/// the engine underneath it) becomes a structured `ERR internal` reply
/// instead of killing the connection loop. That is a backstop, not a
/// license — lint rule P1 keeps panicking constructs out of this file.
fn dispatch<R: BufRead>(
    line: &str,
    reader: &mut R,
    shared: &Shared,
) -> std::io::Result<(Reply, bool)> {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(reason) => return Ok((Reply::Err(ErrCode::BadRequest, reason), false)),
    };
    catching(AssertUnwindSafe(|| execute(request, reader, shared)))
}

/// Runs one request handler, converting a panic into an `ERR internal`
/// reply carrying the panic message. The engine mutex (parking_lot, no
/// poisoning) unlocks during unwind, so the daemon keeps serving; a panic
/// mid-mutation can leave the engine in an unspecified (still
/// memory-safe) state, which the reply tells the client to `RESTORE` away.
fn catching<F>(f: F) -> std::io::Result<(Reply, bool)>
where
    F: FnOnce() -> std::io::Result<(Reply, bool)> + std::panic::UnwindSafe,
{
    match catch_unwind(f) {
        Ok(result) => result,
        Err(payload) => {
            let context = if let Some(s) = payload.downcast_ref::<&str>() {
                s
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.as_str()
            } else {
                "non-string panic payload"
            };
            Ok((
                Reply::Err(
                    ErrCode::Internal,
                    format!("request handler panicked: {context}"),
                ),
                false,
            ))
        }
    }
}

/// Executes one parsed request; returns the reply and whether the
/// connection should close.
fn execute<R: BufRead>(
    request: Request,
    reader: &mut R,
    shared: &Shared,
) -> std::io::Result<(Reply, bool)> {
    let reply = match request {
        Request::Hello(version) => {
            if version == VERSION {
                Reply::Ok(format!("haste-service {VERSION}"))
            } else {
                Reply::Err(
                    ErrCode::Version,
                    format!("unsupported version `{version}` (this daemon speaks {VERSION})"),
                )
            }
        }
        Request::Load(count) => {
            let Some(payload) = read_payload(reader, count, &shared.shutdown)? else {
                return Ok((
                    Reply::Err(ErrCode::BadRequest, "truncated LOAD payload".to_string()),
                    true,
                ));
            };
            let mut engine = shared.engine.lock();
            if engine.is_some() {
                Reply::Err(
                    ErrCode::AlreadyLoaded,
                    "a scenario is already loaded (RESTORE replaces state, LOAD does not)"
                        .to_string(),
                )
            } else {
                match model_io::read_scenario(&payload) {
                    Ok(scenario) => {
                        let new = OnlineEngine::new(
                            scenario,
                            shared.scheduling.clone(),
                            shared.max_pending,
                        );
                        let reply = Reply::Ok(format!(
                            "chargers={} staged={} slots={}",
                            new.scenario().num_chargers(),
                            new.staged_len() + new.scenario().num_tasks(),
                            new.scenario().grid.num_slots
                        ));
                        *engine = Some(new);
                        reply
                    }
                    Err(e) => Reply::Err(ErrCode::BadRequest, format!("bad scenario: {e}")),
                }
            }
        }
        Request::Submit {
            x,
            y,
            facing,
            end_slot,
            energy,
            weight,
        } => {
            if !(x.is_finite() && y.is_finite() && facing.is_finite()) {
                Reply::Err(ErrCode::BadTask, "non-finite position/facing".to_string())
            } else {
                let mut engine = shared.engine.lock();
                match engine.as_mut() {
                    None => no_scenario(),
                    Some(engine) => {
                        let spec = TaskSpec {
                            device_pos: Vec2::new(x, y),
                            device_facing: Angle::from_radians(facing),
                            end_slot,
                            required_energy: energy,
                            weight,
                        };
                        match engine.submit(spec) {
                            Ok(id) => {
                                Reply::Ok(format!("task={} release={}", id.0, engine.clock()))
                            }
                            Err(e @ AdmitError::Backpressure { .. }) => {
                                Reply::Err(ErrCode::Overload, e.to_string())
                            }
                            Err(e @ AdmitError::Closed) => {
                                Reply::Err(ErrCode::AtHorizon, e.to_string())
                            }
                            Err(e @ AdmitError::BadTask(_)) => {
                                Reply::Err(ErrCode::BadTask, e.to_string())
                            }
                        }
                    }
                }
            }
        }
        Request::Tick(n) => {
            let mut engine = shared.engine.lock();
            match engine.as_mut() {
                None => no_scenario(),
                Some(engine) => {
                    if engine.is_closed() {
                        Reply::Err(ErrCode::AtHorizon, "the time grid is exhausted".to_string())
                    } else {
                        for _ in 0..n {
                            if engine.tick().is_none() {
                                break;
                            }
                        }
                        Reply::Ok(format!(
                            "slot={} open={}",
                            engine.clock(),
                            u8::from(!engine.is_closed())
                        ))
                    }
                }
            }
        }
        Request::Clock => match shared.engine.lock().as_ref() {
            None => no_scenario(),
            Some(engine) => Reply::Ok(format!(
                "slot={} open={}",
                engine.clock(),
                u8::from(!engine.is_closed())
            )),
        },
        Request::Schedule => match shared.engine.lock().as_ref() {
            None => no_scenario(),
            Some(engine) => Reply::Data(model_io::write_schedule(engine.schedule())),
        },
        Request::Utility => {
            let mut engine = shared.engine.lock();
            match engine.as_mut() {
                None => no_scenario(),
                Some(engine) => {
                    let report = engine.evaluate();
                    let relaxed = engine.relaxed_value();
                    Reply::Ok(format!(
                        "utility={} relaxed={}",
                        report.total_utility, relaxed
                    ))
                }
            }
        }
        Request::Metrics => match shared.engine.lock().as_ref() {
            None => no_scenario(),
            Some(engine) => {
                let metrics = engine.metrics();
                let stats = engine.stats();
                let (admitted, rejected, pending) = engine.counters();
                let mut payload = String::new();
                for (key, value) in [
                    ("clock", engine.clock().to_string()),
                    ("tasks", engine.scenario().num_tasks().to_string()),
                    ("staged", engine.staged_len().to_string()),
                    ("admitted", admitted.to_string()),
                    ("rejected", rejected.to_string()),
                    ("pending", pending.to_string()),
                    ("threads", metrics.threads.to_string()),
                    ("oracle_marginals", metrics.oracle_marginals.to_string()),
                    ("oracle_commits", metrics.oracle_commits.to_string()),
                    ("messages", stats.messages.to_string()),
                    ("rounds", stats.rounds.to_string()),
                    (
                        "instance_build_us",
                        metrics.instance_build.as_micros().to_string(),
                    ),
                    ("greedy_us", metrics.greedy.as_micros().to_string()),
                    ("rounding_us", metrics.rounding.as_micros().to_string()),
                    (
                        "coverage_build_us",
                        metrics.coverage_build.as_micros().to_string(),
                    ),
                ] {
                    payload.push_str(key);
                    payload.push(' ');
                    payload.push_str(&value);
                    payload.push('\n');
                }
                Reply::Data(payload)
            }
        },
        Request::Snapshot => match shared.engine.lock().as_ref() {
            None => no_scenario(),
            Some(engine) => Reply::Data(engine.snapshot()),
        },
        Request::Restore(count) => {
            let Some(payload) = read_payload(reader, count, &shared.shutdown)? else {
                return Ok((
                    Reply::Err(ErrCode::BadRequest, "truncated RESTORE payload".to_string()),
                    true,
                ));
            };
            match OnlineEngine::restore(&payload) {
                Ok(new) => {
                    let reply = Reply::Ok(format!(
                        "slot={} open={}",
                        new.clock(),
                        u8::from(!new.is_closed())
                    ));
                    *shared.engine.lock() = Some(new);
                    reply
                }
                Err(e) => Reply::Err(ErrCode::BadSnapshot, e.to_string()),
            }
        }
        Request::Bye => return Ok((Reply::Ok("bye".to_string()), true)),
    };
    Ok((reply, false))
}

fn no_scenario() -> Reply {
    Reply::Err(
        ErrCode::NoScenario,
        "no scenario loaded (LOAD or RESTORE first)".to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_shared() -> Shared {
        Shared {
            engine: Mutex::new(None),
            scheduling: OnlineConfig::default(),
            max_pending: 4,
            shutdown: AtomicBool::new(false),
        }
    }

    #[test]
    fn a_panicking_handler_becomes_err_internal() {
        let result = catching(AssertUnwindSafe(|| -> std::io::Result<(Reply, bool)> {
            panic!("boom {}", 42)
        }));
        let (reply, close) = result.expect("catching never returns Err for a panic");
        assert!(!close, "a caught panic must keep the connection open");
        match reply {
            Reply::Err(code, message) => {
                assert_eq!(code, ErrCode::Internal);
                assert!(message.contains("boom 42"), "lost panic context: {message}");
            }
            other => panic!("expected ERR internal, got {other:?}"),
        }
    }

    #[test]
    fn static_panic_payloads_keep_their_message() {
        let result = catching(AssertUnwindSafe(|| -> std::io::Result<(Reply, bool)> {
            panic!("static payload")
        }));
        let (reply, _) = result.expect("catching never returns Err for a panic");
        match reply {
            Reply::Err(ErrCode::Internal, message) => {
                assert!(message.contains("static payload"), "{message}");
            }
            other => panic!("expected ERR internal, got {other:?}"),
        }
    }

    #[test]
    fn dispatch_replies_structurally_off_a_socketless_reader() {
        let shared = fresh_shared();
        let mut reader = std::io::Cursor::new(Vec::<u8>::new());
        let (reply, close) = dispatch("NOPE 1 2", &mut reader, &shared).unwrap();
        assert!(matches!(reply, Reply::Err(ErrCode::BadRequest, _)));
        assert!(!close);
        let (reply, close) = dispatch("SNAPSHOT", &mut reader, &shared).unwrap();
        assert!(matches!(reply, Reply::Err(ErrCode::NoScenario, _)));
        assert!(!close);
        // A truncated LOAD payload is the one bad-request that also closes
        // the connection: the stream is desynchronized beyond recovery.
        let (reply, close) = dispatch("LOAD 3", &mut reader, &shared).unwrap();
        assert!(matches!(reply, Reply::Err(ErrCode::BadRequest, _)));
        assert!(close);
    }
}
