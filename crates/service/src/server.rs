//! The daemon: TCP accept loop, connection handlers, request dispatch.
//!
//! Plain `std::net` blocking sockets — no async runtime. The accept loop
//! runs on one thread in non-blocking mode (polling a shutdown flag);
//! each accepted connection is handled on a worker of a
//! [`haste_parallel::ThreadPool`]. Handlers use short read timeouts so an
//! idle connection notices shutdown promptly. All connections share one
//! [`Shard`] (engine + admission + metrics): requests are serialized by
//! its mutex, which matches the engine's semantics (submissions within a
//! slot are ordered by admission, and that order *is* the determinism
//! contract).
//!
//! This file owns the wire formatting for the single-engine daemon; the
//! engine state itself lives in [`crate::shard`], shared with the
//! multi-shard router in [`crate::router`].

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use haste_distributed::{AdmitError, OnlineConfig, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_parallel::ThreadPool;

use crate::framing::{self, BatchAck};
use crate::proto::{ErrCode, Reply, Request, VERSION, VERSION_V2, VERSION_V3};
use crate::shard::{Shard, ShardError, ShardHealth};
use crate::telemetry::{self, Telemetry};

/// How long a handler blocks on a read before re-checking the shutdown
/// flag. Short enough for prompt shutdown, long enough to stay off the CPU.
pub(crate) const READ_POLL: Duration = Duration::from_millis(25);

/// Write deadline for connection handlers: a client that stops reading
/// while the daemon writes a large reply (an `EXPORT?` document) must
/// fail the connection, not wedge its handler thread forever.
pub(crate) const WRITE_STALL: Duration = Duration::from_secs(30);

/// Configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 to let the OS pick (the bound address is
    /// available on the returned handle).
    pub addr: String,
    /// Connection-handler threads. This is the connection cap: with `c`
    /// workers, connection `c + 1` waits until one closes. Keep it at or
    /// above the expected client count (barrier-coordinated load
    /// generators deadlock below it).
    pub worker_threads: usize,
    /// Admission bound: submissions per open slot before `ERR overload`.
    pub max_pending: usize,
    /// Scheduling configuration for engines created by `LOAD`.
    pub scheduling: OnlineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            worker_threads: 64,
            max_pending: 4096,
            scheduling: OnlineConfig::default(),
        }
    }
}

/// State shared by every connection of one daemon.
struct Shared {
    shard: Shard,
    shutdown: AtomicBool,
    telemetry: Telemetry,
}

/// A running daemon. Dropping the handle shuts the daemon down and joins
/// its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins the accept loop and all handlers. Open
    /// connections are closed after their in-flight request completes.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Starts a daemon and returns its handle. The accept loop and handlers
/// run on background threads; the call itself returns immediately after
/// binding.
pub fn serve(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        shard: Shard::new(config.scheduling.clone(), config.max_pending),
        shutdown: AtomicBool::new(false),
        telemetry: Telemetry::new(),
    });
    let accept_shared = Arc::clone(&shared);
    let workers = config.worker_threads.max(1);
    let accept_thread = std::thread::Builder::new()
        .name("haste-service-accept".to_string())
        .spawn(move || {
            // The pool lives (and on exit drains + joins) inside the
            // accept thread, so joining the accept thread joins everything.
            let pool = ThreadPool::new(workers);
            while !accept_shared.shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let conn_shared = Arc::clone(&accept_shared);
                        pool.execute(move || {
                            let _ = handle_connection(stream, &conn_shared);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })?;
    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

/// Reads one `\n`-terminated line, polling the shutdown flag across read
/// timeouts. Partial bytes accumulate in `buf` between polls, so a slow
/// sender never loses data. Returns `None` on EOF or shutdown. Generic
/// over the reader so request handling is unit-testable off a socket.
pub(crate) fn read_line_polling<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<String>> {
    buf.clear();
    loop {
        match reader.read_until(b'\n', buf) {
            Ok(0) => return Ok(None),
            // A read without a trailing newline means EOF mid-line; the
            // fragment is treated as a final line.
            Ok(_) => {
                let line = String::from_utf8_lossy(buf).trim_end().to_string();
                return Ok(Some(line));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Reads `count` payload lines (a length-prefixed document).
pub(crate) fn read_payload<R: BufRead>(
    reader: &mut R,
    count: usize,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<String>> {
    let mut payload = String::new();
    let mut buf = Vec::new();
    for _ in 0..count {
        match read_line_polling(reader, &mut buf, shutdown)? {
            Some(line) => {
                payload.push_str(&line);
                payload.push('\n');
            }
            None => return Ok(None),
        }
    }
    Ok(Some(payload))
}

/// Serves one connection until EOF, `BYE`, or shutdown.
fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_write_timeout(Some(WRITE_STALL))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut buf = Vec::new();
    loop {
        let Some(line) = read_line_polling(&mut reader, &mut buf, &shared.shutdown)? else {
            return Ok(());
        };
        if line.is_empty() {
            continue;
        }
        let (reply, close) = dispatch(&line, &mut reader, shared)?;
        let upgrade = framing::upgrades_to_v3(&line, &reply);
        writer.write_all(reply.serialize().as_bytes())?;
        writer.flush()?;
        if close {
            return Ok(());
        }
        if upgrade {
            // The accepted `HELLO v3` greeting is the last text exchange;
            // everything after it is length-prefixed binary frames.
            return serve_framed(&mut reader, &mut writer, shared);
        }
    }
}

/// Serves a connection that negotiated protocol v3: the framed loop over
/// the same dispatch path. Text requests arrive with their payload
/// embedded in the frame, so the payload reader is a cursor over those
/// bytes — `read_payload` and every handler behave exactly as over TCP
/// lines, including the truncated-payload close.
fn serve_framed<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    shared: &Shared,
) -> std::io::Result<()> {
    framing::serve_frames(
        reader,
        writer,
        &shared.shutdown,
        |head, payload| {
            let mut embedded = std::io::Cursor::new(payload);
            dispatch(head, &mut embedded, shared)
        },
        |specs| batch_backstop(specs, || execute_batch(specs, shared)),
    )
}

/// The batch-mode panic backstop: like [`catching`], but vectored — a
/// panic mid-batch yields an `ERR internal` ack for every record (which
/// records applied is unknowable past a panic; the engine state is
/// unspecified either way, and the acks tell the client to recover).
pub(crate) fn batch_backstop<F>(specs: &[TaskSpec], f: F) -> Vec<BatchAck>
where
    F: FnOnce() -> Vec<BatchAck>,
{
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(acks) => acks,
        Err(_) => specs
            .iter()
            .map(|_| BatchAck::rejected(ErrCode::Internal, "request handler panicked"))
            .collect(),
    }
}

/// Executes a batched submission: per-record admission, one vectored ack.
/// Records are admitted in frame order under the shard's own serialization
/// — the same order contract as the equivalent sequence of text `SUBMIT`s.
fn execute_batch(specs: &[TaskSpec], shared: &Shared) -> Vec<BatchAck> {
    let start = telemetry::clock_start();
    let acks: Vec<BatchAck> = specs
        .iter()
        .map(|spec| {
            if !(spec.device_pos.x.is_finite()
                && spec.device_pos.y.is_finite()
                && spec.device_facing.radians().is_finite())
            {
                BatchAck::rejected(ErrCode::BadTask, "non-finite position/facing")
            } else {
                match shared.shard.submit(*spec) {
                    Ok((id, release)) => BatchAck::Ok {
                        task: u64::from(id.0),
                        release: release as u64,
                    },
                    Err(e) => {
                        let (code, message) = shard_err_parts(e);
                        BatchAck::Err {
                            code: code.as_str().to_string(),
                            message,
                        }
                    }
                }
            }
        })
        .collect();
    let rejected = acks
        .iter()
        .filter(|ack| matches!(ack, BatchAck::Err { .. }))
        .count();
    shared
        .telemetry
        .observe_batch(specs.len(), rejected, telemetry::elapsed_us(start));
    acks
}

/// Parses and executes one request; returns the reply and whether the
/// connection should close.
///
/// Execution runs under [`catching`]: a panic anywhere in a handler (or in
/// the engine underneath it) becomes a structured `ERR internal` reply
/// instead of killing the connection loop. That is a backstop, not a
/// license — lint rule P1 keeps panicking constructs out of this file.
fn dispatch<R: BufRead>(
    line: &str,
    reader: &mut R,
    shared: &Shared,
) -> std::io::Result<(Reply, bool)> {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(reason) => {
            shared.telemetry.count_error(ErrCode::BadRequest);
            return Ok((Reply::Err(ErrCode::BadRequest, reason), false));
        }
    };
    let opcode = request.opcode();
    let start = telemetry::clock_start();
    let result = catching(AssertUnwindSafe(|| execute(request, reader, shared)));
    if let Ok((reply, _)) = &result {
        shared
            .telemetry
            .observe_request(opcode, telemetry::elapsed_us(start), reply);
    }
    result
}

/// Runs one request handler, converting a panic into an `ERR internal`
/// reply carrying the panic message. The engine mutex (parking_lot, no
/// poisoning) unlocks during unwind, so the daemon keeps serving; a panic
/// mid-mutation can leave the engine in an unspecified (still
/// memory-safe) state, which the reply tells the client to `RESTORE` away.
pub(crate) fn catching<F>(f: F) -> std::io::Result<(Reply, bool)>
where
    F: FnOnce() -> std::io::Result<(Reply, bool)> + std::panic::UnwindSafe,
{
    match catch_unwind(f) {
        Ok(result) => result,
        Err(payload) => {
            let context = if let Some(s) = payload.downcast_ref::<&str>() {
                s
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.as_str()
            } else {
                "non-string panic payload"
            };
            Ok((
                Reply::Err(
                    ErrCode::Internal,
                    format!("request handler panicked: {context}"),
                ),
                false,
            ))
        }
    }
}

/// Maps a structured shard failure onto the wire error space.
pub(crate) fn shard_err(e: ShardError) -> Reply {
    let (code, message) = shard_err_parts(e);
    Reply::Err(code, message)
}

/// The code/message pair of [`shard_err`], for emitters that frame the
/// error themselves (the batch-submit ack path).
pub(crate) fn shard_err_parts(e: ShardError) -> (ErrCode, String) {
    let code = match &e {
        ShardError::NoScenario => ErrCode::NoScenario,
        ShardError::AlreadyLoaded => ErrCode::AlreadyLoaded,
        ShardError::AtHorizon => ErrCode::AtHorizon,
        ShardError::BadScenario(_) => ErrCode::BadRequest,
        ShardError::BadSnapshot(_) => ErrCode::BadSnapshot,
        ShardError::Admit(AdmitError::Backpressure { .. }) => ErrCode::Overload,
        ShardError::Admit(AdmitError::Closed) => ErrCode::AtHorizon,
        ShardError::Admit(AdmitError::BadTask(_)) => ErrCode::BadTask,
    };
    (code, e.to_string())
}

/// Formats the HELLO reply shared by the daemon and the router: version
/// negotiation plus (for v2) the shard topology advertisement.
pub(crate) fn hello_reply(version: &str, shards: usize, cells: (usize, usize)) -> Reply {
    if version == VERSION {
        Reply::Ok(format!("haste-service {VERSION}"))
    } else if version == VERSION_V2 || version == VERSION_V3 {
        // v3 advertises the same topology; the caller switches the
        // connection to binary frames after writing this (text) greeting.
        Reply::Ok(format!(
            "haste-service {version} shards={shards} cells={}x{}",
            cells.0, cells.1
        ))
    } else {
        Reply::Err(
            ErrCode::Version,
            format!(
                "unsupported version `{version}` (this daemon speaks {VERSION}, {VERSION_V2} and {VERSION_V3})"
            ),
        )
    }
}

/// Formats one `SHARDS?` payload line. Shared with the router so both
/// emitters stay field-compatible. `health`/`restarts`/`replay` come from
/// the out-of-process supervisor; in-process shards report `up 0 0`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn shard_line(
    index: usize,
    cell: (usize, usize),
    status: &crate::shard::ShardStatus,
    health: ShardHealth,
    restarts: u64,
    replay: u64,
    tenant: &str,
    map_version: u64,
) -> String {
    format!(
        "shard={index} cell={},{} slot={} open={} tasks={} staged={} admitted={} rejected={} pending={} health={} restarts={restarts} replay={replay} tenant={tenant} map={map_version}\n",
        cell.0,
        cell.1,
        status.clock,
        u8::from(status.open),
        status.tasks,
        status.staged,
        status.admitted,
        status.rejected,
        status.pending,
        health.as_str()
    )
}

/// Formats a `PARTS?` payload: one `full relaxed` pair per task, in
/// task-id (= arrival) order, shortest-roundtrip floats. Shared by the
/// daemon and the router (which re-merges shard streams by arrival order).
pub(crate) fn parts_payload(parts: &crate::shard::UtilityParts) -> String {
    let mut payload = String::new();
    for (full, relaxed) in parts.full.iter().zip(&parts.relaxed) {
        payload.push_str(&format!("{full} {relaxed}\n"));
    }
    payload
}

/// Executes one parsed request; returns the reply and whether the
/// connection should close.
fn execute<R: BufRead>(
    request: Request,
    reader: &mut R,
    shared: &Shared,
) -> std::io::Result<(Reply, bool)> {
    let reply = match request {
        Request::Hello(version) => hello_reply(&version, 1, (1, 1)),
        Request::Load(count) => {
            let Some(payload) = read_payload(reader, count, &shared.shutdown)? else {
                return Ok((
                    Reply::Err(ErrCode::BadRequest, "truncated LOAD payload".to_string()),
                    true,
                ));
            };
            match shared.shard.load_text(&payload) {
                Ok(info) => Reply::Ok(format!(
                    "chargers={} staged={} slots={}",
                    info.chargers, info.staged, info.slots
                )),
                Err(e) => shard_err(e),
            }
        }
        Request::Submit {
            x,
            y,
            facing,
            end_slot,
            energy,
            weight,
        } => {
            if !(x.is_finite() && y.is_finite() && facing.is_finite()) {
                Reply::Err(ErrCode::BadTask, "non-finite position/facing".to_string())
            } else {
                let spec = TaskSpec {
                    device_pos: Vec2::new(x, y),
                    device_facing: Angle::from_radians(facing),
                    end_slot,
                    required_energy: energy,
                    weight,
                };
                match shared.shard.submit(spec) {
                    Ok((id, release)) => Reply::Ok(format!("task={} release={release}", id.0)),
                    Err(e) => shard_err(e),
                }
            }
        }
        Request::Tick(n) => match shared.shard.tick(n) {
            Ok((slot, open)) => Reply::Ok(format!("slot={slot} open={}", u8::from(open))),
            Err(e) => shard_err(e),
        },
        Request::Clock => match shared.shard.clock() {
            Ok((slot, open)) => Reply::Ok(format!("slot={slot} open={}", u8::from(open))),
            Err(e) => shard_err(e),
        },
        Request::Schedule => match shared.shard.schedule_text() {
            Ok(text) => Reply::Data(text),
            Err(e) => shard_err(e),
        },
        Request::Utility => match shared.shard.utility() {
            Ok((utility, relaxed)) => Reply::Ok(format!("utility={utility} relaxed={relaxed}")),
            Err(e) => shard_err(e),
        },
        Request::Parts => match shared.shard.utility_parts() {
            Ok(parts) => Reply::Data(parts_payload(&parts)),
            Err(e) => shard_err(e),
        },
        Request::Export => {
            // The typed registry plus the engine-alias projection of the
            // current status (absent before `LOAD` — a fresh daemon still
            // exposes its request metrics).
            let snap = shared.telemetry.export(shared.shard.status().ok().as_ref());
            Reply::Data(snap.render())
        }
        Request::Metrics => match shared.shard.status() {
            Err(e) => shard_err(e),
            Ok(status) => {
                let mut payload = String::new();
                for (key, value) in [
                    ("clock", status.clock.to_string()),
                    ("tasks", status.tasks.to_string()),
                    ("staged", status.staged.to_string()),
                    ("admitted", status.admitted.to_string()),
                    ("rejected", status.rejected.to_string()),
                    ("pending", status.pending.to_string()),
                    ("threads", status.threads.to_string()),
                    ("oracle_marginals", status.oracle_marginals.to_string()),
                    ("oracle_commits", status.oracle_commits.to_string()),
                    ("messages", status.messages.to_string()),
                    ("rounds", status.rounds.to_string()),
                    ("instance_build_us", status.instance_build_us.to_string()),
                    ("greedy_us", status.greedy_us.to_string()),
                    ("rounding_us", status.rounding_us.to_string()),
                    ("coverage_build_us", status.coverage_build_us.to_string()),
                    // Supervisor counters: the single-engine daemon has no
                    // child processes, so these are identically zero; the
                    // router reports live values under the same keys.
                    ("shard_restarts", 0.to_string()),
                    ("shard_replays", 0.to_string()),
                    ("shards_down", 0.to_string()),
                ] {
                    payload.push_str(key);
                    payload.push(' ');
                    payload.push_str(&value);
                    payload.push('\n');
                }
                Reply::Data(payload)
            }
        },
        Request::Shards => match shared.shard.status() {
            Err(e) => shard_err(e),
            // The single-engine daemon is its own one-shard topology:
            // fixed default tenant, routing map version 0 (never swapped).
            Ok(status) => Reply::Data(shard_line(
                0,
                (0, 0),
                &status,
                ShardHealth::Up,
                0,
                0,
                "default",
                0,
            )),
        },
        Request::Snapshot => match shared.shard.snapshot() {
            Ok(text) => Reply::Data(text),
            Err(e) => shard_err(e),
        },
        Request::Restore(count) => {
            let Some(payload) = read_payload(reader, count, &shared.shutdown)? else {
                return Ok((
                    Reply::Err(ErrCode::BadRequest, "truncated RESTORE payload".to_string()),
                    true,
                ));
            };
            match shared.shard.restore_text(&payload) {
                Ok(info) => Reply::Ok(format!("slot={} open={}", info.clock, u8::from(info.open))),
                Err(e) => shard_err(e),
            }
        }
        // The single-engine daemon serves exactly one tenant. Selecting it
        // is a no-op (so v1 clients written against a router still work);
        // any other id names state this process does not hold.
        Request::Tenant { id, .. } => {
            if id == "default" {
                Reply::Ok("tenant=default".to_string())
            } else {
                Reply::Err(
                    ErrCode::UnknownTenant,
                    format!("tenant `{id}` does not exist on a single-engine daemon"),
                )
            }
        }
        Request::ReshardSplit(_) | Request::ReshardMerge(..) => Reply::Err(
            ErrCode::BadRequest,
            "RESHARD requires a router (single-engine daemon has no cells)".to_string(),
        ),
        Request::Bye => return Ok((Reply::Ok("bye".to_string()), true)),
    };
    Ok((reply, false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_shared() -> Shared {
        Shared {
            shard: Shard::new(OnlineConfig::default(), 4),
            shutdown: AtomicBool::new(false),
            telemetry: Telemetry::new(),
        }
    }

    #[test]
    fn a_panicking_handler_becomes_err_internal() {
        let result = catching(AssertUnwindSafe(|| -> std::io::Result<(Reply, bool)> {
            panic!("boom {}", 42)
        }));
        let (reply, close) = result.expect("catching never returns Err for a panic");
        assert!(!close, "a caught panic must keep the connection open");
        match reply {
            Reply::Err(code, message) => {
                assert_eq!(code, ErrCode::Internal);
                assert!(message.contains("boom 42"), "lost panic context: {message}");
            }
            other => panic!("expected ERR internal, got {other:?}"),
        }
    }

    #[test]
    fn static_panic_payloads_keep_their_message() {
        let result = catching(AssertUnwindSafe(|| -> std::io::Result<(Reply, bool)> {
            panic!("static payload")
        }));
        let (reply, _) = result.expect("catching never returns Err for a panic");
        match reply {
            Reply::Err(ErrCode::Internal, message) => {
                assert!(message.contains("static payload"), "{message}");
            }
            other => panic!("expected ERR internal, got {other:?}"),
        }
    }

    #[test]
    fn dispatch_replies_structurally_off_a_socketless_reader() {
        let shared = fresh_shared();
        let mut reader = std::io::Cursor::new(Vec::<u8>::new());
        let (reply, close) = dispatch("NOPE 1 2", &mut reader, &shared).unwrap();
        assert!(matches!(reply, Reply::Err(ErrCode::BadRequest, _)));
        assert!(!close);
        let (reply, close) = dispatch("SNAPSHOT", &mut reader, &shared).unwrap();
        assert!(matches!(reply, Reply::Err(ErrCode::NoScenario, _)));
        assert!(!close);
        // A truncated LOAD payload is the one bad-request that also closes
        // the connection: the stream is desynchronized beyond recovery.
        let (reply, close) = dispatch("LOAD 3", &mut reader, &shared).unwrap();
        assert!(matches!(reply, Reply::Err(ErrCode::BadRequest, _)));
        assert!(close);
    }

    #[test]
    fn hello_negotiates_every_version() {
        match hello_reply("v1", 1, (1, 1)) {
            Reply::Ok(message) => assert_eq!(message, "haste-service v1"),
            other => panic!("expected OK, got {other:?}"),
        }
        match hello_reply("v2", 4, (2, 2)) {
            Reply::Ok(message) => assert_eq!(message, "haste-service v2 shards=4 cells=2x2"),
            other => panic!("expected OK, got {other:?}"),
        }
        match hello_reply("v3", 4, (2, 2)) {
            Reply::Ok(message) => assert_eq!(message, "haste-service v3 shards=4 cells=2x2"),
            other => panic!("expected OK, got {other:?}"),
        }
        assert!(matches!(
            hello_reply("v4", 1, (1, 1)),
            Reply::Err(ErrCode::Version, _)
        ));
    }

    #[test]
    fn export_renders_parseable_exposition_with_request_counts() {
        let shared = fresh_shared();
        let mut reader = std::io::Cursor::new(Vec::<u8>::new());
        let (reply, _) = dispatch("CLOCK?", &mut reader, &shared).unwrap();
        assert!(matches!(reply, Reply::Err(ErrCode::NoScenario, _)));
        let (reply, _) = dispatch("EXPORT?", &mut reader, &shared).unwrap();
        let payload = match reply {
            Reply::Data(payload) => payload,
            other => panic!("expected DATA, got {other:?}"),
        };
        let snap = haste_metrics::Snapshot::parse(&payload)
            .unwrap_or_else(|e| panic!("exposition must parse: {e}"));
        match snap.get("haste_service_requests_total", &[("opcode", "CLOCK?")]) {
            Some(haste_metrics::Value::Counter(n)) => assert_eq!(*n, 1),
            other => panic!("expected CLOCK? counter, got {other:?}"),
        }
        match snap.get("haste_service_errors_total", &[("err_code", "no-scenario")]) {
            Some(haste_metrics::Value::Counter(n)) => assert_eq!(*n, 1),
            other => panic!("expected no-scenario counter, got {other:?}"),
        }
    }

    #[test]
    fn shards_query_reports_the_single_engine_as_shard_zero() {
        let shared = fresh_shared();
        let mut reader = std::io::Cursor::new(Vec::<u8>::new());
        let (reply, _) = dispatch("SHARDS?", &mut reader, &shared).unwrap();
        assert!(matches!(reply, Reply::Err(ErrCode::NoScenario, _)));
        let scenario = "params 10000 40 20 1 1\ngrid 60 6\ndelays 0.083333 1\n\
                        charger 0 0 0\ntask 0 8 0 3.14159 0 6 500 1";
        shared.shard.load_text(scenario).unwrap();
        let (reply, _) = dispatch("SHARDS?", &mut reader, &shared).unwrap();
        match reply {
            Reply::Data(payload) => {
                assert!(
                    payload.starts_with("shard=0 cell=0,0 slot=0 open=1"),
                    "{payload}"
                );
                assert!(
                    payload
                        .trim_end()
                        .ends_with("health=up restarts=0 replay=0 tenant=default map=0"),
                    "{payload}"
                );
            }
            other => panic!("expected DATA, got {other:?}"),
        }
    }
}
