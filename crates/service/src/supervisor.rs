//! Child-process shard supervision for the out-of-process router.
//!
//! With [`crate::RouterConfig::process`] set, the router does not own its
//! engines in-process: each cell's [`Shard`] lives in a spawned
//! `haste-shardd` child daemon, reached over localhost TCP through the
//! same wire protocol clients speak. This module owns that machinery:
//!
//! * [`resolve_shardd`] / `Launcher` — locating and spawning children
//!   (piped stdin keeps the child alive; closing it on supervisor exit is
//!   the orphan guard),
//! * [`RemoteShard`] — one supervised child: a [`Client`] connection with
//!   a per-request deadline, crash detection (EOF/timeout/reset/exit),
//!   and the restart machinery,
//! * [`FaultPlan`] — a deterministic, seedless schedule of injected
//!   failures (`kill`, `stall`, `drop-conn`) so chaos runs reproduce,
//! * [`ShardSlot`] — the router's uniform view over in-process and
//!   out-of-process shards.
//!
//! **Failure policy.** The protocol has non-idempotent requests (`SUBMIT`,
//! `TICK`): when a reply is lost the supervisor cannot know whether the
//! child applied the request. It never guesses — any transport failure
//! (timeout, reset, EOF, refused reconnect) kills the child outright and
//! marks the shard down. Recovery rebuilds the child from its last
//! **baseline** (the `LOAD` scenario, or the engine snapshot of the last
//! committed `SNAPSHOT`) plus the **journal** of operations the router has
//! *acked* since: submits that got a structured reply, and one `TICK` per
//! closed slot (including slots closed while the shard was down). Because
//! the engine is bit-deterministic, replaying exactly the acked sequence
//! reconstructs exactly the state the router believes the shard has — the
//! in-flight request that triggered the failure is not in the journal, so
//! it is dropped on both sides, and its submitter saw an error.
//!
//! **Concurrency.** Every [`RemoteShard`] method takes `&self` and
//! serializes through the shard's own mutex, so the router's pipelined
//! lockstep (protocol v3) may issue `tick1` to *different* children
//! concurrently: each request still runs under its own per-request
//! deadline, and nothing is shared across children but the launcher
//! configuration. The consistent-cut argument lives at the call site
//! ([`crate::serve_router`]'s tick) — the supervisor's only contract here
//! is that a shard's journal and connection are never touched by two
//! requests at once.

use std::collections::BTreeSet;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::Duration;

use haste_distributed::{OnlineConfig, TaskSpec};
use haste_model::{Scenario, Schedule, TaskId};
use parking_lot::Mutex;

use crate::client::{Client, ClientError};
use crate::proto::ErrCode;
use crate::shard::{Shard, ShardError, ShardHealth, ShardStatus, UtilityParts};
use crate::telemetry::SupervisorCounters;

/// Default per-request deadline on supervisor → child calls. Generous —
/// a negotiation round on a loaded cell can be slow — but finite, so a
/// hung child is detected and restarted instead of freezing the router.
pub const DEFAULT_SHARD_DEADLINE: Duration = Duration::from_secs(30);

/// Out-of-process shard deployment settings (see
/// [`crate::RouterConfig::process`]).
#[derive(Debug, Clone, Default)]
pub struct ProcessShardConfig {
    /// Path to the `haste-shardd` binary. `None` resolves via the
    /// `HASTE_SHARDD` environment variable, then a sibling of the current
    /// executable (see [`resolve_shardd`]).
    pub shardd: Option<PathBuf>,
    /// Per-request deadline on supervisor → child calls; `None` uses
    /// [`DEFAULT_SHARD_DEADLINE`]. A request exceeding it counts as a
    /// crash: the child is killed and restarted from baseline + journal.
    pub deadline: Option<Duration>,
    /// Deterministic fault-injection schedule, for chaos testing.
    pub fault_plan: Option<FaultPlan>,
}

impl ProcessShardConfig {
    /// The effective per-request deadline.
    pub fn effective_deadline(&self) -> Duration {
        match self.deadline {
            Some(deadline) => deadline,
            None => DEFAULT_SHARD_DEADLINE,
        }
    }
}

/// Locates the `haste-shardd` binary: an explicit path wins, then the
/// `HASTE_SHARDD` environment variable, then a sibling of the current
/// executable (with cargo's `deps/` directory normalized away, so test
/// binaries resolve the workspace target directory).
pub fn resolve_shardd(explicit: Option<&Path>) -> std::io::Result<PathBuf> {
    if let Some(path) = explicit {
        return Ok(path.to_path_buf());
    }
    if let Ok(path) = std::env::var("HASTE_SHARDD") {
        if !path.is_empty() {
            return Ok(PathBuf::from(path));
        }
    }
    let exe = std::env::current_exe()?;
    let mut dir = match exe.parent() {
        Some(parent) => parent.to_path_buf(),
        None => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "current executable has no parent directory",
            ))
        }
    };
    if dir.file_name().map(|name| name == "deps") == Some(true) {
        if let Some(parent) = dir.parent() {
            dir = parent.to_path_buf();
        }
    }
    let candidate = dir.join(format!("haste-shardd{}", std::env::consts::EXE_SUFFIX));
    if candidate.is_file() {
        Ok(candidate)
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "haste-shardd not found at {} (pass an explicit path or set HASTE_SHARDD)",
                candidate.display()
            ),
        ))
    }
}

/// Locates the `routerd` binary for drivers that spawn (and kill, and
/// respawn) the router as a subprocess — the `kill-router` chaos path.
/// Resolution mirrors [`resolve_shardd`]: an explicit path wins, then
/// the `HASTE_ROUTERD` environment variable, then a sibling of the
/// current executable.
pub fn resolve_routerd(explicit: Option<&Path>) -> std::io::Result<PathBuf> {
    if let Some(path) = explicit {
        return Ok(path.to_path_buf());
    }
    if let Ok(path) = std::env::var("HASTE_ROUTERD") {
        if !path.is_empty() {
            return Ok(PathBuf::from(path));
        }
    }
    let exe = std::env::current_exe()?;
    let mut dir = match exe.parent() {
        Some(parent) => parent.to_path_buf(),
        None => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "current executable has no parent directory",
            ))
        }
    };
    if dir.file_name().map(|name| name == "deps") == Some(true) {
        if let Some(parent) = dir.parent() {
            dir = parent.to_path_buf();
        }
    }
    let candidate = dir.join(format!("routerd{}", std::env::consts::EXE_SUFFIX));
    if candidate.is_file() {
        Ok(candidate)
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "routerd not found at {} (pass an explicit path or set HASTE_ROUTERD)",
                candidate.display()
            ),
        ))
    }
}

// ----------------------------------------------------------------------
// Fault plans
// ----------------------------------------------------------------------

/// What a fault directive does when it matures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultKind {
    /// Kill the child process outright (crash simulation).
    Kill,
    /// The next `n` requests to this shard behave as expired deadlines.
    Stall(u64),
    /// Drop the supervisor's connection once; the child stays alive and
    /// the next request reconnects transparently.
    DropConn,
}

/// One scheduled fault: `kind` matures on `cell` when the router clock
/// reaches `at_slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Directive {
    pub(crate) cell: usize,
    pub(crate) at_slot: usize,
    pub(crate) kind: FaultKind,
}

/// A deterministic schedule of injected shard faults, parsed from the
/// `--fault-plan` file format:
///
/// ```text
/// # comments and blank lines are ignored
/// kill 1 @6           # kill cell 1's child when slot 6 opens
/// stall 0 for 2 @3    # cell 0's next 2 requests time out, from slot 3
/// drop-conn 0 @2      # drop the connection to cell 0 once, at slot 2
/// kill-router @16     # kill the whole routerd process at slot 16
/// ```
///
/// `stall`/`drop-conn` default to slot 0 when `@slot` is omitted. Faults
/// mature when the router clock reaches their slot — immediately after
/// `LOAD` for slot 0, otherwise at the `TICK` that opens the slot — so a
/// plan is reproducible bit for bit across runs.
///
/// `kill-router` is different in kind: it targets the router process
/// itself, not a shard child, and is executed by the *driver* (loadgen
/// kills its `routerd` subprocess at the named slot's post-tick barrier
/// and respawns it, exercising WAL crash recovery). The router ignores
/// these directives; they never appear in [`FaultPlan::cells`] and never
/// count toward [`FaultPlan::expects_restarts`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    directives: Vec<Directive>,
    router_kills: Vec<usize>,
}

impl FaultPlan {
    /// Parses the fault-plan grammar; errors name the offending line.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut directives = Vec::new();
        let mut router_kills = Vec::new();
        for (index, raw) in text.lines().enumerate() {
            let line = match raw.split('#').next() {
                Some(code) => code.trim(),
                None => "",
            };
            if line.is_empty() {
                continue;
            }
            let number = index + 1;
            let fields: Vec<&str> = line.split_whitespace().collect();
            if let ["kill-router", at] = fields.as_slice() {
                router_kills.push(slot_token(at, number)?);
                continue;
            }
            let directive = match fields.as_slice() {
                ["kill", cell, at] => Directive {
                    cell: cell_token(cell, number)?,
                    at_slot: slot_token(at, number)?,
                    kind: FaultKind::Kill,
                },
                ["stall", cell, "for", count] => Directive {
                    cell: cell_token(cell, number)?,
                    at_slot: 0,
                    kind: FaultKind::Stall(count_token(count, number)?),
                },
                ["stall", cell, "for", count, at] => Directive {
                    cell: cell_token(cell, number)?,
                    at_slot: slot_token(at, number)?,
                    kind: FaultKind::Stall(count_token(count, number)?),
                },
                ["drop-conn", cell] => Directive {
                    cell: cell_token(cell, number)?,
                    at_slot: 0,
                    kind: FaultKind::DropConn,
                },
                ["drop-conn", cell, at] => Directive {
                    cell: cell_token(cell, number)?,
                    at_slot: slot_token(at, number)?,
                    kind: FaultKind::DropConn,
                },
                _ => {
                    return Err(format!(
                        "fault plan line {number}: `{line}` (expected `kill <cell> @<slot>`, \
                         `stall <cell> for <n> [@<slot>]`, `drop-conn <cell> [@<slot>]`, \
                         or `kill-router @<slot>`)"
                    ))
                }
            };
            directives.push(directive);
        }
        router_kills.sort_unstable();
        router_kills.dedup();
        Ok(FaultPlan {
            directives,
            router_kills,
        })
    }

    /// The cells any directive targets — the cells whose state a chaos
    /// run may perturb (loadgen compares the *other* cells bitwise).
    pub fn cells(&self) -> BTreeSet<usize> {
        self.directives.iter().map(|d| d.cell).collect()
    }

    /// Whether the plan has no directives (shard faults or router kills).
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty() && self.router_kills.is_empty()
    }

    /// Whether the plan carries any *shard* fault directive (`kill`,
    /// `stall`, `drop-conn`). Drivers that execute `kill-router` forbid
    /// mixing the two: a shard fault in flight while the router dies
    /// would make the post-recovery comparison ill-defined.
    pub fn has_shard_faults(&self) -> bool {
        !self.directives.is_empty()
    }

    /// The slots at which the *driver* must kill and respawn the router
    /// process (`kill-router @<slot>` directives), sorted and deduped.
    pub fn router_kills(&self) -> &[usize] {
        &self.router_kills
    }

    /// The latest slot any directive matures at (`None` when empty).
    /// Chaos drivers check it against the horizon: a fault maturing at or
    /// after the final slot leaves no tick in which the shard can rejoin
    /// (nor, for `kill-router`, any slot in which the respawned router
    /// can be observed making progress).
    pub fn latest_slot(&self) -> Option<usize> {
        self.directives
            .iter()
            .map(|d| d.at_slot)
            .chain(self.router_kills.iter().copied())
            .max()
    }

    /// Whether any directive forces a child restart (`kill` or `stall`).
    /// A `drop-conn`-only plan exercises transparent reconnection and
    /// never restarts anything, so chaos harnesses must not demand a
    /// restart count from it.
    pub fn expects_restarts(&self) -> bool {
        self.directives
            .iter()
            .any(|d| !matches!(d.kind, FaultKind::DropConn))
    }

    /// The directives targeting one cell.
    pub(crate) fn for_cell(&self, cell: usize) -> Vec<Directive> {
        self.directives
            .iter()
            .filter(|d| d.cell == cell)
            .copied()
            .collect()
    }
}

fn cell_token(token: &str, line: usize) -> Result<usize, String> {
    token
        .parse()
        .map_err(|_| format!("fault plan line {line}: bad cell `{token}`"))
}

fn slot_token(token: &str, line: usize) -> Result<usize, String> {
    match token.strip_prefix('@') {
        Some(digits) => digits
            .parse()
            .map_err(|_| format!("fault plan line {line}: bad slot `{token}`")),
        None => Err(format!(
            "fault plan line {line}: expected `@<slot>`, got `{token}`"
        )),
    }
}

fn count_token(token: &str, line: usize) -> Result<u64, String> {
    match token.parse() {
        Ok(count) if count > 0 => Ok(count),
        _ => Err(format!(
            "fault plan line {line}: bad request count `{token}`"
        )),
    }
}

// ----------------------------------------------------------------------
// Child processes
// ----------------------------------------------------------------------

/// Everything needed to (re)spawn one shard child. Cloned per shard so a
/// restart reuses the exact original command line.
#[derive(Debug, Clone)]
pub(crate) struct Launcher {
    program: PathBuf,
    args: Vec<String>,
    deadline: Duration,
}

impl Launcher {
    /// Builds the child command line from the router's scheduling
    /// configuration (the child must create engines bit-identical to the
    /// in-process shards it replaces).
    pub(crate) fn new(
        program: PathBuf,
        scheduling: &OnlineConfig,
        max_pending: usize,
        deadline: Duration,
    ) -> Launcher {
        let engine = match scheduling.engine {
            haste_distributed::EngineKind::Rounds => "rounds",
            haste_distributed::EngineKind::Threaded => "threaded",
        };
        let args = vec![
            "--addr".to_string(),
            "127.0.0.1:0".to_string(),
            "--workers".to_string(),
            "4".to_string(),
            "--max-pending".to_string(),
            max_pending.to_string(),
            "--colors".to_string(),
            scheduling.negotiation.colors.to_string(),
            "--samples".to_string(),
            scheduling.negotiation.samples.to_string(),
            "--seed".to_string(),
            scheduling.negotiation.seed.to_string(),
            "--engine".to_string(),
            engine.to_string(),
            "--localized".to_string(),
            u8::from(scheduling.localized).to_string(),
            "--threads".to_string(),
            scheduling.threads.to_string(),
        ];
        Launcher {
            program,
            args,
            deadline,
        }
    }

    /// Spawns a child, reads its `shardd listening on <addr>` greeting,
    /// and connects with the per-request deadline applied.
    fn spawn(&self) -> Result<(ChildProc, Client), String> {
        let mut child = Command::new(&self.program)
            .args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawning {}: {e}", self.program.display()))?;
        let stdin = child.stdin.take();
        let greeting = match child.stdout.take() {
            Some(stdout) => {
                let mut reader = std::io::BufReader::new(stdout);
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) => Err("child exited before greeting".to_string()),
                    Ok(_) => Ok(line),
                    Err(e) => Err(format!("reading child greeting: {e}")),
                }
            }
            None => Err("child stdout was not captured".to_string()),
        };
        let line = match greeting {
            Ok(line) => line,
            Err(reason) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(reason);
            }
        };
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .and_then(|token| token.parse::<SocketAddr>().ok());
        let Some(addr) = addr else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(format!("bad child greeting `{}`", line.trim()));
        };
        let mut process = ChildProc {
            child,
            addr,
            _stdin: stdin,
        };
        let connected = Client::connect(addr)
            .and_then(|mut conn| conn.set_timeout(Some(self.deadline)).map(|()| conn));
        match connected {
            Ok(conn) => Ok((process, conn)),
            Err(e) => {
                process.kill();
                Err(format!("connecting to child at {addr}: {e}"))
            }
        }
    }
}

/// A running child: the process handle, its advertised listen address,
/// and the piped stdin whose closure tells the child to exit (the orphan
/// guard: if the supervisor dies, the pipe closes and the child follows).
struct ChildProc {
    child: Child,
    addr: SocketAddr,
    _stdin: Option<ChildStdin>,
}

impl ChildProc {
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ChildProc {
    fn drop(&mut self) {
        self.kill();
    }
}

// ----------------------------------------------------------------------
// Supervised remote shards
// ----------------------------------------------------------------------

/// Why a shard operation failed, across both deployment modes.
#[derive(Debug)]
pub(crate) enum SlotError {
    /// A structured in-process shard failure.
    Shard(ShardError),
    /// A structured error the child daemon replied with; passed through
    /// to the router's client unchanged.
    Remote { code: ErrCode, message: String },
    /// The shard owning `cell` is down or recovering.
    Unavailable { cell: usize, detail: String },
}

/// Maps a child's wire error code back into the shared error space; an
/// unknown token (a newer child?) degrades to `internal`.
fn remote_err(code: &str, message: String) -> SlotError {
    match ErrCode::parse(code) {
        Some(code) => SlotError::Remote { code, message },
        None => SlotError::Remote {
            code: ErrCode::Internal,
            message: format!("unknown child error code `{code}`: {message}"),
        },
    }
}

/// The baseline a restarted child is rebuilt from, before journal replay.
enum Baseline {
    /// The cell's sub-scenario, as loaded (no snapshot committed yet).
    Scenario(Box<Scenario>),
    /// The cell's engine snapshot from the last committed `SNAPSHOT`.
    Snapshot(String),
}

/// One acked operation to replay after the baseline.
enum JournalOp {
    /// A submission the child gave a structured reply for (admitted *or*
    /// rejected — rejections are replayed so admission counters and
    /// backpressure state reproduce exactly).
    Submit(TaskSpec),
    /// One closed slot — acked, or missed while the shard was down.
    Tick,
}

/// Supervised state of one out-of-process shard.
struct RemoteInner {
    launcher: Launcher,
    child: Option<ChildProc>,
    conn: Option<Client>,
    /// `Some(reason)` while down; cleared by a successful rejoin.
    down: Option<String>,
    /// Fault directives not yet matured.
    pending: Vec<Directive>,
    stall_budget: u64,
    pending_drop: bool,
    restarts: u64,
    replayed: u64,
    baseline: Option<Baseline>,
    journal: Vec<JournalOp>,
    /// Last observed status, served while the shard is down.
    cached: ShardStatus,
    /// Per-cell fault counters in the router's metric registry.
    counters: SupervisorCounters,
}

/// One out-of-process shard: a supervised child daemon plus the baseline
/// and journal that make its death recoverable. All methods are `&self`
/// (interior mutex), mirroring [`Shard`].
pub(crate) struct RemoteShard {
    /// The cell this shard currently owns. Atomic because elastic
    /// resharding renumbers cells while other connections may be
    /// formatting error details that name this one.
    cell: std::sync::atomic::AtomicUsize,
    inner: Mutex<RemoteInner>,
}

impl RemoteShard {
    /// Spawns the child for `cell` and connects. Launch failure is fatal
    /// for router startup (there is no state to recover yet).
    pub(crate) fn launch(
        cell: usize,
        launcher: Launcher,
        faults: Vec<Directive>,
        counters: SupervisorCounters,
    ) -> std::io::Result<RemoteShard> {
        match launcher.spawn() {
            Ok((child, conn)) => Ok(RemoteShard {
                cell: std::sync::atomic::AtomicUsize::new(cell),
                inner: Mutex::new(RemoteInner {
                    launcher,
                    child: Some(child),
                    conn: Some(conn),
                    down: None,
                    pending: faults,
                    stall_budget: 0,
                    pending_drop: false,
                    restarts: 0,
                    replayed: 0,
                    baseline: None,
                    journal: Vec::new(),
                    cached: ShardStatus::default(),
                    counters,
                }),
            }),
            Err(reason) => Err(std::io::Error::other(format!("shard {cell}: {reason}"))),
        }
    }

    /// Renumbers the cell this shard owns (after a routing-map swap).
    pub(crate) fn set_cell(&self, cell: usize) {
        self.cell.store(cell, std::sync::atomic::Ordering::Relaxed);
    }

    /// Matures every fault directive scheduled at or before `clock`.
    pub(crate) fn apply_slot_faults(&self, clock: usize) {
        let mut locked = self.inner.lock();
        let inner = &mut *locked;
        let mut remaining = Vec::with_capacity(inner.pending.len());
        for directive in std::mem::take(&mut inner.pending) {
            if directive.at_slot > clock {
                remaining.push(directive);
                continue;
            }
            match directive.kind {
                FaultKind::Kill => {
                    let _ = self.fail(inner, "injected kill (fault plan)".to_string());
                }
                FaultKind::Stall(n) => inner.stall_budget += n,
                FaultKind::DropConn => inner.pending_drop = true,
            }
        }
        inner.pending = remaining;
    }

    /// Routes one submission to the child. Both outcomes with a
    /// structured reply are journaled (see [`JournalOp::Submit`]); a
    /// transport failure kills the child and drops the spec on both sides.
    pub(crate) fn submit(&self, spec: TaskSpec) -> Result<(TaskId, usize), SlotError> {
        let mut locked = self.inner.lock();
        let inner = &mut *locked;
        self.guard(inner)?;
        // haste-lint: allow(L2) — reconnect is bounded by the child deadline (armed before the greeting); the cell mutex must stay held so reconnect/request/journal stay atomic
        self.ensure_conn(inner)?;
        let outcome = match inner.conn.as_mut() {
            // haste-lint: allow(L2) — deadline-bounded child request; serializing this cell's request/journal sequence is the mutex's purpose
            Some(conn) => conn.submit(&spec),
            None => return Err(self.fail(inner, "no connection".to_string())),
        };
        match outcome {
            Ok(ok) => {
                inner.journal.push(JournalOp::Submit(spec));
                Ok(ok)
            }
            Err(ClientError::Server { code, message }) => {
                inner.journal.push(JournalOp::Submit(spec));
                Err(remote_err(&code, message))
            }
            Err(e) => Err(self.crash(inner, "SUBMIT", &e)),
        }
    }

    /// Closes one slot on the child; journals the tick on success.
    ///
    /// The pipelined lockstep calls this concurrently across *different*
    /// shards (one in-flight request per child, each under its own
    /// deadline); the per-shard mutex below is what keeps any single
    /// child's request/journal sequence serial.
    pub(crate) fn tick1(&self) -> Result<(usize, bool), SlotError> {
        let mut locked = self.inner.lock();
        let inner = &mut *locked;
        self.guard(inner)?;
        // haste-lint: allow(L2) — reconnect is bounded by the child deadline; the lockstep holds one cell mutex per in-flight tick, never two
        self.ensure_conn(inner)?;
        let outcome = match inner.conn.as_mut() {
            // haste-lint: allow(L2) — deadline-bounded TICK; the per-shard mutex is what keeps this child's request/journal sequence serial (see doc above)
            Some(conn) => conn.tick(1),
            None => return Err(self.fail(inner, "no connection".to_string())),
        };
        match outcome {
            Ok(ok) => {
                inner.journal.push(JournalOp::Tick);
                Ok(ok)
            }
            Err(ClientError::Server { code, message }) => Err(remote_err(&code, message)),
            Err(e) => Err(self.crash(inner, "TICK", &e)),
        }
    }

    /// Records a slot the router closed while this shard was down, so the
    /// rejoin replay advances the restarted child to the router's clock.
    pub(crate) fn note_missed_tick(&self) {
        self.inner.lock().journal.push(JournalOp::Tick);
    }

    /// The child's clock, per [`Shard::clock`].
    pub(crate) fn clock(&self) -> Result<(usize, bool), SlotError> {
        self.call("CLOCK?", |conn| conn.clock())
    }

    /// The child's schedule, per [`Shard::schedule`].
    pub(crate) fn schedule(&self) -> Result<Schedule, SlotError> {
        self.call("SCHEDULE?", |conn| conn.schedule())
    }

    /// The child's per-task utility terms, per [`Shard::utility_parts`].
    pub(crate) fn utility_parts(&self) -> Result<UtilityParts, SlotError> {
        self.call("PARTS?", |conn| conn.parts())
    }

    /// The child's engine snapshot, per [`Shard::snapshot`].
    pub(crate) fn snapshot(&self) -> Result<String, SlotError> {
        self.call("SNAPSHOT", |conn| conn.snapshot())
    }

    /// The child's metric exposition text (`EXPORT?`), for the router's
    /// bucket-wise cross-shard merge.
    pub(crate) fn export_document(&self) -> Result<String, SlotError> {
        self.call("EXPORT?", |conn| conn.export())
    }

    /// Sets the load baseline and pushes the sub-scenario to the child.
    /// A transport failure leaves the shard down with the baseline in
    /// place: the first `TICK`'s rejoin pass loads it into a fresh child.
    pub(crate) fn load_scenario(&self, cell: &Scenario) -> Result<(), SlotError> {
        let mut locked = self.inner.lock();
        let inner = &mut *locked;
        inner.baseline = Some(Baseline::Scenario(Box::new(cell.clone())));
        inner.journal.clear();
        self.guard(inner)?;
        // haste-lint: allow(L2) — deadline-bounded reconnect; baseline swap and child load must commit under one guard
        self.ensure_conn(inner)?;
        let outcome = match inner.conn.as_mut() {
            // haste-lint: allow(L2) — deadline-bounded LOAD; a concurrent request between baseline swap and load would observe a half-reset cell
            Some(conn) => conn.load(cell),
            None => return Err(self.fail(inner, "no connection".to_string())),
        };
        match outcome {
            Ok(()) => Ok(()),
            Err(ClientError::Server { code, message }) => Err(remote_err(&code, message)),
            Err(e) => Err(self.crash(inner, "LOAD", &e)),
        }
    }

    /// Sets the snapshot baseline and pushes it to the child. Any failure
    /// — transport *or* a structured rejection of a snapshot the router
    /// already validated — kills the child: the baseline is committed, so
    /// the rejoin pass rebuilds from it and no divergence can survive.
    pub(crate) fn restore_snapshot(&self, text: &str) {
        let mut locked = self.inner.lock();
        let inner = &mut *locked;
        inner.baseline = Some(Baseline::Snapshot(text.to_string()));
        inner.journal.clear();
        // haste-lint: allow(L2) — deadline-bounded reconnect; baseline swap and child restore must commit under one guard
        if self.guard(inner).is_err() || self.ensure_conn(inner).is_err() {
            return;
        }
        let outcome = match inner.conn.as_mut() {
            // haste-lint: allow(L2) — deadline-bounded RESTORE; divergence control requires no request lands between baseline swap and restore
            Some(conn) => conn.restore(text).map(|_| ()),
            None => {
                let _ = self.fail(inner, "no connection".to_string());
                return;
            }
        };
        if let Err(e) = outcome {
            let _ = self.crash(inner, "RESTORE", &e);
        }
    }

    /// Commits a checkpoint: the shard's engine snapshot from a completed
    /// composite `SNAPSHOT` becomes the new baseline and the journal
    /// empties (bounding future replay depth). Only called once *every*
    /// shard produced its section — a partially assembled composite must
    /// not move any baseline.
    pub(crate) fn checkpoint(&self, snapshot: String) {
        let mut inner = self.inner.lock();
        inner.baseline = Some(Baseline::Snapshot(snapshot));
        inner.journal.clear();
    }

    /// Restarts a down shard and replays baseline + journal. Returns
    /// whether the shard is up afterwards; on failure it stays down and
    /// the next rejoin pass retries.
    pub(crate) fn rejoin(&self, target_clock: usize) -> bool {
        let mut locked = self.inner.lock();
        let inner = &mut *locked;
        if inner.down.is_none() {
            return true;
        }
        inner.conn = None;
        inner.child = None; // drops (and reaps) any dead process
                            // haste-lint: allow(L2) — spawn's readiness read is bounded by the launcher deadline; rejoin must own the cell while rebuilding it
        let (child, mut conn) = match inner.launcher.spawn() {
            Ok(pair) => pair,
            Err(reason) => {
                inner.down = Some(format!("respawn: {reason}"));
                return false;
            }
        };
        // haste-lint: allow(L2) — every replayed request runs under the fresh child's deadline; the cell must stay owned until the rebuilt state is verified
        match replay_into(
            &mut conn,
            inner.baseline.as_ref(),
            &inner.journal,
            target_clock,
        ) {
            Ok(()) => {
                inner.restarts += 1;
                inner.replayed += inner.journal.len() as u64;
                inner.counters.restarts.inc();
                inner.counters.replays.add(inner.journal.len() as u64);
                inner.child = Some(child);
                inner.conn = Some(conn);
                inner.down = None;
                true
            }
            Err(reason) => {
                inner.down = Some(format!("replay: {reason}"));
                false
            }
        }
    }

    /// `(status, health, restarts, replayed)` — fetched fresh when the
    /// shard is up (and cached), the last observation while it is down.
    /// Infallible so `SHARDS?`/`METRICS?` keep answering in degraded mode.
    pub(crate) fn status_view(&self) -> (ShardStatus, ShardHealth, u64, u64) {
        let mut locked = self.inner.lock();
        let inner = &mut *locked;
        // haste-lint: allow(L2) — deadline-bounded reconnect; status must not interleave with a journaled request on the same cell
        if inner.down.is_none() && self.guard(inner).is_ok() && self.ensure_conn(inner).is_ok() {
            let fetched = match inner.conn.as_mut() {
                // haste-lint: allow(L2) — deadline-bounded STATUS?; a timeout downgrades to cached state instead of wedging METRICS?
                Some(conn) => fetch_status(conn),
                None => Err(ClientError::Protocol("no connection".to_string())),
            };
            match fetched {
                Ok(status) => inner.cached = status,
                // A structured error (nothing loaded yet) keeps the cache;
                // a transport failure is a crash like any other.
                Err(ClientError::Server { .. }) => {}
                Err(e) => {
                    let _ = self.crash(inner, "METRICS?", &e);
                }
            }
        }
        let health = if inner.down.is_some() {
            ShardHealth::Restarting
        } else if inner.restarts > 0 {
            ShardHealth::Degraded
        } else {
            ShardHealth::Up
        };
        (inner.cached, health, inner.restarts, inner.replayed)
    }

    /// Down/stall/drop gate shared by every request path.
    fn guard(&self, inner: &mut RemoteInner) -> Result<(), SlotError> {
        if let Some(reason) = inner.down.clone() {
            return Err(SlotError::Unavailable {
                cell: self.cell.load(std::sync::atomic::Ordering::Relaxed),
                detail: reason,
            });
        }
        if inner.stall_budget > 0 {
            inner.stall_budget -= 1;
            // An injected stall simulates an expired request deadline, so
            // it counts as one.
            inner.counters.deadlines.inc();
            return Err(self.fail(
                inner,
                "injected stall: request deadline expired".to_string(),
            ));
        }
        if inner.pending_drop {
            inner.pending_drop = false;
            inner.conn = None; // the next request reconnects transparently
        }
        Ok(())
    }

    /// Reconnects to a live child if the connection was dropped.
    fn ensure_conn(&self, inner: &mut RemoteInner) -> Result<(), SlotError> {
        if inner.conn.is_some() {
            return Ok(());
        }
        let addr = match &inner.child {
            Some(child) => child.addr,
            None => return Err(self.fail(inner, "child process not running".to_string())),
        };
        // The deadline is armed before the greeting: a child that accepts
        // but never greets (wedged mid-restart) must count as a crash,
        // not hang the supervisor.
        let connected = Client::connect_with_deadline(addr, Some(inner.launcher.deadline));
        match connected {
            Ok(conn) => {
                inner.conn = Some(conn);
                Ok(())
            }
            Err(e) => Err(self.fail(inner, format!("reconnect: {e}"))),
        }
    }

    /// Classifies a transport failure and declares the child dead. An
    /// expired per-request deadline (the timeout kind) is the
    /// supervisor's hang-detection signal and gets its own counter.
    fn crash(&self, inner: &mut RemoteInner, what: &str, e: &ClientError) -> SlotError {
        if matches!(e, ClientError::Timeout) {
            inner.counters.deadlines.inc();
        }
        self.fail(inner, format!("{what}: {e}"))
    }

    /// Declares the child dead: kills the process, drops the connection,
    /// and marks the shard down until a rejoin succeeds.
    fn fail(&self, inner: &mut RemoteInner, reason: String) -> SlotError {
        inner.conn = None;
        inner.child = None; // ChildProc::drop kills and reaps
        inner.down = Some(reason.clone());
        SlotError::Unavailable {
            cell: self.cell.load(std::sync::atomic::Ordering::Relaxed),
            detail: reason,
        }
    }

    /// One non-journaled request through the guard/reconnect/fail path.
    fn call<T>(
        &self,
        what: &str,
        request: impl FnOnce(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, SlotError> {
        let mut locked = self.inner.lock();
        let inner = &mut *locked;
        self.guard(inner)?;
        // haste-lint: allow(L2) — deadline-bounded reconnect; the guard/reconnect/fail sequence must be atomic per cell
        self.ensure_conn(inner)?;
        let outcome = match inner.conn.as_mut() {
            Some(conn) => request(conn),
            None => return Err(self.fail(inner, "no connection".to_string())),
        };
        match outcome {
            Ok(value) => Ok(value),
            Err(ClientError::Server { code, message }) => Err(remote_err(&code, message)),
            Err(e) => Err(self.crash(inner, what, &e)),
        }
    }
}

/// Rebuilds a fresh child from baseline + journal and verifies it landed
/// on the router's clock.
fn replay_into(
    conn: &mut Client,
    baseline: Option<&Baseline>,
    journal: &[JournalOp],
    target_clock: usize,
) -> Result<(), String> {
    match baseline {
        None => return Ok(()), // never loaded: a fresh empty child is the state
        Some(Baseline::Scenario(scenario)) => {
            conn.load(scenario)
                .map_err(|e| format!("baseline LOAD: {e}"))?;
        }
        Some(Baseline::Snapshot(text)) => {
            conn.restore(text)
                .map(|_| ())
                .map_err(|e| format!("baseline RESTORE: {e}"))?;
        }
    }
    for op in journal {
        match op {
            JournalOp::Submit(spec) => match conn.submit(spec) {
                Ok(_) => {}
                // A journaled rejection replays as the same deterministic
                // rejection; only transport failures abort the replay.
                Err(ClientError::Server { .. }) => {}
                Err(e) => return Err(format!("journal SUBMIT: {e}")),
            },
            JournalOp::Tick => {
                conn.tick(1).map_err(|e| format!("journal TICK: {e}"))?;
            }
        }
    }
    let (clock, _open) = conn
        .clock()
        .map_err(|e| format!("post-replay CLOCK?: {e}"))?;
    if clock != target_clock {
        return Err(format!(
            "replayed clock {clock} does not match router clock {target_clock}"
        ));
    }
    Ok(())
}

/// Assembles a full [`ShardStatus`] from a child's `METRICS?` and
/// `SHARDS?` replies.
fn fetch_status(conn: &mut Client) -> Result<ShardStatus, ClientError> {
    let metrics = conn.metrics()?;
    let value = |key: &str| -> u128 {
        metrics
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse::<u128>().ok())
            .unwrap_or_default()
    };
    let mut status = ShardStatus {
        clock: value("clock") as usize,
        open: false,
        tasks: value("tasks") as usize,
        staged: value("staged") as usize,
        admitted: value("admitted") as u64,
        rejected: value("rejected") as u64,
        pending: value("pending") as usize,
        threads: value("threads") as usize,
        oracle_marginals: value("oracle_marginals") as u64,
        oracle_commits: value("oracle_commits") as u64,
        messages: value("messages") as u64,
        rounds: value("rounds") as u64,
        instance_build_us: value("instance_build_us"),
        greedy_us: value("greedy_us"),
        rounding_us: value("rounding_us"),
        coverage_build_us: value("coverage_build_us"),
    };
    let shards = conn.shards()?;
    status.open = shards.first().map(|s| s.open) == Some(true);
    Ok(status)
}

// ----------------------------------------------------------------------
// The router's uniform shard view
// ----------------------------------------------------------------------

/// One router shard slot: an in-process [`Shard`] or a supervised child.
/// The router code is written once against this enum; only the failure
/// surface differs between the modes (a local shard is never
/// [`SlotError::Unavailable`]).
pub(crate) enum ShardSlot {
    /// In-process: the engine lives in this process (original mode).
    Local(Shard),
    /// Out-of-process: the engine lives in a supervised `haste-shardd`.
    Remote(RemoteShard),
}

impl ShardSlot {
    pub(crate) fn submit(&self, spec: TaskSpec) -> Result<(TaskId, usize), SlotError> {
        match self {
            ShardSlot::Local(shard) => shard.submit(spec).map_err(SlotError::Shard),
            ShardSlot::Remote(shard) => shard.submit(spec),
        }
    }

    pub(crate) fn tick1(&self) -> Result<(usize, bool), SlotError> {
        match self {
            ShardSlot::Local(shard) => shard.tick(1).map_err(SlotError::Shard),
            ShardSlot::Remote(shard) => shard.tick1(),
        }
    }

    pub(crate) fn clock(&self) -> Result<(usize, bool), SlotError> {
        match self {
            ShardSlot::Local(shard) => shard.clock().map_err(SlotError::Shard),
            ShardSlot::Remote(shard) => shard.clock(),
        }
    }

    pub(crate) fn schedule(&self) -> Result<Schedule, SlotError> {
        match self {
            ShardSlot::Local(shard) => shard.schedule().map_err(SlotError::Shard),
            ShardSlot::Remote(shard) => shard.schedule(),
        }
    }

    pub(crate) fn utility_parts(&self) -> Result<UtilityParts, SlotError> {
        match self {
            ShardSlot::Local(shard) => shard.utility_parts().map_err(SlotError::Shard),
            ShardSlot::Remote(shard) => shard.utility_parts(),
        }
    }

    pub(crate) fn snapshot(&self) -> Result<String, SlotError> {
        match self {
            ShardSlot::Local(shard) => shard.snapshot().map_err(SlotError::Shard),
            ShardSlot::Remote(shard) => shard.snapshot(),
        }
    }

    pub(crate) fn load_scenario(&self, cell: Scenario) -> Result<(), SlotError> {
        match self {
            ShardSlot::Local(shard) => shard
                .load_scenario(cell)
                .map(|_| ())
                .map_err(SlotError::Shard),
            ShardSlot::Remote(shard) => shard.load_scenario(&cell),
        }
    }

    /// Installs one validated restore target (the commit half of the
    /// router's two-phase `RESTORE`): the engine for a local shard, the
    /// snapshot text for a remote one.
    pub(crate) fn install_restored(&self, engine: haste_distributed::OnlineEngine, text: &str) {
        match self {
            ShardSlot::Local(shard) => {
                shard.install(engine);
            }
            ShardSlot::Remote(shard) => shard.restore_snapshot(text),
        }
    }

    /// Commits a checkpoint after a completed composite `SNAPSHOT`
    /// (no-op for in-process shards, which need no replay).
    pub(crate) fn checkpoint(&self, snapshot: &str) {
        if let ShardSlot::Remote(shard) = self {
            shard.checkpoint(snapshot.to_string());
        }
    }

    pub(crate) fn status_view(&self) -> Result<(ShardStatus, ShardHealth, u64, u64), SlotError> {
        match self {
            ShardSlot::Local(shard) => shard
                .status()
                .map(|status| (status, ShardHealth::Up, 0, 0))
                .map_err(SlotError::Shard),
            ShardSlot::Remote(shard) => Ok(shard.status_view()),
        }
    }

    /// The shard's metric exposition: a child's `EXPORT?` document, or
    /// `None` for in-process shards (their series live in the router's
    /// own registry already).
    pub(crate) fn export_document(&self) -> Option<Result<String, SlotError>> {
        match self {
            ShardSlot::Local(_) => None,
            ShardSlot::Remote(shard) => Some(shard.export_document()),
        }
    }

    /// Renumbers the cell a remote shard reports in `Unavailable` errors
    /// (no-op for in-process shards, which carry no cell identity).
    pub(crate) fn set_cell(&self, cell: usize) {
        if let ShardSlot::Remote(shard) = self {
            shard.set_cell(cell);
        }
    }

    /// Restarts a down remote shard (no-op when up or in-process).
    pub(crate) fn rejoin(&self, target_clock: usize) {
        if let ShardSlot::Remote(shard) = self {
            shard.rejoin(target_clock);
        }
    }

    /// Journals a slot closed while the shard was down (remote only).
    pub(crate) fn note_missed_tick(&self) {
        if let ShardSlot::Remote(shard) = self {
            shard.note_missed_tick();
        }
    }

    /// Matures fault directives at `clock` (remote only).
    pub(crate) fn apply_slot_faults(&self, clock: usize) {
        if let ShardSlot::Remote(shard) = self {
            shard.apply_slot_faults(clock);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_grammar_round_trips() {
        let plan = FaultPlan::parse(
            "# chaos schedule\n\
             kill 1 @6\n\
             stall 0 for 2 @3   # two timeouts from slot 3\n\
             drop-conn 0 @2\n\
             stall 1 for 1\n\
             drop-conn 1\n\
             \n",
        )
        .expect("well-formed plan");
        assert_eq!(plan.cells().into_iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(plan.for_cell(1).len(), 3);
        assert_eq!(
            plan.for_cell(1)[0],
            Directive {
                cell: 1,
                at_slot: 6,
                kind: FaultKind::Kill
            }
        );
        assert_eq!(
            plan.for_cell(0),
            vec![
                Directive {
                    cell: 0,
                    at_slot: 3,
                    kind: FaultKind::Stall(2)
                },
                Directive {
                    cell: 0,
                    at_slot: 2,
                    kind: FaultKind::DropConn
                },
            ]
        );
        // Defaulted slots mature immediately.
        assert_eq!(plan.for_cell(1)[1].at_slot, 0);
        assert_eq!(plan.for_cell(1)[2].at_slot, 0);
    }

    #[test]
    fn fault_plan_rejects_malformed_lines() {
        for bad in [
            "kill 1",        // kill requires an explicit slot
            "kill one @3",   // bad cell
            "kill 1 3",      // missing '@'
            "stall 1 for 0", // zero-request stall is a no-op typo
            "stall 1 @3",    // missing 'for <n>'
            "drop-conn",     // missing cell
            "explode 1 @2",  // unknown verb
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
        assert!(FaultPlan::parse("# only comments\n\n")
            .expect("empty ok")
            .is_empty());
    }

    #[test]
    fn kill_router_directives_parse_apart_from_shard_faults() {
        let plan = FaultPlan::parse(
            "kill-router @16\n\
             kill-router @16   # duplicates collapse\n\
             kill-router @4\n",
        )
        .expect("well-formed plan");
        assert_eq!(plan.router_kills(), &[4, 16]);
        assert!(!plan.is_empty());
        assert!(!plan.has_shard_faults());
        // Router kills target no cell and force no child restart: the
        // whole process dies and the WAL brings it back.
        assert!(plan.cells().is_empty());
        assert!(!plan.expects_restarts());
        assert_eq!(plan.latest_slot(), Some(16));

        let mixed = FaultPlan::parse("kill 1 @6\nkill-router @8\n").expect("well-formed plan");
        assert!(mixed.has_shard_faults());
        assert_eq!(mixed.router_kills(), &[8]);
        assert_eq!(mixed.latest_slot(), Some(8));

        for bad in ["kill-router", "kill-router 16", "kill-router @x"] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn resolve_shardd_prefers_the_explicit_path() {
        let explicit = PathBuf::from("/does/not/need/to/exist");
        let resolved = resolve_shardd(Some(&explicit)).expect("explicit path wins unchecked");
        assert_eq!(resolved, explicit);
    }

    #[test]
    fn resolve_routerd_prefers_the_explicit_path() {
        let explicit = PathBuf::from("/does/not/need/to/exist");
        let resolved = resolve_routerd(Some(&explicit)).expect("explicit path wins unchecked");
        assert_eq!(resolved, explicit);
    }

    #[test]
    fn remote_errors_pass_codes_through() {
        match remote_err("overload", "slot full".to_string()) {
            SlotError::Remote { code, message } => {
                assert_eq!(code, ErrCode::Overload);
                assert_eq!(message, "slot full");
            }
            other => panic!("expected Remote, got {other:?}"),
        }
        match remote_err("mystery", "??".to_string()) {
            SlotError::Remote { code, .. } => assert_eq!(code, ErrCode::Internal),
            other => panic!("expected Remote, got {other:?}"),
        }
    }
}
