//! `routerd` — the sharded scheduling router daemon.
//!
//! Owns one [`haste_service::Shard`] per partition cell in-process and
//! serves protocol v2 on a TCP listener: `SUBMIT` routes by cell lookup,
//! `TICK` advances every shard in lockstep, and `SNAPSHOT`/`RESTORE`
//! operate on composite consistent-cut documents. See
//! `docs/service_protocol.md`.
//!
//! With `--out-of-process`, each shard runs as a supervised
//! `haste-shardd` child instead of in-process: crashed or hung children
//! are restarted and replayed from their last snapshot baseline while
//! the rest of the fleet keeps serving (see `docs/service_protocol.md`,
//! "Shard health"). `--fault-plan FILE` loads a deterministic
//! fault-injection schedule for chaos testing.
//!
//! `--metrics-addr HOST:PORT` additionally serves the typed metric
//! registry as Prometheus-style exposition over plain HTTP (any `GET`);
//! the same document is always available in-protocol via `EXPORT?`.
//!
//! `--wal-dir DIR` makes the router durable: every accepted mutation is
//! framed into a per-tenant write-ahead log under `DIR` before it is
//! acknowledged, with periodic checkpoints (`--wal-checkpoint-every N`)
//! and a configurable fsync policy (`--wal-sync always|every-tick`). On
//! restart the router recovers every tenant — newest checkpoint plus
//! log-tail replay — before accepting connections. See
//! `docs/service_protocol.md`, "Durability".
//!
//! ```text
//! cargo run --release -p haste-service --bin routerd -- \
//!     [--addr 127.0.0.1:7411] [--cells 2x1] [--field 200x100] \
//!     [--origin 0,0] [--threads 4] [--max-pending 4096] \
//!     [--split-threshold N] [--out-of-process] [--shardd PATH] \
//!     [--deadline-ms N] [--fault-plan FILE] [--metrics-addr HOST:PORT] \
//!     [--wal-dir DIR] [--wal-sync always|every-tick] \
//!     [--wal-checkpoint-every N]
//! ```

use haste_service::wal::{WalConfig, WalSync};
use haste_service::{serve_router, FaultPlan, ProcessShardConfig, RouterConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = RouterConfig::default();
    let mut process: Option<ProcessShardConfig> = None;
    let mut wal_dir: Option<std::path::PathBuf> = None;
    let mut wal_sync: Option<WalSync> = None;
    let mut wal_checkpoint_every: Option<usize> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args.get(i).map(String::as_str).unwrap_or("");
        match flag {
            "--addr" => config.addr = value(&args, i, flag),
            "--cells" => config.cells = pair(&value(&args, i, flag), 'x', flag),
            "--field" => {
                let (w, h) = pair::<f64>(&value(&args, i, flag), 'x', flag);
                config.field = (w, h);
            }
            "--origin" => {
                let (x, y) = pair::<f64>(&value(&args, i, flag), ',', flag);
                config.origin = (x, y);
            }
            "--threads" => config.worker_threads = single(&value(&args, i, flag), flag),
            "--max-pending" => config.max_pending = single(&value(&args, i, flag), flag),
            "--split-threshold" => {
                config.split_threshold = Some(single(&value(&args, i, flag), flag));
            }
            "--metrics-addr" => config.metrics_addr = Some(value(&args, i, flag)),
            "--out-of-process" => {
                // Unary flag: no value to skip.
                process.get_or_insert_with(ProcessShardConfig::default);
                i += 1;
                continue;
            }
            "--shardd" => {
                process
                    .get_or_insert_with(ProcessShardConfig::default)
                    .shardd = Some(std::path::PathBuf::from(value(&args, i, flag)));
            }
            "--deadline-ms" => {
                process
                    .get_or_insert_with(ProcessShardConfig::default)
                    .deadline = Some(std::time::Duration::from_millis(single(
                    &value(&args, i, flag),
                    flag,
                )));
            }
            "--fault-plan" => {
                let path = value(&args, i, flag);
                let text = match std::fs::read_to_string(&path) {
                    Ok(text) => text,
                    Err(e) => fail(&format!("--fault-plan: cannot read `{path}`: {e}")),
                };
                match FaultPlan::parse(&text) {
                    Ok(plan) => {
                        process
                            .get_or_insert_with(ProcessShardConfig::default)
                            .fault_plan = Some(plan);
                    }
                    Err(reason) => fail(&format!("--fault-plan: {reason}")),
                }
            }
            "--wal-dir" => wal_dir = Some(std::path::PathBuf::from(value(&args, i, flag))),
            "--wal-sync" => {
                let policy = value(&args, i, flag);
                match WalSync::parse(&policy) {
                    Some(sync) => wal_sync = Some(sync),
                    None => fail(&format!(
                        "--wal-sync: bad policy `{policy}`; expected `always` or `every-tick`"
                    )),
                }
            }
            "--wal-checkpoint-every" => {
                wal_checkpoint_every = Some(single(&value(&args, i, flag), flag));
            }
            "--help" | "-h" => {
                println!(
                    "usage: routerd [--addr HOST:PORT] [--cells CXxCY] [--field WxH] \
                     [--origin X,Y] [--threads N] [--max-pending N] [--split-threshold N] \
                     [--out-of-process] [--shardd PATH] [--deadline-ms N] \
                     [--fault-plan FILE] [--metrics-addr HOST:PORT] [--wal-dir DIR] \
                     [--wal-sync always|every-tick] [--wal-checkpoint-every N]"
                );
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    config.process = process;
    config.wal = match wal_dir {
        Some(dir) => {
            let mut wal = WalConfig::new(dir);
            if let Some(sync) = wal_sync {
                wal.sync = sync;
            }
            if let Some(every) = wal_checkpoint_every {
                wal.checkpoint_every = every;
            }
            Some(wal)
        }
        None => {
            if wal_sync.is_some() || wal_checkpoint_every.is_some() {
                fail("--wal-sync/--wal-checkpoint-every need --wal-dir");
            }
            None
        }
    };

    let (cx, cy) = config.cells;
    if cx == 0 || cy == 0 {
        fail("--cells needs at least 1 cell on each axis");
    }

    match serve_router(config) {
        Ok(handle) => {
            println!(
                "routerd listening on {} ({} shards)",
                handle.addr(),
                handle.shards()
            );
            handle.join();
        }
        Err(e) => {
            eprintln!("routerd failed to start: {e}");
            std::process::exit(1);
        }
    }
}

/// The value following a flag, or usage-exit.
fn value(args: &[String], i: usize, flag: &str) -> String {
    match args.get(i + 1) {
        Some(v) => v.clone(),
        None => fail(&format!("{flag} needs a value")),
    }
}

/// Parses one numeric value, or usage-exit.
fn single<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    match s.parse() {
        Ok(v) => v,
        Err(_) => fail(&format!("{flag}: bad value `{s}`")),
    }
}

/// Parses `AsepB` (e.g. `2x1` or `0,0`) into two values, or usage-exit.
fn pair<T: std::str::FromStr>(s: &str, sep: char, flag: &str) -> (T, T) {
    match s.split_once(sep) {
        Some((a, b)) => (single(a, flag), single(b, flag)),
        None => fail(&format!("{flag}: bad value `{s}`; expected A{sep}B")),
    }
}

/// Prints a usage error and exits. Never returns.
fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
