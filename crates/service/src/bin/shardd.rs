//! `haste-shardd` — one out-of-process shard child.
//!
//! A plain single-engine daemon (exactly [`haste_service::serve`]) with a
//! launch contract shaped for the router's supervisor rather than for
//! humans:
//!
//! * it prints exactly one line, `shardd listening on <addr>`, to stdout
//!   (explicitly flushed — stdout is a block-buffered pipe under a
//!   supervisor) so the parent learns the OS-assigned port;
//! * it then blocks reading stdin until EOF and exits. The supervisor
//!   holds the write end of that pipe, so a dead or exiting supervisor
//!   releases the child automatically — no orphan processes to leak.
//!
//! The scheduling flags mirror [`haste_distributed::OnlineConfig`] field
//! for field: the supervisor forwards the router's configuration so a
//! child engine is bit-identical to the in-process shard it replaces.
//!
//! Being a full [`haste_service::serve`] daemon, a child speaks every
//! protocol revision, including v3 binary framing — but its supervisor
//! deliberately stays on v1 text: one request per child is in flight at a
//! time (the pipelined router tick is concurrency *across* children, not
//! pipelining within one connection), so framing buys nothing on this
//! hop, and text keeps child transcripts greppable during incident
//! debugging.
//!
//! ```text
//! haste-shardd [--addr 127.0.0.1:0] [--workers 4] [--max-pending 4096] \
//!     [--colors C] [--samples S] [--seed SEED] [--engine rounds|threaded] \
//!     [--localized 0|1] [--threads N]
//! ```

use std::io::Write;

use haste_distributed::EngineKind;
use haste_service::{serve, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig {
        worker_threads: 4,
        ..ServerConfig::default()
    };

    let mut i = 0;
    while i < args.len() {
        let flag = args.get(i).map(String::as_str).unwrap_or("");
        match flag {
            "--addr" => config.addr = value(&args, i, flag),
            "--workers" => config.worker_threads = single(&value(&args, i, flag), flag),
            "--max-pending" => config.max_pending = single(&value(&args, i, flag), flag),
            "--colors" => {
                config.scheduling.negotiation.colors = single(&value(&args, i, flag), flag)
            }
            "--samples" => {
                config.scheduling.negotiation.samples = single(&value(&args, i, flag), flag)
            }
            "--seed" => config.scheduling.negotiation.seed = single(&value(&args, i, flag), flag),
            "--engine" => {
                config.scheduling.engine = match value(&args, i, flag).as_str() {
                    "rounds" => EngineKind::Rounds,
                    "threaded" => EngineKind::Threaded,
                    other => fail(&format!("--engine: bad value `{other}`")),
                }
            }
            "--localized" => {
                config.scheduling.localized = single::<u8>(&value(&args, i, flag), flag) != 0
            }
            "--threads" => config.scheduling.threads = single(&value(&args, i, flag), flag),
            "--help" | "-h" => {
                println!(
                    "usage: haste-shardd [--addr HOST:PORT] [--workers N] [--max-pending N] \
                     [--colors C] [--samples S] [--seed SEED] [--engine rounds|threaded] \
                     [--localized 0|1] [--threads N]"
                );
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
        i += 2;
    }

    match serve(config) {
        Ok(handle) => {
            // The one-line launch contract: the supervisor blocks on this
            // line to learn the bound address, so it must be flushed past
            // the pipe's block buffering before anything else happens.
            let mut stdout = std::io::stdout();
            let greeted = writeln!(stdout, "shardd listening on {}", handle.addr())
                .and_then(|()| stdout.flush());
            if greeted.is_err() {
                // Stdout is gone: the supervisor died between spawn and
                // greeting. Nothing can find this child; exit.
                handle.shutdown();
                std::process::exit(1);
            }
            // Lifetime contract: serve until the supervisor closes our
            // stdin (exit, crash, or deliberate drop). Sinking the bytes
            // keeps the read loop trivial; the supervisor never writes.
            let drained = std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink());
            handle.shutdown();
            if drained.is_err() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("haste-shardd failed to start: {e}");
            std::process::exit(1);
        }
    }
}

/// The value following a flag, or usage-exit.
fn value(args: &[String], i: usize, flag: &str) -> String {
    match args.get(i + 1) {
        Some(v) => v.clone(),
        None => fail(&format!("{flag} needs a value")),
    }
}

/// Parses one numeric value, or usage-exit.
fn single<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    match s.parse() {
        Ok(v) => v,
        Err(_) => fail(&format!("{flag}: bad value `{s}`")),
    }
}

/// Prints a usage error and exits. Never returns.
fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
