//! Protocol v3: length-prefixed binary framing.
//!
//! A v3 connection starts as plain text — `HELLO v3` and its `OK` greeting
//! are ordinary lines, so an old daemon answers `ERR version` and the
//! stream is never misframed — and switches to frames right after the
//! greeting. Every frame is
//!
//! ```text
//! len:u32_be | opcode:u8 | body[len - 1]
//! ```
//!
//! where `len` counts the opcode byte plus the body. Client→server frames
//! carry either a verbatim text request ([`OP_TEXT`]: the request line, a
//! newline, then any embedded payload lines — `LOAD`/`RESTORE` documents
//! travel inside the frame instead of as trailing lines) or a batched
//! submission ([`OP_BATCH`]: a record count and fixed 48-byte task
//! records). Server→client frames carry one verbatim text reply
//! ([`OP_REPLY`]: the exact bytes [`Reply::serialize`] produces, so every
//! float keeps its shortest-roundtrip text form and the D3-audited
//! formatting paths stay the only float serializers) or the vectored ack
//! of a batch ([`OP_BATCH_ACK`]). Task positions and weights cross the
//! wire as raw big-endian IEEE-754 bits — lossless by construction, no
//! parsing on the hot path.
//!
//! Framing violations (zero-length or oversized frames, unknown opcodes,
//! malformed batch bodies) get a structured `ERR bad-request` reply and
//! close the connection: past a framing error the stream cannot be
//! resynchronized, exactly like a truncated text payload.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};

use bytes::{Buf, BufMut, BytesMut};
use haste_distributed::TaskSpec;
use haste_geometry::{Angle, Vec2};

use crate::proto::{ErrCode, Reply, Request, VERSION_V3};

/// Client→server: a text request line plus its embedded payload lines.
pub(crate) const OP_TEXT: u8 = 0x01;
/// Client→server: a batched `SUBMIT` — many task records, one frame.
pub(crate) const OP_BATCH: u8 = 0x02;
/// Server→client: one verbatim text reply (`OK`/`DATA`/`ERR`).
pub(crate) const OP_REPLY: u8 = 0x81;
/// Server→client: the vectored ack of an `OP_BATCH` frame.
pub(crate) const OP_BATCH_ACK: u8 = 0x82;

/// Upper bound on a frame's `len` field. Generous (a snapshot of the
/// largest supported scenario fits with room to spare) but finite, so a
/// desynchronized or hostile peer cannot make the daemon allocate
/// gigabytes off four bytes of garbage.
pub(crate) const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Bytes per [`OP_BATCH`] task record: six 8-byte big-endian fields
/// (`x`, `y`, `facing` as raw f64 bits, `end_slot` as u64, `energy`,
/// `weight` as raw f64 bits).
pub(crate) const BATCH_RECORD_LEN: usize = 48;

/// One complete frame, opcode split off the body.
pub(crate) struct Frame {
    pub(crate) opcode: u8,
    pub(crate) body: Vec<u8>,
}

/// Outcome of a server-side frame read.
pub(crate) enum FrameRead {
    /// A complete frame.
    Frame(Frame),
    /// EOF or shutdown — close quietly.
    Closed,
    /// The peer violated the framing contract; reply `ERR bad-request`
    /// with this reason and close.
    Violation(String),
}

/// Per-record outcome inside an [`OP_BATCH_ACK`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BatchAck {
    /// Accepted: assigned task id and release slot.
    Ok {
        /// Assigned task id (global arrival index on a router).
        task: u64,
        /// Release slot.
        release: u64,
    },
    /// Rejected: stable `ErrCode` wire token and free-form message.
    Err {
        /// The `ErrCode` wire token.
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl BatchAck {
    /// A rejection carrying a structured error code.
    pub(crate) fn rejected(code: ErrCode, message: impl Into<String>) -> BatchAck {
        BatchAck::Err {
            code: code.as_str().to_string(),
            message: message.into(),
        }
    }
}

/// Whether a just-served request line was a `HELLO v3` that the reply
/// accepted — the signal for a text connection loop to switch to frames.
pub(crate) fn upgrades_to_v3(line: &str, reply: &Reply) -> bool {
    matches!(reply, Reply::Ok(_))
        && matches!(Request::parse(line), Ok(Request::Hello(v)) if v == VERSION_V3)
}

/// Fills `buf` completely, polling the shutdown flag across read timeouts
/// (the frame-mode sibling of `read_line_polling`). Returns `false` on
/// EOF or shutdown — mid-frame EOF means the peer died; there is nothing
/// to salvage.
fn read_exact_polling<R: BufRead>(
    reader: &mut R,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one frame on the server side, polling the shutdown flag.
pub(crate) fn read_frame_polling<R: BufRead>(
    reader: &mut R,
    shutdown: &AtomicBool,
) -> std::io::Result<FrameRead> {
    let mut head = [0u8; 4];
    if !read_exact_polling(reader, &mut head, shutdown)? {
        return Ok(FrameRead::Closed);
    }
    let len = u32::from_be_bytes(head) as usize;
    if len == 0 {
        return Ok(FrameRead::Violation("zero-length frame".to_string()));
    }
    if len > MAX_FRAME {
        return Ok(FrameRead::Violation(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    if !read_exact_polling(reader, &mut payload, shutdown)? {
        return Ok(FrameRead::Closed);
    }
    let mut buf: &[u8] = &payload;
    let opcode = buf.get_u8();
    Ok(FrameRead::Frame(Frame {
        opcode,
        body: buf.chunk().to_vec(),
    }))
}

/// Reads one frame on the client side: no shutdown flag, so a socket
/// timeout surfaces as its io error (the client maps it onto its request
/// deadline), EOF as `UnexpectedEof`, and a violated length prefix as
/// `InvalidData`.
pub(crate) fn read_frame<R: BufRead>(reader: &mut R) -> std::io::Result<Frame> {
    let mut head = [0u8; 4];
    reader.read_exact(&mut head)?;
    let len = u32::from_be_bytes(head) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    let mut buf: &[u8] = &payload;
    let opcode = buf.get_u8();
    Ok(Frame {
        opcode,
        body: buf.chunk().to_vec(),
    })
}

/// Writes one frame and flushes. Refuses bodies past [`MAX_FRAME`] so a
/// local caller bug cannot emit a frame no peer would accept.
pub(crate) fn write_frame<W: Write>(
    writer: &mut W,
    opcode: u8,
    body: &[u8],
) -> std::io::Result<()> {
    if body.len() + 1 > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame body of {} bytes exceeds the frame limit", body.len()),
        ));
    }
    let mut head = BytesMut::with_capacity(5);
    head.put_u32((body.len() + 1) as u32);
    head.put_u8(opcode);
    writer.write_all(&head)?;
    writer.write_all(body)?;
    writer.flush()
}

/// Writes a text reply inside an [`OP_REPLY`] frame — the exact bytes the
/// text protocol would have sent.
pub(crate) fn write_reply_frame<W: Write>(writer: &mut W, reply: &Reply) -> std::io::Result<()> {
    write_frame(writer, OP_REPLY, reply.serialize().as_bytes())
}

/// Splits an [`OP_TEXT`] body into its request line and the embedded
/// payload bytes that follow it (empty when the request carries none).
pub(crate) fn split_text_body(body: &[u8]) -> (String, &[u8]) {
    let (line, rest) = match body.iter().position(|&b| b == b'\n') {
        Some(newline) => {
            let (line, rest) = body.split_at(newline);
            (line, rest.get(1..).unwrap_or(&[]))
        }
        None => (body, &[] as &[u8]),
    };
    (String::from_utf8_lossy(line).trim_end().to_string(), rest)
}

/// Encodes a batched submission into an [`OP_BATCH`] body: a `u32` record
/// count, then [`BATCH_RECORD_LEN`]-byte records. Floats travel as raw
/// IEEE-754 bits — bit-lossless, so a batched task is indistinguishable
/// from its text `SUBMIT` twin once it reaches the engine.
pub(crate) fn encode_batch(specs: &[TaskSpec]) -> Vec<u8> {
    let mut body = BytesMut::with_capacity(4 + specs.len() * BATCH_RECORD_LEN);
    body.put_u32(specs.len() as u32);
    for spec in specs {
        body.put_f64(spec.device_pos.x);
        body.put_f64(spec.device_pos.y);
        body.put_f64(spec.device_facing.radians());
        body.put_u64(spec.end_slot as u64);
        body.put_f64(spec.required_energy);
        body.put_f64(spec.weight);
    }
    body.into()
}

/// Decodes an [`OP_BATCH`] body. The count must agree exactly with the
/// body length — a mismatch means the stream (or the encoder) is broken,
/// and the caller closes the connection.
pub(crate) fn decode_batch(body: &[u8]) -> Result<Vec<TaskSpec>, String> {
    let mut buf: &[u8] = body;
    if buf.remaining() < 4 {
        return Err("batch body shorter than its record count".to_string());
    }
    let count = buf.get_u32() as usize;
    if buf.remaining() != count * BATCH_RECORD_LEN {
        return Err(format!(
            "batch of {count} records needs {} body bytes, got {}",
            count * BATCH_RECORD_LEN,
            buf.remaining()
        ));
    }
    let mut specs = Vec::with_capacity(count);
    for _ in 0..count {
        let x = buf.get_f64();
        let y = buf.get_f64();
        let facing = buf.get_f64();
        let end_slot = buf.get_u64();
        let energy = buf.get_f64();
        let weight = buf.get_f64();
        let end_slot = usize::try_from(end_slot)
            .map_err(|_| format!("end_slot {end_slot} exceeds this platform's usize"))?;
        specs.push(TaskSpec {
            device_pos: Vec2::new(x, y),
            device_facing: Angle::from_radians(facing),
            end_slot,
            required_energy: energy,
            weight,
        });
    }
    Ok(specs)
}

/// Encodes an [`OP_BATCH_ACK`] body: a `u32` ack count, then per record a
/// status byte — `0` followed by `task:u64_be release:u64_be`, or `1`
/// followed by two `u16_be`-length-prefixed UTF-8 strings (code token,
/// message).
pub(crate) fn encode_batch_ack(acks: &[BatchAck]) -> Vec<u8> {
    let mut body = BytesMut::with_capacity(4 + acks.len() * 17);
    body.put_u32(acks.len() as u32);
    for ack in acks {
        match ack {
            BatchAck::Ok { task, release } => {
                body.put_u8(0);
                body.put_u64(*task);
                body.put_u64(*release);
            }
            BatchAck::Err { code, message } => {
                body.put_u8(1);
                put_short_str(&mut body, code);
                put_short_str(&mut body, message);
            }
        }
    }
    body.into()
}

/// Appends a `u16_be`-length-prefixed string, truncating past-limit
/// messages on a character boundary (codes are short by construction;
/// messages are advisory).
fn put_short_str(body: &mut BytesMut, text: &str) {
    let mut end = text.len().min(usize::from(u16::MAX));
    while end > 0 && !text.is_char_boundary(end) {
        end -= 1;
    }
    let clipped = text.get(..end).unwrap_or("");
    body.put_u16(clipped.len() as u16);
    body.put_slice(clipped.as_bytes());
}

/// Decodes an [`OP_BATCH_ACK`] body (client side).
pub(crate) fn decode_batch_ack(body: &[u8]) -> Result<Vec<BatchAck>, String> {
    let mut buf: &[u8] = body;
    if buf.remaining() < 4 {
        return Err("batch ack shorter than its count".to_string());
    }
    let count = buf.get_u32() as usize;
    let mut acks = Vec::new();
    for index in 0..count {
        if buf.remaining() < 1 {
            return Err(format!("batch ack truncated at record {index}"));
        }
        match buf.get_u8() {
            0 => {
                if buf.remaining() < 16 {
                    return Err(format!("batch ack truncated at record {index}"));
                }
                acks.push(BatchAck::Ok {
                    task: buf.get_u64(),
                    release: buf.get_u64(),
                });
            }
            1 => {
                let code = get_short_str(&mut buf)
                    .ok_or_else(|| format!("batch ack truncated at record {index}"))?;
                let message = get_short_str(&mut buf)
                    .ok_or_else(|| format!("batch ack truncated at record {index}"))?;
                acks.push(BatchAck::Err { code, message });
            }
            other => return Err(format!("unknown batch ack status {other}")),
        }
    }
    if buf.has_remaining() {
        return Err(format!(
            "{} trailing bytes after the last batch ack record",
            buf.remaining()
        ));
    }
    Ok(acks)
}

/// Reads one `u16_be`-length-prefixed string; `None` on underflow.
fn get_short_str(buf: &mut &[u8]) -> Option<String> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = usize::from(buf.get_u16());
    if buf.remaining() < len {
        return None;
    }
    let text = String::from_utf8_lossy(buf.chunk().get(..len)?).to_string();
    buf.advance(len);
    Some(text)
}

/// Drives one framed connection: reads frames, hands [`OP_TEXT`] heads
/// (with their embedded payload) to `on_text` and decoded [`OP_BATCH`]
/// records to `on_batch`, and writes the framed reply. Shared by the
/// single-engine daemon and the router — each supplies closures over its
/// own dispatch path, so the panic backstop and all request semantics
/// stay exactly the text protocol's.
pub(crate) fn serve_frames<R, W, FT, FB>(
    reader: &mut R,
    writer: &mut W,
    shutdown: &AtomicBool,
    mut on_text: FT,
    mut on_batch: FB,
) -> std::io::Result<()>
where
    R: BufRead,
    W: Write,
    FT: FnMut(&str, &[u8]) -> std::io::Result<(Reply, bool)>,
    FB: FnMut(&[TaskSpec]) -> Vec<BatchAck>,
{
    loop {
        match read_frame_polling(reader, shutdown)? {
            FrameRead::Closed => return Ok(()),
            FrameRead::Violation(reason) => {
                write_reply_frame(writer, &Reply::Err(ErrCode::BadRequest, reason))?;
                return Ok(());
            }
            FrameRead::Frame(frame) => match frame.opcode {
                OP_TEXT => {
                    let (head, payload) = split_text_body(&frame.body);
                    let (reply, close) = on_text(&head, payload)?;
                    write_reply_frame(writer, &reply)?;
                    if close {
                        return Ok(());
                    }
                }
                OP_BATCH => match decode_batch(&frame.body) {
                    Ok(specs) => {
                        let acks = on_batch(&specs);
                        write_frame(writer, OP_BATCH_ACK, &encode_batch_ack(&acks))?;
                    }
                    Err(reason) => {
                        write_reply_frame(writer, &Reply::Err(ErrCode::BadRequest, reason))?;
                        return Ok(());
                    }
                },
                other => {
                    write_reply_frame(
                        writer,
                        &Reply::Err(
                            ErrCode::BadRequest,
                            format!("unknown opcode {other} in a client frame"),
                        ),
                    )?;
                    return Ok(());
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(x: f64, weight: f64) -> TaskSpec {
        TaskSpec {
            device_pos: Vec2::new(x, -2.5),
            device_facing: Angle::from_radians(0.1),
            end_slot: 7,
            required_energy: 350.0,
            weight,
        }
    }

    #[test]
    fn frames_round_trip_through_the_wire_format() {
        let mut wire = Vec::new();
        write_frame(&mut wire, OP_TEXT, b"CLOCK?\n").unwrap();
        write_frame(&mut wire, OP_REPLY, b"OK slot=3 open=1\n").unwrap();
        let mut reader = std::io::Cursor::new(wire);
        let first = read_frame(&mut reader).unwrap();
        assert_eq!(first.opcode, OP_TEXT);
        assert_eq!(first.body, b"CLOCK?\n");
        let second = read_frame(&mut reader).unwrap();
        assert_eq!(second.opcode, OP_REPLY);
        assert_eq!(second.body, b"OK slot=3 open=1\n");
        assert!(read_frame(&mut reader).is_err(), "stream is exhausted");
    }

    #[test]
    fn polling_reader_flags_violations_structurally() {
        let shutdown = AtomicBool::new(false);
        // Zero-length frame.
        let mut reader = std::io::Cursor::new(vec![0u8, 0, 0, 0]);
        assert!(matches!(
            read_frame_polling(&mut reader, &shutdown).unwrap(),
            FrameRead::Violation(_)
        ));
        // Oversized frame.
        let mut reader = std::io::Cursor::new(0xFFFF_FFFFu32.to_be_bytes().to_vec());
        assert!(matches!(
            read_frame_polling(&mut reader, &shutdown).unwrap(),
            FrameRead::Violation(_)
        ));
        // Clean EOF.
        let mut reader = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_frame_polling(&mut reader, &shutdown).unwrap(),
            FrameRead::Closed
        ));
        // EOF mid-frame: the peer died; nothing to salvage.
        let mut reader = std::io::Cursor::new(vec![0u8, 0, 0, 9, OP_TEXT]);
        assert!(matches!(
            read_frame_polling(&mut reader, &shutdown).unwrap(),
            FrameRead::Closed
        ));
    }

    #[test]
    fn text_bodies_split_into_head_and_payload() {
        let (head, payload) = split_text_body(b"LOAD 2\nline a\nline b\n");
        assert_eq!(head, "LOAD 2");
        assert_eq!(payload, b"line a\nline b\n");
        let (head, payload) = split_text_body(b"CLOCK?\n");
        assert_eq!(head, "CLOCK?");
        assert!(payload.is_empty());
        let (head, payload) = split_text_body(b"BYE");
        assert_eq!(head, "BYE");
        assert!(payload.is_empty());
    }

    #[test]
    fn batches_round_trip_bit_exactly() {
        let specs = vec![
            spec(0.1, 1.0),
            spec(-123.456, 0.25),
            spec(f64::MIN_POSITIVE, 3.5),
        ];
        let decoded = decode_batch(&encode_batch(&specs)).unwrap();
        assert_eq!(decoded.len(), specs.len());
        for (a, b) in specs.iter().zip(&decoded) {
            assert_eq!(a.device_pos.x.to_bits(), b.device_pos.x.to_bits());
            assert_eq!(a.device_pos.y.to_bits(), b.device_pos.y.to_bits());
            assert_eq!(
                a.device_facing.radians().to_bits(),
                b.device_facing.radians().to_bits()
            );
            assert_eq!(a.end_slot, b.end_slot);
            assert_eq!(a.required_energy.to_bits(), b.required_energy.to_bits());
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }

    #[test]
    fn malformed_batches_are_rejected_with_reasons() {
        assert!(decode_batch(&[1, 2]).is_err(), "short count");
        // Count says 2 records, body carries 1.
        let mut body = encode_batch(&[spec(1.0, 1.0)]);
        body[3] = 2;
        assert!(decode_batch(&body).is_err(), "count/body mismatch");
    }

    #[test]
    fn batch_acks_round_trip_including_errors() {
        let acks = vec![
            BatchAck::Ok {
                task: u64::from(u32::MAX) + 7,
                release: 12,
            },
            BatchAck::rejected(ErrCode::Overload, "slot admission queue full"),
            BatchAck::Ok {
                task: 0,
                release: 0,
            },
        ];
        let decoded = decode_batch_ack(&encode_batch_ack(&acks)).unwrap();
        assert_eq!(decoded, acks);
        assert!(decode_batch_ack(&[0, 0, 0, 1]).is_err(), "truncated record");
        assert!(
            decode_batch_ack(&[0, 0, 0, 1, 9]).is_err(),
            "unknown status byte"
        );
    }

    #[test]
    fn oversized_messages_clip_on_char_boundaries() {
        let long = "é".repeat(40_000); // 80 000 bytes of two-byte chars
        let acks = vec![BatchAck::rejected(ErrCode::Internal, long)];
        let decoded = decode_batch_ack(&encode_batch_ack(&acks)).unwrap();
        match decoded.as_slice() {
            [BatchAck::Err { code, message }] => {
                assert_eq!(code, "internal");
                assert!(message.len() <= usize::from(u16::MAX));
                assert!(message.chars().all(|c| c == 'é'), "no mangled tail");
            }
            // No Debug formatting here: this file is in D3 scope, and the
            // scanner does not exempt test tails for D3.
            other => panic!("expected one rejection, got {} acks", other.len()),
        }
    }

    #[test]
    fn upgrade_detection_requires_an_accepted_v3_hello() {
        let ok = Reply::Ok("haste-service v3 shards=1 cells=1x1".to_string());
        assert!(upgrades_to_v3("HELLO v3", &ok));
        assert!(!upgrades_to_v3("HELLO v2", &ok));
        assert!(!upgrades_to_v3(
            "HELLO v3",
            &Reply::Err(ErrCode::Version, "nope".to_string())
        ));
        assert!(!upgrades_to_v3("CLOCK?", &ok));
    }
}
