//! The HASTE scheduling **service**: a long-running daemon that drives the
//! incremental online engine
//! ([`OnlineEngine`](haste_distributed::OnlineEngine)) over a TCP wire
//! protocol, plus the matching typed client and a load-generator harness.
//!
//! * [`serve`] — starts the daemon: a `std::net` TCP listener whose
//!   connections are handled on a [`haste_parallel::ThreadPool`] (no async
//!   runtime; the workspace builds fully offline),
//! * [`serve_router`] / the `routerd` binary — the sharded deployment:
//!   one engine-owning [`Shard`] per cell of a
//!   [`Partition`](haste_model::Partition), `SUBMIT` routed by cell,
//!   lockstep `TICK`, and composite consistent-cut `SNAPSHOT`/`RESTORE`
//!   (protocol v2),
//! * [`proto`] — the versioned line-oriented wire protocol (`HELLO`,
//!   `LOAD`, `SUBMIT`, `TICK`, `SCHEDULE?`, `SNAPSHOT`/`RESTORE`, …),
//!   documented normatively in `docs/service_protocol.md`,
//! * [`Client`] — a blocking client speaking that protocol,
//! * [`loadgen`] — N concurrent connections submitting Poisson task
//!   arrivals in virtual time, measuring submit-to-ack latency and
//!   verifying the streamed session against a batch replay of its own
//!   submission trace.
//!
//! Virtual time: the daemon never sleeps. A slot closes when a client says
//! `TICK`; arrivals admitted into the slot are negotiated at that moment
//! (rescheduling delay `τ` and switching delay `ρ` apply exactly as in the
//! batch online solver). Because the engine is bit-deterministic, a daemon
//! killed mid-run and restored from its last `SNAPSHOT` finishes with the
//! same schedule and utility, bit for bit.
//!
//! Fault tolerance: with [`RouterConfig::process`] set, the router runs
//! each shard as a supervised `haste-shardd` child process
//! ([`supervisor`]). Child crashes and hangs are detected by per-request
//! deadlines; the affected cell degrades (`ERR unavailable` on its
//! submissions) while the rest of the fleet keeps the lockstep, and the
//! supervisor restarts the child and replays its snapshot baseline plus
//! journaled operations — bit-identically, by the same determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod framing;
pub mod loadgen;
pub mod proto;
mod router;
mod server;
pub mod shard;
pub mod supervisor;
mod telemetry;
pub mod wal;

pub use client::{Client, ClientError, ShardInfo, Topology};
pub use router::{
    parse_composite, render_composite, serve_router, CompositeSnapshot, HistOp, RouterConfig,
    RouterHandle,
};
pub use server::{serve, ServerConfig, ServerHandle};
pub use shard::{LoadInfo, Shard, ShardError, ShardHealth, ShardStatus, UtilityParts};
pub use supervisor::{
    resolve_routerd, resolve_shardd, FaultPlan, ProcessShardConfig, DEFAULT_SHARD_DEADLINE,
};
