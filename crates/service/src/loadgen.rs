//! A load-generator harness for the daemon: N concurrent connections
//! submitting Poisson task arrivals in **virtual time**, measuring
//! submit-to-ack latency, and verifying the streamed session against a
//! batch replay of its own submission trace.
//!
//! Arrival model: a homogeneous Poisson process conditioned on exactly `N`
//! total arrivals over `S` slots is `N` i.i.d. uniform arrival times (the
//! order-statistics property), so each submission independently draws a
//! uniform slot. No wall-clock sleeping is involved — the generator drives
//! the daemon's virtual clock itself: all connections submit their
//! arrivals for the open slot, meet at a barrier, one `TICK` closes the
//! slot, and the next slot begins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use haste_distributed::{OnlineEngine, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_model::{Charger, ChargingParams, Scenario, TimeGrid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{
    parse_composite, serve, serve_router, Client, ClientError, RouterConfig, ServerConfig,
};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address to drive; `None` self-hosts a daemon in-process
    /// (fresh engine, clean shutdown afterwards).
    pub addr: Option<String>,
    /// Concurrent client connections submitting tasks.
    pub connections: usize,
    /// Total task submissions across all connections.
    pub submissions: usize,
    /// Chargers in the generated base scenario (self-describing runs).
    pub chargers: usize,
    /// Side length of the square deployment field, meters.
    pub field: f64,
    /// Slots of the virtual-time grid (also the number of `TICK`s driven).
    pub slots: usize,
    /// Admission bound per slot for the self-hosted daemon.
    pub max_pending: usize,
    /// Seed for charger placement, arrival times and task parameters.
    pub seed: u64,
    /// After the run, pull a `SNAPSHOT`, replay the submission trace in
    /// batch ([`haste_distributed::replay_trace`]) and check the utilities
    /// match bit for bit. In sharded mode the composite snapshot is split
    /// and every shard is replayed independently; the per-task terms are
    /// re-merged in the recorded arrival order and compared bitwise.
    pub verify_replay: bool,
    /// Drive a sharded router on this partition grid instead of a plain
    /// daemon (`None` = single engine). Self-hosted runs start
    /// [`serve_router`]; chargers are placed in cell interiors (outside
    /// the reach halo) so the generated scenario always partitions.
    pub cells: Option<(usize, usize)>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: None,
            connections: 8,
            submissions: 10_000,
            chargers: 8,
            field: 200.0,
            slots: 64,
            max_pending: 4096,
            seed: 1,
            verify_replay: true,
            cells: None,
        }
    }
}

/// What a load-generator run observed.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Submissions attempted.
    pub submitted: usize,
    /// Submissions acknowledged with a task id.
    pub accepted: usize,
    /// Submissions rejected by admission control (`ERR overload`).
    pub rejected: usize,
    /// Median submit-to-ack latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile submit-to-ack latency, microseconds.
    pub p99_us: u64,
    /// Worst submit-to-ack latency, microseconds.
    pub max_us: u64,
    /// Wall-clock duration of the submission phase, seconds.
    pub elapsed_s: f64,
    /// Acknowledged submissions per wall-clock second.
    pub throughput: f64,
    /// Final full-P1 utility reported by the daemon.
    pub utility: f64,
    /// Final relaxed (HASTE-R) value reported by the daemon.
    pub relaxed: f64,
    /// Utility of the batch replay of the submission trace (when
    /// verification ran). In sharded mode this is the merge of the
    /// independent per-shard replays.
    pub replay_utility: Option<f64>,
    /// Whether daemon and replay utilities matched bit for bit.
    pub replay_matches: Option<bool>,
    /// Shards behind the driven endpoint (`None` for a plain daemon run).
    pub shards: Option<usize>,
}

impl LoadgenReport {
    /// Fraction of submissions bounced by admission control
    /// (`ERR overload`): the saturation signal of a run.
    pub fn overload_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.rejected as f64 / self.submitted as f64
        }
    }
}

impl std::fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted={} accepted={} rejected={} overload_rate={:.2}% p50={}us p99={}us \
             max={}us elapsed={:.3}s throughput={:.0}/s utility={:.6}",
            self.submitted,
            self.accepted,
            self.rejected,
            100.0 * self.overload_rate(),
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.elapsed_s,
            self.throughput,
            self.utility
        )?;
        if let Some(shards) = self.shards {
            write!(f, " shards={shards}")?;
        }
        if let Some(matches) = self.replay_matches {
            write!(
                f,
                " replay_utility={:.6} replay_matches={matches}",
                self.replay_utility.unwrap_or(f64::NAN)
            )?;
        }
        Ok(())
    }
}

/// One worker's pre-generated submission plan: per slot, the specs it
/// submits while that slot is open.
struct WorkerPlan {
    per_slot: Vec<Vec<TaskSpec>>,
}

/// A self-hosted endpoint: either a plain daemon or a sharded router.
enum Hosted {
    Daemon(crate::ServerHandle),
    Router(crate::RouterHandle),
}

impl Hosted {
    fn addr(&self) -> std::net::SocketAddr {
        match self {
            Hosted::Daemon(handle) => handle.addr(),
            Hosted::Router(handle) => handle.addr(),
        }
    }

    fn shutdown(self) {
        match self {
            Hosted::Daemon(handle) => handle.shutdown(),
            Hosted::Router(handle) => handle.shutdown(),
        }
    }
}

/// Runs the load generator. Returns an error on any transport or protocol
/// failure (a malformed daemon response is an error, not a statistic —
/// correctness is binary here).
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, ClientError> {
    let hosted = match (&config.addr, config.cells) {
        (Some(_), _) => None,
        // Workers + the control connection must all fit in the pool, or
        // the barrier protocol deadlocks waiting on a queued connection.
        (None, None) => Some(Hosted::Daemon(serve(ServerConfig {
            worker_threads: config.connections + 2,
            max_pending: config.max_pending,
            ..ServerConfig::default()
        })?)),
        (None, Some(cells)) => Some(Hosted::Router(serve_router(RouterConfig {
            worker_threads: config.connections + 2,
            max_pending: config.max_pending,
            cells,
            origin: (0.0, 0.0),
            field: (config.field, config.field),
            ..RouterConfig::default()
        })?)),
    };
    let addr = match (&config.addr, &hosted) {
        (Some(addr), _) => addr.clone(),
        (None, Some(handle)) => handle.addr().to_string(),
        (None, None) => unreachable!("self-hosted handle exists"),
    };

    let mut rng = StdRng::seed_from_u64(config.seed);
    let scenario = base_scenario(config, &mut rng);
    let mut control = Client::connect(&addr)?;
    control.load(&scenario)?;

    // Poisson arrivals: each submission draws a uniform slot; round-robin
    // across connections keeps per-worker load balanced.
    let mut plans: Vec<WorkerPlan> = (0..config.connections)
        .map(|_| WorkerPlan {
            per_slot: vec![Vec::new(); config.slots],
        })
        .collect();
    for i in 0..config.submissions {
        let slot = rng.gen_range(0..config.slots);
        let duration = rng.gen_range(2..=8usize);
        let spec = TaskSpec {
            device_pos: Vec2::new(
                rng.gen_range(0.0..config.field),
                rng.gen_range(0.0..config.field),
            ),
            device_facing: Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
            end_slot: (slot + duration).min(config.slots),
            required_energy: rng.gen_range(500.0..3000.0),
            weight: 1.0,
        };
        plans[i % config.connections].per_slot[slot].push(spec);
    }

    let barrier = Barrier::new(config.connections + 1);
    let accepted = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let start = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(config.submissions);

    std::thread::scope(|scope| -> Result<(), ClientError> {
        let mut handles = Vec::with_capacity(config.connections);
        for plan in &plans {
            let barrier = &barrier;
            let accepted = &accepted;
            let rejected = &rejected;
            let addr = addr.as_str();
            let slots = config.slots;
            handles.push(scope.spawn(move || -> Result<Vec<u64>, ClientError> {
                let mut client = Client::connect(addr)?;
                let mut latencies = Vec::new();
                // A failed worker keeps meeting the barriers (without
                // submitting) so the remaining participants never
                // deadlock; the error surfaces at join time.
                let mut failure: Option<ClientError> = None;
                for slot in 0..slots {
                    if failure.is_none() {
                        for spec in &plan.per_slot[slot] {
                            let sent = Instant::now();
                            match client.submit(spec) {
                                Ok(_) => {
                                    latencies.push(sent.elapsed().as_micros() as u64);
                                    accepted.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) if e.code() == Some("overload") => {
                                    rejected.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    failure = Some(e);
                                    break;
                                }
                            }
                        }
                    }
                    // All submissions for this slot are in; one TICK (from
                    // the controller, between the two barriers) closes it.
                    barrier.wait();
                    barrier.wait();
                }
                if let Some(e) = failure {
                    return Err(e);
                }
                client.bye()?;
                Ok(latencies)
            }));
        }
        // Controller: close each slot once every worker has drained it.
        // Same rule: keep meeting the barriers even after an error.
        let mut tick_failure: Option<ClientError> = None;
        for _ in 0..config.slots {
            barrier.wait();
            if tick_failure.is_none() {
                if let Err(e) = control.tick(1) {
                    tick_failure = Some(e);
                }
            }
            barrier.wait();
        }
        for handle in handles {
            all_latencies.extend(handle.join().expect("loadgen worker panicked")?);
        }
        if let Some(e) = tick_failure {
            return Err(e);
        }
        Ok(())
    })?;
    let elapsed_s = start.elapsed().as_secs_f64();

    let (utility, relaxed) = control.utility()?;
    let (mut replay_utility, mut replay_matches) = (None, None);
    if config.verify_replay {
        let snapshot = control.snapshot()?;
        let replayed = match config.cells {
            None => {
                let engine = OnlineEngine::restore(&snapshot)
                    .map_err(|e| ClientError::Protocol(format!("daemon snapshot unusable: {e}")))?;
                let trace = engine.scenario().clone();
                haste_distributed::replay_trace(trace, engine.config().clone())
                    .report
                    .total_utility
            }
            Some(_) => merged_shard_replay(&snapshot)?,
        };
        replay_utility = Some(replayed);
        replay_matches = Some(replayed.to_bits() == utility.to_bits());
    }
    control.bye()?;
    if let Some(handle) = hosted {
        handle.shutdown();
    }

    all_latencies.sort_unstable();
    let percentile = |p: usize| -> u64 {
        if all_latencies.is_empty() {
            0
        } else {
            all_latencies[(all_latencies.len() - 1) * p / 100]
        }
    };
    let accepted = accepted.into_inner();
    Ok(LoadgenReport {
        submitted: config.submissions,
        accepted,
        rejected: rejected.into_inner(),
        p50_us: percentile(50),
        p99_us: percentile(99),
        max_us: all_latencies.last().copied().unwrap_or(0),
        elapsed_s,
        throughput: accepted as f64 / elapsed_s.max(1e-9),
        utility,
        relaxed,
        replay_utility,
        replay_matches,
        shards: config.cells.map(|(cx, cy)| cx * cy),
    })
}

/// Independently replays every shard of a composite router snapshot from
/// its own submission trace and re-merges the per-task utility terms in
/// the recorded global arrival order — the sharded analogue of the
/// single-engine replay check, bit-comparable to the streamed total.
fn merged_shard_replay(composite_text: &str) -> Result<f64, ClientError> {
    let composite = parse_composite(composite_text)
        .map_err(|e| ClientError::Protocol(format!("router snapshot unusable: {e}")))?;
    let mut parts: Vec<Vec<f64>> = Vec::with_capacity(composite.shards.len());
    for snapshot in &composite.shards {
        let engine = OnlineEngine::restore(snapshot)
            .map_err(|e| ClientError::Protocol(format!("shard snapshot unusable: {e}")))?;
        let trace = engine.scenario().clone();
        let weights: Vec<f64> = trace.tasks.iter().map(|t| t.weight).collect();
        let replayed = haste_distributed::replay_trace(trace, engine.config().clone());
        parts.push(
            weights
                .iter()
                .zip(&replayed.report.per_task_utility)
                .map(|(w, u)| w * u)
                .collect(),
        );
    }
    let mut cursors = vec![0usize; parts.len()];
    let mut total = 0.0f64;
    for &owner in &composite.order {
        let shard = owner as usize;
        let term = cursors
            .get_mut(shard)
            .and_then(|cursor| {
                let term = parts.get(shard)?.get(*cursor).copied();
                *cursor += 1;
                term
            })
            .ok_or_else(|| {
                ClientError::Protocol("router snapshot order exceeds shard tasks".to_string())
            })?;
        total += term;
    }
    Ok(total)
}

/// The generated base scenario: chargers only; tasks arrive over the wire.
///
/// In sharded mode chargers are placed round-robin across cells, inside
/// the cell interior shrunk by the reach halo — the placement invariant
/// `Partition::validate_chargers` enforces at `LOAD`, guaranteed here by
/// construction.
fn base_scenario(config: &LoadgenConfig, rng: &mut StdRng) -> Scenario {
    let params = ChargingParams::simulation_default();
    let chargers = (0..config.chargers)
        .map(|i| {
            let pos = match config.cells {
                None => Vec2::new(
                    rng.gen_range(0.0..config.field),
                    rng.gen_range(0.0..config.field),
                ),
                Some((cells_x, cells_y)) => {
                    let cell = i % (cells_x * cells_y);
                    let (cw, ch) = (config.field / cells_x as f64, config.field / cells_y as f64);
                    // 1 m of slack beyond the halo keeps the strict
                    // `margin > halo + eps` check satisfied.
                    let inset = params.radius + 1.0;
                    assert!(
                        2.0 * inset < cw.min(ch),
                        "cells too small for halo-safe charger placement"
                    );
                    Vec2::new(
                        (cell % cells_x) as f64 * cw + rng.gen_range(inset..cw - inset),
                        (cell / cells_x) as f64 * ch + rng.gen_range(inset..ch - inset),
                    )
                }
            };
            Charger::new(i as u32, pos)
        })
        .collect();
    Scenario::new(
        params,
        TimeGrid::new(60.0, config.slots),
        chargers,
        Vec::new(),
        1.0 / 12.0,
        1,
    )
    .expect("generated base scenario is valid")
}
