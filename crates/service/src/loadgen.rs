//! A load-generator harness for the daemon: N concurrent connections
//! submitting Poisson task arrivals in **virtual time**, measuring
//! submit-to-ack latency, and verifying the streamed session against a
//! batch replay of its own submission trace.
//!
//! Arrival model: a homogeneous Poisson process conditioned on exactly `N`
//! total arrivals over `S` slots is `N` i.i.d. uniform arrival times (the
//! order-statistics property), so each submission independently draws a
//! uniform slot. No wall-clock sleeping is involved — the generator drives
//! the daemon's virtual clock itself: all connections submit their
//! arrivals for the open slot, meet at a barrier, one `TICK` closes the
//! slot, and the next slot begins.
//!
//! Chaos mode: with [`LoadgenConfig::fault_plan`] set the harness runs a
//! sharded router with out-of-process shards **twice** — once without
//! faults (the reference) and once injecting the seeded fault schedule —
//! and checks that every cell the plan did not target finishes with a
//! final utility bit-identical to the reference run ([`ChaosReport`]).
//! Submissions bounced while a shard is down (`ERR unavailable`) are
//! counted, not fatal.
//!
//! Arrival shaping: [`LoadgenConfig::profile`] switches the slot draw
//! from uniform to a seeded diurnal rate curve (double-peaked, 288
//! canonical steps, piecewise-linear), and the report then splits the
//! admission-rejection rate into peak and trough slot bands. The
//! [`Hotspot`](ArrivalProfile::Hotspot) profile instead skews *space*:
//! arrival slots stay uniform but device positions concentrate on one
//! partition cell, the load pattern live resharding exists for.
//! [`LoadgenConfig::reshard_split`] scripts a mid-run `RESHARD SPLIT`
//! between two ticks of a sharded run; the replay verification carries
//! through the topology change unchanged.
//!
//! Open-loop mode: [`LoadgenConfig::open_loop`] paces raw `SUBMIT` lines
//! at a fixed aggregate rate without waiting for acks (a drain thread
//! reads replies concurrently), so client back-pressure never throttles
//! the offered load. Latency percentiles then come from the server-side
//! `EXPORT?` histogram instead of client round-trips.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use haste_distributed::{OnlineEngine, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_model::{Charger, ChargingParams, Scenario, TimeGrid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use haste_metrics::{quantile_upper_bound_us, Value as MetricValue};

use crate::shard::ShardHealth;
use crate::{
    parse_composite, serve, serve_router, Client, ClientError, FaultPlan, ProcessShardConfig,
    RouterConfig, ServerConfig,
};

/// Steps in one canonical diurnal day. 288 matches the classic
/// five-minute telemetry resolution of a 24-hour trace; a run's slots
/// are mapped onto the curve by integer interpolation so any
/// slot-count/period combination stays deterministic.
pub const DIURNAL_STEPS: usize = 288;

/// Control points `(step, weight)` of the canonical diurnal rate curve:
/// a pre-dawn trough, a late-morning peak, a midday shoulder, and a
/// taller evening peak. Weights are relative Poisson intensities;
/// between control points the curve is piecewise linear in integer
/// arithmetic, so every platform derives bit-identical weights.
const DIURNAL_CURVE: [(usize, u64); 9] = [
    (0, 35),
    (48, 12),
    (84, 60),
    (108, 100),
    (132, 72),
    (168, 58),
    (204, 96),
    (252, 40),
    (288, 35),
];

/// How submissions distribute their arrival slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProfile {
    /// Homogeneous Poisson: every slot is equally likely (the
    /// order-statistics draw the module doc describes).
    Uniform,
    /// Inhomogeneous Poisson on the [`DIURNAL_CURVE`]: slot `s` takes
    /// the curve weight at step `(s % period) · 288 / period`, so
    /// `period` slots span one synthetic day (runs longer than one
    /// period wrap around). The report gains peak-band and trough-band
    /// rejection rates.
    Diurnal {
        /// Slots per synthetic day.
        period: usize,
    },
    /// Spatially skewed arrivals for sharded runs: arrival *slots* stay
    /// uniform (the temporal draw is the exact expression the uniform
    /// profile uses), but each device position first draws a partition
    /// cell — the hot cell with weight `factor`, every other cell with
    /// weight 1 — and then lands uniformly inside that cell's rect.
    /// Needs [`LoadgenConfig::cells`].
    Hotspot {
        /// Row-major index of the cell receiving the skewed load.
        cell: usize,
        /// Relative arrival weight of the hot cell (≥ 1; 1 is uniform).
        factor: u64,
    },
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address to drive; `None` self-hosts a daemon in-process
    /// (fresh engine, clean shutdown afterwards).
    pub addr: Option<String>,
    /// Concurrent client connections submitting tasks.
    pub connections: usize,
    /// Total task submissions across all connections.
    pub submissions: usize,
    /// Chargers in the generated base scenario (self-describing runs).
    pub chargers: usize,
    /// Side length of the square deployment field, meters.
    pub field: f64,
    /// Slots of the virtual-time grid (also the number of `TICK`s driven).
    pub slots: usize,
    /// Admission bound per slot for the self-hosted daemon.
    pub max_pending: usize,
    /// Seed for charger placement, arrival times and task parameters.
    pub seed: u64,
    /// After the run, pull a `SNAPSHOT`, replay the submission trace in
    /// batch ([`haste_distributed::replay_trace`]) and check the utilities
    /// match bit for bit. In sharded mode the composite snapshot is split
    /// and every shard is replayed independently; the per-task terms are
    /// re-merged in the recorded arrival order and compared bitwise.
    pub verify_replay: bool,
    /// Drive a sharded router on this partition grid instead of a plain
    /// daemon (`None` = single engine). Self-hosted runs start
    /// [`serve_router`]; chargers are placed in cell interiors (outside
    /// the reach halo) so the generated scenario always partitions.
    pub cells: Option<(usize, usize)>,
    /// Run the self-hosted router's shards as supervised `haste-shardd`
    /// child processes instead of in-process engines. Needs [`cells`]
    /// (sharded) and no [`addr`] (self-hosted).
    ///
    /// [`cells`]: LoadgenConfig::cells
    /// [`addr`]: LoadgenConfig::addr
    pub out_of_process: bool,
    /// Explicit `haste-shardd` binary path for out-of-process runs
    /// (`None` resolves next to the current executable; see
    /// [`crate::resolve_shardd`]).
    pub shardd: Option<std::path::PathBuf>,
    /// Per-request supervisor deadline for out-of-process shards
    /// (`None` = [`crate::DEFAULT_SHARD_DEADLINE`]).
    pub deadline: Option<std::time::Duration>,
    /// Deterministic fault schedule for chaos mode. Implies
    /// out-of-process shards; the run is doubled (reference + fault) and
    /// the report gains a [`ChaosReport`]. Every directive must mature
    /// before the final slot so the targeted shard has a tick left in
    /// which to rejoin.
    pub fault_plan: Option<FaultPlan>,
    /// Negotiate protocol v3 binary framing on the worker connections
    /// ([`Client::connect_v3`]). The run fails with a structured error if
    /// the endpoint only speaks text — a silent fallback would invalidate
    /// any binary-vs-text comparison. The control connection stays on v1
    /// text either way.
    pub binary: bool,
    /// Submissions per `submit_batch` call (clamped to at least 1). Over
    /// binary framing a chunk rides in one `OP_BATCH` frame with one
    /// vectored ack; over text it degrades to sequential `SUBMIT`s. Every
    /// record in a chunk is attributed the chunk's round-trip latency.
    pub batch: usize,
    /// Arrival-slot distribution (see [`ArrivalProfile`]).
    pub profile: ArrivalProfile,
    /// Open-loop mode: pace raw `SUBMIT` lines at this aggregate rate
    /// (submissions per second across all connections) without waiting
    /// for acks. No `TICK`s are driven, so the open slot's admission
    /// bound is what saturates; latency percentiles come from the
    /// server-side `EXPORT?` histogram. Incompatible with
    /// [`binary`](LoadgenConfig::binary) (open loop is raw text) and
    /// [`fault_plan`](LoadgenConfig::fault_plan); replay verification is
    /// skipped (nothing is ever scheduled).
    pub open_loop: Option<f64>,
    /// Serve the self-hosted router's metric registry over plain HTTP
    /// on this address (forwarded to [`RouterConfig::metrics_addr`]).
    /// Needs a sharded self-hosted run; with
    /// [`check_export`](LoadgenConfig::check_export) the post-run
    /// exposition is fetched through this scrape endpoint instead of
    /// in-protocol `EXPORT?`.
    pub metrics_addr: Option<String>,
    /// After the run, fetch the metric exposition, parse it, and check
    /// the endpoint's `SUBMIT` latency-histogram count equals this
    /// session's accepted + rejected + unavailable submissions. A
    /// mismatch is an error, not a statistic.
    pub check_export: bool,
    /// Scripted live resharding: `(after_slot, cell)` issues
    /// `RESHARD SPLIT cell` on the control connection immediately after
    /// the `TICK` that closes slot `after_slot - 1` — mid-run, between
    /// ticks, while the workers keep submitting. Needs a sharded
    /// closed-loop run; the replay verification handles the post-split
    /// topology transparently (the composite snapshot carries the cell
    /// rects the merge order is derived from).
    pub reshard_split: Option<(usize, usize)>,
    /// Write-ahead-log directory for durable self-hosted sharded runs.
    /// Stale `*.wal`/`*.ckpt` files in it are removed at session start,
    /// so every session begins from a clean slate. Required by
    /// `kill-router` fault plans (the respawned router recovers from
    /// this directory); on any other sharded self-hosted run it simply
    /// makes the router durable.
    pub wal_dir: Option<std::path::PathBuf>,
    /// Explicit `routerd` binary path for `kill-router` chaos runs
    /// (`None` resolves via `HASTE_ROUTERD`, then next to the current
    /// executable; see [`crate::resolve_routerd`]).
    pub routerd: Option<std::path::PathBuf>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: None,
            connections: 8,
            submissions: 10_000,
            chargers: 8,
            field: 200.0,
            slots: 64,
            max_pending: 4096,
            seed: 1,
            verify_replay: true,
            cells: None,
            out_of_process: false,
            shardd: None,
            deadline: None,
            fault_plan: None,
            binary: false,
            batch: 1,
            profile: ArrivalProfile::Uniform,
            open_loop: None,
            metrics_addr: None,
            check_export: false,
            reshard_split: None,
            wal_dir: None,
            routerd: None,
        }
    }
}

/// What a load-generator run observed.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Submissions attempted.
    pub submitted: usize,
    /// Submissions acknowledged with a task id.
    pub accepted: usize,
    /// Submissions rejected by admission control (`ERR overload`).
    pub rejected: usize,
    /// Submissions bounced because their cell's shard was down
    /// (`ERR unavailable`; only non-zero under fault injection).
    pub unavailable: usize,
    /// Median submit-to-ack latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile submit-to-ack latency, microseconds.
    pub p99_us: u64,
    /// Worst submit-to-ack latency, microseconds.
    pub max_us: u64,
    /// Wall-clock duration of the whole session, seconds: connecting,
    /// `LOAD`, the submission phase, and the post-run utility/snapshot/
    /// verification queries. The honest denominator for submission
    /// throughput is [`submit_elapsed_s`](LoadgenReport::submit_elapsed_s).
    pub elapsed_s: f64,
    /// Acknowledged submissions per wall-clock second of the **whole
    /// session** — a utilization figure, not the submission rate; that is
    /// [`submit_throughput`](LoadgenReport::submit_throughput).
    pub throughput: f64,
    /// Wall-clock duration of the submit loop alone, seconds: from the
    /// instant every worker connection is established to the final slot's
    /// closing `TICK`.
    pub submit_elapsed_s: f64,
    /// Acknowledged submissions per wall-clock second of the submit loop
    /// alone.
    pub submit_throughput: f64,
    /// Final full-P1 utility reported by the daemon.
    pub utility: f64,
    /// Final relaxed (HASTE-R) value reported by the daemon.
    pub relaxed: f64,
    /// Utility of the batch replay of the submission trace (when
    /// verification ran). In sharded mode this is the merge of the
    /// independent per-shard replays.
    pub replay_utility: Option<f64>,
    /// Whether daemon and replay utilities matched bit for bit.
    pub replay_matches: Option<bool>,
    /// Shards behind the driven endpoint (`None` for a plain daemon run).
    pub shards: Option<usize>,
    /// Chaos verdict (`Some` only when a fault plan was injected).
    pub chaos: Option<ChaosReport>,
    /// Admission-rejection rate over the peak slot band (slots whose
    /// diurnal weight is at or above the 75th percentile). `Some` only
    /// under [`ArrivalProfile::Diurnal`].
    pub peak_overload_rate: Option<f64>,
    /// Admission-rejection rate over the trough slot band (slots whose
    /// diurnal weight is at or below the 25th percentile). `Some` only
    /// under [`ArrivalProfile::Diurnal`].
    pub trough_overload_rate: Option<f64>,
    /// Whether the post-run exposition self-check ran and passed
    /// ([`LoadgenConfig::check_export`]; a failed check is an error, so
    /// this is only ever `Some(true)` in a returned report).
    pub export_consistent: Option<bool>,
    /// Whether latency percentiles were measured server-side (open-loop
    /// mode) rather than as client round-trips.
    pub server_side_latency: bool,
}

/// What a fault-injected run proved against its no-fault reference run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Cells the fault plan targeted (sorted, deduplicated).
    pub fault_cells: Vec<usize>,
    /// Whether every cell the plan did **not** target finished with a
    /// final utility bit-identical to the reference run — the blast
    /// radius of the injected faults stayed inside the targeted cells.
    pub surviving_match: bool,
    /// Child-process restarts performed across the fleet.
    pub restarts: u64,
    /// Journaled operations replayed into restarted children.
    pub replays: u64,
    /// Submissions bounced with `ERR unavailable` while shards were down.
    pub unavailable: usize,
    /// Whether every shard finished the run serving (no shard was still
    /// `restarting` at the end — the targeted cells rejoined).
    pub recovered: bool,
    /// Final utility of the no-fault reference run, for context.
    pub reference_utility: f64,
    /// `kill-router` directives executed: each one SIGKILLed the whole
    /// router process at a post-tick barrier and respawned it, and WAL
    /// recovery had to bring every tenant back bit-identically (for
    /// these runs [`surviving_match`](ChaosReport::surviving_match)
    /// covers **all** cells and the final total utility).
    pub router_kills: usize,
}

impl LoadgenReport {
    /// Fraction of submissions bounced by admission control
    /// (`ERR overload`): the saturation signal of a run.
    pub fn overload_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.rejected as f64 / self.submitted as f64
        }
    }
}

impl std::fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted={} accepted={} rejected={} overload_rate={:.2}% p50={}us p99={}us \
             max={}us elapsed={:.3}s throughput={:.0}/s submit_elapsed={:.3}s \
             submit_throughput={:.0}/s utility={:.6}",
            self.submitted,
            self.accepted,
            self.rejected,
            100.0 * self.overload_rate(),
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.elapsed_s,
            self.throughput,
            self.submit_elapsed_s,
            self.submit_throughput,
            self.utility
        )?;
        if let Some(shards) = self.shards {
            write!(f, " shards={shards}")?;
        }
        if let (Some(peak), Some(trough)) = (self.peak_overload_rate, self.trough_overload_rate) {
            write!(
                f,
                " peak_overload={:.2}% trough_overload={:.2}%",
                100.0 * peak,
                100.0 * trough
            )?;
        }
        if self.server_side_latency {
            write!(f, " latency_source=server")?;
        }
        if self.export_consistent == Some(true) {
            write!(f, " export_consistent=true")?;
        }
        if let Some(matches) = self.replay_matches {
            write!(
                f,
                " replay_utility={:.6} replay_matches={matches}",
                self.replay_utility.unwrap_or(f64::NAN)
            )?;
        }
        if self.unavailable > 0 {
            write!(f, " unavailable={}", self.unavailable)?;
        }
        if let Some(chaos) = &self.chaos {
            write!(
                f,
                " chaos_cells={:?} surviving_match={} restarts={} replays={} recovered={}",
                chaos.fault_cells,
                chaos.surviving_match,
                chaos.restarts,
                chaos.replays,
                chaos.recovered
            )?;
            if chaos.router_kills > 0 {
                write!(f, " router_kills={}", chaos.router_kills)?;
            }
        }
        Ok(())
    }
}

/// One worker's pre-generated submission plan: per slot, the specs it
/// submits while that slot is open.
struct WorkerPlan {
    per_slot: Vec<Vec<TaskSpec>>,
}

/// A self-hosted endpoint: either a plain daemon or a sharded router.
enum Hosted {
    Daemon(crate::ServerHandle),
    Router(crate::RouterHandle),
}

impl Hosted {
    fn addr(&self) -> std::net::SocketAddr {
        match self {
            Hosted::Daemon(handle) => handle.addr(),
            Hosted::Router(handle) => handle.addr(),
        }
    }

    fn shutdown(self) {
        match self {
            Hosted::Daemon(handle) => handle.shutdown(),
            Hosted::Router(handle) => handle.shutdown(),
        }
    }
}

/// A `routerd` subprocess hosting the session's endpoint — the victim of
/// `kill-router` directives. Respawns reuse the exact argument list, so
/// every incarnation binds the same reserved address and recovers from
/// the same WAL directory.
struct RouterProcess {
    program: std::path::PathBuf,
    args: Vec<String>,
    child: Child,
    addr: String,
}

impl RouterProcess {
    /// Resolves the `routerd` binary, cleans the WAL directory, reserves
    /// a local address, and spawns the first incarnation, waiting for
    /// its listening greeting.
    fn launch(config: &LoadgenConfig) -> Result<RouterProcess, ClientError> {
        let program = crate::resolve_routerd(config.routerd.as_deref())?;
        let wal_dir = config
            .wal_dir
            .as_ref()
            .expect("kill-router validation requires a WAL directory");
        clean_wal_dir(wal_dir)?;
        let (cx, cy) = config
            .cells
            .expect("kill-router validation requires a sharded router");
        let addr = reserve_addr()?;
        let mut args = vec![
            "--addr".to_string(),
            addr.clone(),
            "--cells".to_string(),
            format!("{cx}x{cy}"),
            "--field".to_string(),
            format!("{0}x{0}", config.field),
            "--origin".to_string(),
            "0,0".to_string(),
            // Workers + control + slack, same deadlock-avoidance rule as
            // the in-process pools.
            "--threads".to_string(),
            (config.connections + 2).to_string(),
            "--max-pending".to_string(),
            config.max_pending.to_string(),
            "--wal-dir".to_string(),
            wal_dir.display().to_string(),
            // Ticks close slots at the barriers where kills land, so the
            // every-tick policy is exactly the durability the bitwise
            // comparison relies on.
            "--wal-sync".to_string(),
            "every-tick".to_string(),
        ];
        if config.out_of_process {
            args.push("--out-of-process".to_string());
            let shardd = crate::resolve_shardd(config.shardd.as_deref())?;
            args.push("--shardd".to_string());
            args.push(shardd.display().to_string());
        }
        if let Some(deadline) = config.deadline {
            args.push("--deadline-ms".to_string());
            args.push(deadline.as_millis().to_string());
        }
        let child = RouterProcess::spawn(&program, &args)?;
        Ok(RouterProcess {
            program,
            args,
            child,
            addr,
        })
    }

    /// Spawns one incarnation and blocks until it prints its listening
    /// greeting — which `routerd` does only after WAL recovery finished
    /// and the listener is bound, so a successful spawn is a router
    /// ready to serve recovered state.
    fn spawn(program: &std::path::Path, args: &[String]) -> Result<Child, ClientError> {
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child.stdout.take().expect("routerd stdout was piped");
        let mut greeting = String::new();
        let outcome = BufReader::new(stdout).read_line(&mut greeting);
        match outcome {
            Ok(n) if n > 0 && greeting.contains("listening on") => Ok(child),
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                Err(ClientError::Protocol(format!(
                    "routerd subprocess did not come up (greeting `{}`)",
                    greeting.trim_end()
                )))
            }
        }
    }

    /// SIGKILLs the current incarnation — no shutdown handshake, the
    /// whole point — reaps it, and spawns a replacement with the same
    /// arguments. Returns once the replacement has greeted, i.e. once
    /// recovery is complete.
    fn kill_and_respawn(&mut self) -> Result<(), ClientError> {
        self.child.kill()?;
        self.child.wait()?;
        self.child = RouterProcess::spawn(&self.program, &self.args)?;
        Ok(())
    }

    /// Tears the subprocess down at end of session.
    fn shutdown(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Removes stale WAL artifacts (`*.wal`, `*.ckpt`, `*.tmp`) from the
/// configured directory, creating it first if needed, so every session
/// starts durable from a clean slate.
fn clean_wal_dir(dir: &std::path::Path) -> Result<(), ClientError> {
    std::fs::create_dir_all(dir)?;
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let stale = path
            .extension()
            .is_some_and(|ext| ext == "wal" || ext == "ckpt" || ext == "tmp");
        if stale {
            std::fs::remove_file(&path)?;
        }
    }
    Ok(())
}

/// Reserves a local address for the router subprocess: bind an ephemeral
/// port, note it, release it. The respawned incarnations must reuse one
/// fixed address (workers reconnect to it), which an OS-assigned port
/// per spawn could not provide.
fn reserve_addr() -> Result<String, ClientError> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    Ok(listener.local_addr()?.to_string())
}

/// Runs the load generator. Returns an error on any transport or protocol
/// failure (a malformed daemon response is an error, not a statistic —
/// correctness is binary here).
///
/// With a [`LoadgenConfig::fault_plan`] the run is doubled: a no-fault
/// reference session, then the fault session; the returned report is the
/// fault session's, with [`LoadgenReport::chaos`] carrying the verdict.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, ClientError> {
    let shard_chaos = config
        .fault_plan
        .as_ref()
        .is_some_and(FaultPlan::has_shard_faults);
    let process_mode = config.out_of_process || shard_chaos;
    if process_mode && config.addr.is_some() {
        return Err(ClientError::Protocol(
            "out-of-process shards need a self-hosted router (drop the address)".to_string(),
        ));
    }
    if process_mode && config.cells.is_none() {
        return Err(ClientError::Protocol(
            "out-of-process shards need a sharded router (set cells)".to_string(),
        ));
    }
    if let Some(plan) = &config.fault_plan {
        if !plan.router_kills().is_empty() {
            if plan.has_shard_faults() {
                return Err(ClientError::Protocol(
                    "kill-router cannot share a plan with shard fault directives: a shard \
                     fault in flight when the router dies would make the post-recovery \
                     comparison ill-defined"
                        .to_string(),
                ));
            }
            if config.addr.is_some() {
                return Err(ClientError::Protocol(
                    "kill-router spawns and kills its own routerd (drop the address)".to_string(),
                ));
            }
            if config.cells.is_none() {
                return Err(ClientError::Protocol(
                    "kill-router drives a sharded router (set cells)".to_string(),
                ));
            }
            if config.wal_dir.is_none() {
                return Err(ClientError::Protocol(
                    "kill-router needs a write-ahead-log directory to recover from \
                     (set wal_dir)"
                        .to_string(),
                ));
            }
            if config.metrics_addr.is_some() {
                return Err(ClientError::Protocol(
                    "the scrape listener belongs to an in-process router; kill-router runs \
                     routerd as a subprocess"
                        .to_string(),
                ));
            }
            if config.check_export {
                return Err(ClientError::Protocol(
                    "the exposition self-check cannot cross a router kill: counters do not \
                     survive the process"
                        .to_string(),
                ));
            }
        }
    }
    if config.wal_dir.is_some() && config.addr.is_some() {
        return Err(ClientError::Protocol(
            "the WAL belongs to the self-hosted router (drop the address)".to_string(),
        ));
    }
    if config.wal_dir.is_some() && config.cells.is_none() {
        return Err(ClientError::Protocol(
            "the WAL needs a sharded router (set cells)".to_string(),
        ));
    }
    if let ArrivalProfile::Diurnal { period: 0 } = config.profile {
        return Err(ClientError::Protocol(
            "diurnal profile needs a period of at least 1 slot".to_string(),
        ));
    }
    if let ArrivalProfile::Hotspot { cell, factor } = config.profile {
        let Some((cx, cy)) = config.cells else {
            return Err(ClientError::Protocol(
                "hotspot profile skews load across partition cells (set cells)".to_string(),
            ));
        };
        if cell >= cx * cy {
            return Err(ClientError::Protocol(format!(
                "hotspot cell {cell} is outside the {cx}x{cy} grid"
            )));
        }
        if factor == 0 {
            return Err(ClientError::Protocol(
                "hotspot factor must be at least 1".to_string(),
            ));
        }
    }
    if let Some((after_slot, cell)) = config.reshard_split {
        let Some((cx, cy)) = config.cells else {
            return Err(ClientError::Protocol(
                "a scripted reshard needs a sharded router (set cells)".to_string(),
            ));
        };
        if cell >= cx * cy {
            return Err(ClientError::Protocol(format!(
                "reshard cell {cell} is outside the {cx}x{cy} grid"
            )));
        }
        if after_slot == 0 || after_slot >= config.slots {
            return Err(ClientError::Protocol(format!(
                "reshard slot {after_slot} must fall mid-run (1..{})",
                config.slots
            )));
        }
        if config.open_loop.is_some() {
            return Err(ClientError::Protocol(
                "open-loop mode drives no TICKs, so a scripted reshard never fires".to_string(),
            ));
        }
        // Shard-fault chaos assumes a stable topology for its per-cell
        // reference comparison. A kill-router plan is fine: both the
        // reference and the fault session perform the same split, so the
        // comparison stays aligned — and the split record's WAL replay is
        // exactly what the kill is meant to exercise.
        if shard_chaos {
            return Err(ClientError::Protocol(
                "scripted resharding and shard-fault chaos cannot share a run: the \
                 per-cell reference comparison assumes a stable topology"
                    .to_string(),
            ));
        }
    }
    if let Some(rate) = config.open_loop {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(ClientError::Protocol(format!(
                "open-loop rate must be a positive number of submissions per second, got {rate}"
            )));
        }
        if config.binary {
            return Err(ClientError::Protocol(
                "open-loop mode paces raw text submissions; drop the binary framing flag"
                    .to_string(),
            ));
        }
        if config.fault_plan.is_some() {
            return Err(ClientError::Protocol(
                "open-loop mode drives no TICKs, so a fault plan could never mature; \
                 use the closed-loop harness for chaos runs"
                    .to_string(),
            ));
        }
    }
    if config.metrics_addr.is_some() && config.addr.is_some() {
        return Err(ClientError::Protocol(
            "the scrape listener belongs to the self-hosted router (drop the address)".to_string(),
        ));
    }
    if config.metrics_addr.is_some() && config.cells.is_none() {
        return Err(ClientError::Protocol(
            "the scrape listener needs a sharded router (set cells)".to_string(),
        ));
    }
    let plan = match &config.fault_plan {
        None => return run_session(config, None, false).map(|(report, _)| report),
        Some(plan) => plan,
    };
    if plan.is_empty() {
        return Err(ClientError::Protocol(
            "fault plan has no directives".to_string(),
        ));
    }
    if plan
        .latest_slot()
        .is_some_and(|slot| slot + 1 >= config.slots)
    {
        return Err(ClientError::Protocol(
            "fault plan matures too late: every directive needs at least one tick left \
             after it for the targeted shard to rejoin"
                .to_string(),
        ));
    }

    // Reference session: same seed, same out-of-process deployment, no
    // faults. Its per-shard utilities are the bitwise yardstick for the
    // cells the plan does not touch.
    let (reference, reference_obs) = run_session(config, None, true)?;
    let reference_obs = expect_observed(reference_obs)?;
    let (mut report, obs) = run_session(config, Some(plan), true)?;
    let obs = expect_observed(obs)?;

    let fault_cells: Vec<usize> = plan.cells().into_iter().collect();
    // For `kill-router` runs `fault_cells` is empty, so this compares
    // EVERY cell bitwise — and the total on top: the recovered router
    // must be indistinguishable from one that never died. The total is
    // compared in canonical cell order, NOT via the sessions' raw
    // `UTILITY?` replies: those sum the per-task terms in each session's
    // own cross-connection arrival interleaving, and float addition is
    // not associative, so two *independent* sessions (even two no-fault
    // ones) wobble in the last ulp. Each session's arrival-order total
    // is separately pinned against its own offline replay
    // (`replay_matches`), which is exactly the axis a kill could bend.
    let canonical_total = |cells: &[f64]| cells.iter().fold(0.0f64, |acc, utility| acc + utility);
    let surviving_match = reference_obs.per_shard_utility.len() == obs.per_shard_utility.len()
        && reference_obs
            .per_shard_utility
            .iter()
            .zip(&obs.per_shard_utility)
            .enumerate()
            .all(|(cell, (reference, faulted))| {
                fault_cells.contains(&cell) || reference.to_bits() == faulted.to_bits()
            })
        && (plan.router_kills().is_empty()
            || canonical_total(&reference_obs.per_shard_utility).to_bits()
                == canonical_total(&obs.per_shard_utility).to_bits());
    report.chaos = Some(ChaosReport {
        fault_cells,
        surviving_match,
        restarts: obs.restarts,
        replays: obs.replays,
        unavailable: report.unavailable,
        recovered: obs.all_serving,
        reference_utility: reference.utility,
        router_kills: plan.router_kills().len(),
    });
    Ok(report)
}

/// Post-run shard observations backing the chaos verdict: per-shard final
/// utilities (from the composite snapshot) and supervision counters (from
/// `SHARDS?`).
struct ShardObservations {
    per_shard_utility: Vec<f64>,
    restarts: u64,
    replays: u64,
    all_serving: bool,
}

/// Unwraps the observations a chaos session was asked to collect.
fn expect_observed(obs: Option<ShardObservations>) -> Result<ShardObservations, ClientError> {
    obs.ok_or_else(|| {
        ClientError::Protocol("chaos session produced no shard observations".to_string())
    })
}

/// One load-generator session: hosts (or dials) the endpoint, drives the
/// full submission plan, and tears the endpoint down. `fault` is the plan
/// injected into **this** session (the chaos reference passes `None`);
/// `observe` additionally collects [`ShardObservations`] from the final
/// snapshot and `SHARDS?`.
fn run_session(
    config: &LoadgenConfig,
    fault: Option<&FaultPlan>,
    observe: bool,
) -> Result<(LoadgenReport, Option<ShardObservations>), ClientError> {
    let process_mode = config.out_of_process
        || config
            .fault_plan
            .as_ref()
            .is_some_and(FaultPlan::has_shard_faults);
    // A `kill-router` session cannot host its victim in-process: the
    // whole point is SIGKILLing the router mid-run, so it runs as a
    // `routerd` subprocess recovering from the configured WAL directory.
    // The chaos *reference* session (`fault` is `None`) stays in-process
    // — the undisturbed yardstick (durable too when `wal_dir` is set,
    // which changes nothing the comparison can see).
    let router_kill_slots: Vec<usize> = fault
        .map(|plan| plan.router_kills().to_vec())
        .unwrap_or_default();
    let mut router_process = if router_kill_slots.is_empty() {
        None
    } else {
        Some(RouterProcess::launch(config)?)
    };
    let hosted = if router_process.is_some() {
        None
    } else {
        match (&config.addr, config.cells) {
            (Some(_), _) => None,
            // Workers + the control connection must all fit in the pool, or
            // the barrier protocol deadlocks waiting on a queued connection.
            (None, None) => Some(Hosted::Daemon(serve(ServerConfig {
                worker_threads: config.connections + 2,
                max_pending: config.max_pending,
                ..ServerConfig::default()
            })?)),
            (None, Some(cells)) => {
                let process = process_mode.then(|| ProcessShardConfig {
                    shardd: config.shardd.clone(),
                    deadline: config.deadline,
                    fault_plan: fault.cloned(),
                });
                let wal = match &config.wal_dir {
                    Some(dir) => {
                        clean_wal_dir(dir)?;
                        Some(crate::wal::WalConfig::new(dir.clone()))
                    }
                    None => None,
                };
                Some(Hosted::Router(serve_router(RouterConfig {
                    worker_threads: config.connections + 2,
                    max_pending: config.max_pending,
                    cells,
                    origin: (0.0, 0.0),
                    field: (config.field, config.field),
                    process,
                    metrics_addr: config.metrics_addr.clone(),
                    wal,
                    ..RouterConfig::default()
                })?))
            }
        }
    };
    let addr = match (&config.addr, &hosted, &router_process) {
        (_, _, Some(process)) => process.addr.clone(),
        (Some(addr), _, None) => addr.clone(),
        (None, Some(handle), None) => handle.addr().to_string(),
        (None, None, None) => unreachable!("self-hosted handle exists"),
    };

    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let scenario = base_scenario(config, &mut rng);
    let mut control = Client::connect(&addr)?;
    control.load(&scenario)?;

    // Poisson arrivals: each submission draws its slot — uniformly, or
    // weighted by the diurnal curve — and round-robin across connections
    // keeps per-worker load balanced.
    let weights = slot_weights(config.profile, config.slots);
    let sampler = SlotSampler::new(&weights);
    // Hotspot runs draw a weighted cell before each position; every other
    // profile leaves the position draws untouched, so pre-hotspot seeds
    // reproduce their traces bit for bit.
    let cell_sampler = match (config.profile, config.cells) {
        (ArrivalProfile::Hotspot { cell, factor }, Some((cx, cy))) => {
            let mut cell_weights = vec![1u64; cx * cy];
            cell_weights[cell] = factor;
            Some((SlotSampler::new(&cell_weights), (cx, cy)))
        }
        _ => None,
    };
    let mut arrivals: Vec<(usize, TaskSpec)> = Vec::with_capacity(config.submissions);
    for _ in 0..config.submissions {
        let slot = match config.profile {
            // The uniform draw keeps the literal pre-profile expression so
            // existing seeds reproduce their traces bit for bit. Hotspot
            // skews space, not time, and shares it.
            ArrivalProfile::Uniform | ArrivalProfile::Hotspot { .. } => {
                rng.gen_range(0..config.slots)
            }
            ArrivalProfile::Diurnal { .. } => sampler.draw(&mut rng),
        };
        let duration = rng.gen_range(2..=8usize);
        let device_pos = match &cell_sampler {
            Some((cells, grid)) => {
                cell_uniform_pos(cells.draw(&mut rng), *grid, config.field, &mut rng)
            }
            None => Vec2::new(
                rng.gen_range(0.0..config.field),
                rng.gen_range(0.0..config.field),
            ),
        };
        let spec = TaskSpec {
            device_pos,
            device_facing: Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
            end_slot: (slot + duration).min(config.slots),
            required_energy: rng.gen_range(500.0..3000.0),
            weight: 1.0,
        };
        arrivals.push((slot, spec));
    }

    let barrier = Barrier::new(config.connections + 1);
    let slot_accepted: Vec<AtomicUsize> = (0..config.slots).map(|_| AtomicUsize::new(0)).collect();
    let slot_rejected: Vec<AtomicUsize> = (0..config.slots).map(|_| AtomicUsize::new(0)).collect();
    let unavailable = AtomicUsize::new(0);
    let mut all_latencies: Vec<u64> = Vec::with_capacity(config.submissions);
    let mut submit_elapsed_s = 0.0f64;

    if let Some(rate) = config.open_loop {
        submit_elapsed_s = open_loop_phase(
            config,
            &addr,
            arrivals,
            rate,
            &slot_accepted,
            &slot_rejected,
            &unavailable,
        )?;
    } else {
        let mut plans: Vec<WorkerPlan> = (0..config.connections)
            .map(|_| WorkerPlan {
                per_slot: vec![Vec::new(); config.slots],
            })
            .collect();
        for (i, (slot, spec)) in arrivals.into_iter().enumerate() {
            plans[i % config.connections].per_slot[slot].push(spec);
        }

        std::thread::scope(|scope| -> Result<(), ClientError> {
            let mut handles = Vec::with_capacity(config.connections);
            for plan in &plans {
                let barrier = &barrier;
                let slot_accepted = slot_accepted.as_slice();
                let slot_rejected = slot_rejected.as_slice();
                let unavailable = &unavailable;
                let addr = addr.as_str();
                let slots = config.slots;
                let binary = config.binary;
                let batch = config.batch.max(1);
                let reconnect = !router_kill_slots.is_empty();
                handles.push(scope.spawn(move || -> Result<Vec<u64>, ClientError> {
                    // A failed worker keeps meeting the barriers (without
                    // submitting) so the remaining participants never
                    // deadlock; the error surfaces at join time. That covers
                    // a failed *connect* too — the ready barrier below is
                    // met either way.
                    let mut failure: Option<ClientError> = None;
                    let mut client = match worker_connect(addr, binary) {
                        Ok(client) => Some(client),
                        Err(e) => {
                            failure = Some(e);
                            None
                        }
                    };
                    let mut latencies = Vec::new();
                    // Ready barrier: every worker is connected (or has
                    // recorded why not). The submit-phase clock starts here.
                    barrier.wait();
                    for slot in 0..slots {
                        if let (Some(client), None) = (client.as_mut(), failure.as_ref()) {
                            'chunks: for chunk in plan.per_slot[slot].chunks(batch) {
                                let sent = Instant::now();
                                let acks = match client.submit_batch(chunk) {
                                    Ok(acks) => acks,
                                    // The router was killed and respawned at
                                    // an earlier barrier: this worker's socket
                                    // died while it was idle, so nothing of
                                    // this chunk reached the old process —
                                    // reconnecting and resubmitting the whole
                                    // chunk cannot duplicate anything.
                                    Err(e) if reconnect && e.disconnected() => {
                                        let retried =
                                            worker_connect(addr, binary).and_then(|fresh| {
                                                *client = fresh;
                                                client.submit_batch(chunk)
                                            });
                                        match retried {
                                            Ok(acks) => acks,
                                            Err(e) => {
                                                failure = Some(e);
                                                break 'chunks;
                                            }
                                        }
                                    }
                                    Err(e) => {
                                        failure = Some(e);
                                        break 'chunks;
                                    }
                                };
                                let rtt = sent.elapsed().as_micros() as u64;
                                for ack in acks {
                                    match ack {
                                        Ok(_) => {
                                            latencies.push(rtt);
                                            slot_accepted[slot].fetch_add(1, Ordering::Relaxed);
                                        }
                                        Err(e) if e.code() == Some("overload") => {
                                            slot_rejected[slot].fetch_add(1, Ordering::Relaxed);
                                        }
                                        // A down shard bounces the submission;
                                        // under fault injection that is expected
                                        // degraded-mode behaviour, not a failure.
                                        Err(e) if e.code() == Some("unavailable") => {
                                            unavailable.fetch_add(1, Ordering::Relaxed);
                                        }
                                        Err(e) => {
                                            failure = Some(e);
                                            break 'chunks;
                                        }
                                    }
                                }
                            }
                        }
                        // All submissions for this slot are in; one TICK (from
                        // the controller, between the two barriers) closes it.
                        barrier.wait();
                        barrier.wait();
                    }
                    if let Some(e) = failure {
                        return Err(e);
                    }
                    let farewell = client
                        .expect("a connected worker reaches the epilogue")
                        .bye();
                    match farewell {
                        // A worker with nothing to submit after the last
                        // router kill first notices its dead socket here;
                        // there is nothing left to say to the new process.
                        Err(e) if reconnect && e.disconnected() => {}
                        other => other?,
                    }
                    Ok(latencies)
                }));
            }
            // Controller: close each slot once every worker has drained it.
            // Same rule: keep meeting the barriers even after an error.
            barrier.wait();
            let submit_start = Instant::now();
            let mut tick_failure: Option<ClientError> = None;
            for slot in 0..config.slots {
                barrier.wait();
                if tick_failure.is_none() {
                    if let Err(e) = control.tick(1) {
                        tick_failure = Some(e);
                    }
                }
                // The scripted split lands between ticks: the slot just
                // closed, the next is already open, and workers are
                // submitting into it the moment the barrier releases.
                if let Some((after_slot, cell)) = config.reshard_split {
                    if slot + 1 == after_slot && tick_failure.is_none() {
                        if let Err(e) = control.reshard_split(cell) {
                            tick_failure = Some(e);
                        }
                    }
                }
                // A kill-router directive fires here, while every worker
                // is parked at the barrier below: the slot is closed (and
                // fsynced, under the every-tick policy the subprocess
                // runs), nothing is in flight, and the respawn blocks on
                // the greeting — so the control reconnect lands on a
                // fully recovered router before any worker wakes up and
                // notices its dead socket.
                if router_kill_slots.contains(&slot) && tick_failure.is_none() {
                    let revived = router_process
                        .as_mut()
                        .expect("kill-router sessions run a routerd subprocess")
                        .kill_and_respawn()
                        .and_then(|()| Client::connect(&addr));
                    match revived {
                        Ok(fresh) => control = fresh,
                        Err(e) => tick_failure = Some(e),
                    }
                }
                barrier.wait();
            }
            submit_elapsed_s = submit_start.elapsed().as_secs_f64();
            for handle in handles {
                all_latencies.extend(handle.join().expect("loadgen worker panicked")?);
            }
            if let Some(e) = tick_failure {
                return Err(e);
            }
            Ok(())
        })?;
    }

    let (utility, relaxed) = control.utility()?;
    // Open-loop runs never TICK, so nothing is ever scheduled: a batch
    // replay would compare two empty schedules. Skip it.
    let verify_replay = config.verify_replay && config.open_loop.is_none();
    let snapshot = if verify_replay || observe {
        Some(control.snapshot()?)
    } else {
        None
    };
    let (mut replay_utility, mut replay_matches) = (None, None);
    if verify_replay {
        let snapshot = snapshot.as_deref().unwrap_or_default();
        let replayed = match config.cells {
            None => {
                let engine = OnlineEngine::restore(snapshot)
                    .map_err(|e| ClientError::Protocol(format!("daemon snapshot unusable: {e}")))?;
                let trace = engine.scenario().clone();
                haste_distributed::replay_trace(trace, engine.config().clone())
                    .report
                    .total_utility
            }
            Some(_) => merged_shard_replay(snapshot)?,
        };
        replay_utility = Some(replayed);
        replay_matches = Some(replayed.to_bits() == utility.to_bits());
    }
    let observations = if observe {
        let composite = snapshot.as_deref().unwrap_or_default();
        let shards = control.shards()?;
        Some(ShardObservations {
            per_shard_utility: per_shard_utilities(composite)?,
            restarts: shards.iter().map(|s| s.restarts).sum(),
            replays: shards.iter().map(|s| s.replay).sum(),
            all_serving: shards.iter().all(|s| s.health != ShardHealth::Restarting),
        })
    } else {
        None
    };

    let accepted_per_slot: Vec<usize> = slot_accepted
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    let rejected_per_slot: Vec<usize> = slot_rejected
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    let accepted: usize = accepted_per_slot.iter().sum();
    let rejected: usize = rejected_per_slot.iter().sum();
    let unavailable = unavailable.into_inner();

    // Exposition pass: open-loop runs need the server-side SUBMIT
    // latency histogram; `check_export` additionally cross-checks its
    // count against the session's own ledger. Scrape over HTTP when the
    // self-hosted router has a listener, else ask in-protocol.
    let mut export_consistent = None;
    let mut server_latency: Option<(u64, u64, u64)> = None;
    if config.check_export || config.open_loop.is_some() {
        let document = match &config.metrics_addr {
            Some(scrape) => http_scrape(scrape)?,
            None => control.export()?,
        };
        let exposition = haste_metrics::Snapshot::parse(&document)
            .map_err(|e| ClientError::Protocol(format!("exposition does not parse: {e}")))?;
        let buckets =
            match exposition.get("haste_service_request_duration_us", &[("opcode", "SUBMIT")]) {
                Some(MetricValue::Histogram { buckets, .. }) => buckets.clone(),
                _ => vec![0; haste_metrics::BUCKET_COUNT],
            };
        if config.check_export {
            let counted: u64 = buckets.iter().sum();
            let expected = (accepted + rejected + unavailable) as u64;
            if counted != expected {
                return Err(ClientError::Protocol(format!(
                    "exposition SUBMIT histogram counted {counted} submissions, the session \
                     observed {expected} (accepted {accepted} + rejected {rejected} + \
                     unavailable {unavailable})"
                )));
            }
            export_consistent = Some(true);
        }
        if config.open_loop.is_some() {
            server_latency = Some((
                quantile_upper_bound_us(&buckets, 0.50).unwrap_or(0),
                quantile_upper_bound_us(&buckets, 0.99).unwrap_or(0),
                quantile_upper_bound_us(&buckets, 1.0).unwrap_or(0),
            ));
        }
    }

    control.bye()?;
    let elapsed_s = start.elapsed().as_secs_f64();
    if let Some(handle) = hosted {
        handle.shutdown();
    }
    if let Some(process) = router_process {
        process.shutdown();
    }

    all_latencies.sort_unstable();
    let (p50_us, p99_us, max_us) = match server_latency {
        Some(server) => server,
        None => (
            nearest_rank(&all_latencies, 50),
            nearest_rank(&all_latencies, 99),
            all_latencies.last().copied().unwrap_or(0),
        ),
    };
    let (peak_overload_rate, trough_overload_rate) = match config.profile {
        ArrivalProfile::Uniform | ArrivalProfile::Hotspot { .. } => (None, None),
        ArrivalProfile::Diurnal { .. } => {
            let (peak, trough) =
                band_overload_rates(&weights, &accepted_per_slot, &rejected_per_slot);
            (Some(peak), Some(trough))
        }
    };
    let report = LoadgenReport {
        submitted: config.submissions,
        accepted,
        rejected,
        unavailable,
        p50_us,
        p99_us,
        max_us,
        elapsed_s,
        throughput: accepted as f64 / elapsed_s.max(1e-9),
        submit_elapsed_s,
        submit_throughput: accepted as f64 / submit_elapsed_s.max(1e-9),
        utility,
        relaxed,
        replay_utility,
        replay_matches,
        // A scripted split leaves one extra shard serving at the end.
        shards: config
            .cells
            .map(|(cx, cy)| cx * cy + usize::from(config.reshard_split.is_some())),
        chaos: None,
        peak_overload_rate,
        trough_overload_rate,
        export_consistent,
        server_side_latency: config.open_loop.is_some(),
    };
    Ok((report, observations))
}

/// Dials one worker connection: plain v1 text, or the protocol v3
/// binary-framing handshake when [`LoadgenConfig::binary`] is set. A v3
/// request that falls back to a text protocol is an error here — the run
/// was asked to measure the binary path, and silently measuring text
/// instead would poison the comparison.
fn worker_connect(addr: &str, binary: bool) -> Result<Client, ClientError> {
    if !binary {
        return Client::connect(addr);
    }
    let (client, _topology) = Client::connect_v3(addr)?;
    if !client.is_binary() {
        return Err(ClientError::Protocol(
            "endpoint does not speak the v3 binary framing (binary run refused to \
             fall back to text)"
                .to_string(),
        ));
    }
    Ok(client)
}

/// Per-slot arrival weights for a profile over `slots` slots: all-ones
/// for uniform, the canonical curve sampled at integer steps for
/// diurnal.
fn slot_weights(profile: ArrivalProfile, slots: usize) -> Vec<u64> {
    match profile {
        // Hotspot skews where arrivals land, not when.
        ArrivalProfile::Uniform | ArrivalProfile::Hotspot { .. } => vec![1; slots],
        ArrivalProfile::Diurnal { period } => (0..slots)
            .map(|slot| diurnal_weight((slot % period) * DIURNAL_STEPS / period))
            .collect(),
    }
}

/// A uniform position inside one cell of the `(cells_x, cells_y)` grid
/// over the square field — the spatial half of the hotspot profile.
fn cell_uniform_pos(cell: usize, grid: (usize, usize), field: f64, rng: &mut StdRng) -> Vec2 {
    let (cells_x, cells_y) = grid;
    let (cw, ch) = (field / cells_x as f64, field / cells_y as f64);
    Vec2::new(
        (cell % cells_x) as f64 * cw + rng.gen_range(0.0..cw),
        (cell / cells_x) as f64 * ch + rng.gen_range(0.0..ch),
    )
}

/// The curve weight at one canonical step: integer piecewise-linear
/// interpolation between the [`DIURNAL_CURVE`] control points. Every
/// control weight is positive, so every slot keeps a positive arrival
/// probability.
fn diurnal_weight(step: usize) -> u64 {
    let step = step % DIURNAL_STEPS;
    for pair in DIURNAL_CURVE.windows(2) {
        let ((x0, w0), (x1, w1)) = (pair[0], pair[1]);
        if step >= x0 && step < x1 {
            let run = (x1 - x0) as i64;
            let rise = w1 as i64 - w0 as i64;
            let offset = (step - x0) as i64;
            return (w0 as i64 + rise * offset / run) as u64;
        }
    }
    DIURNAL_CURVE[DIURNAL_CURVE.len() - 1].1
}

/// Draws arrival slots proportionally to a weight vector: cumulative
/// sums plus one uniform integer draw per sample, so a seed always
/// reproduces the same arrival trace.
struct SlotSampler {
    cumulative: Vec<u64>,
    total: u64,
}

impl SlotSampler {
    fn new(weights: &[u64]) -> SlotSampler {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0u64;
        for &weight in weights {
            total += weight;
            cumulative.push(total);
        }
        SlotSampler { cumulative, total }
    }

    fn draw(&self, rng: &mut StdRng) -> usize {
        let r = rng.gen_range(0..self.total);
        self.cumulative.partition_point(|&c| c <= r)
    }
}

/// Peak-band and trough-band rejection rates. The bands are the slots
/// whose weight sits at or above the 75th / at or below the 25th
/// percentile of the weight vector (nearest-rank), and each band's rate
/// is its pooled rejected / (accepted + rejected).
fn band_overload_rates(weights: &[u64], accepted: &[usize], rejected: &[usize]) -> (f64, f64) {
    let mut sorted = weights.to_vec();
    sorted.sort_unstable();
    let p75 = nearest_rank(&sorted, 75);
    let p25 = nearest_rank(&sorted, 25);
    (
        band_rate(weights, accepted, rejected, |w| w >= p75),
        band_rate(weights, accepted, rejected, |w| w <= p25),
    )
}

/// The pooled rejection rate over the slots `member` selects.
fn band_rate(
    weights: &[u64],
    accepted: &[usize],
    rejected: &[usize],
    member: impl Fn(u64) -> bool,
) -> f64 {
    let (mut acc, mut rej) = (0usize, 0usize);
    for (slot, &weight) in weights.iter().enumerate() {
        if member(weight) {
            acc += accepted[slot];
            rej += rejected[slot];
        }
    }
    if acc + rej == 0 {
        0.0
    } else {
        rej as f64 / (acc + rej) as f64
    }
}

/// The open-loop submit phase: splits the arrival list round-robin
/// across raw text connections, paces each worker at `rate /
/// connections` submissions per second, and returns the wall-clock
/// duration of the phase. Outcome counters are shared with the caller.
fn open_loop_phase(
    config: &LoadgenConfig,
    addr: &str,
    arrivals: Vec<(usize, TaskSpec)>,
    rate: f64,
    slot_accepted: &[AtomicUsize],
    slot_rejected: &[AtomicUsize],
    unavailable: &AtomicUsize,
) -> Result<f64, ClientError> {
    let connections = config.connections.max(1);
    let mut shares: Vec<Vec<(usize, TaskSpec)>> = (0..connections).map(|_| Vec::new()).collect();
    for (i, arrival) in arrivals.into_iter().enumerate() {
        shares[i % connections].push(arrival);
    }
    let pace = Duration::from_secs_f64(connections as f64 / rate);
    let phase_start = Instant::now();
    std::thread::scope(|scope| -> Result<(), ClientError> {
        let mut handles = Vec::with_capacity(connections);
        for share in &shares {
            handles.push(scope.spawn(move || {
                open_loop_worker(addr, share, pace, slot_accepted, slot_rejected, unavailable)
            }));
        }
        let mut first_failure: Option<ClientError> = None;
        for handle in handles {
            if let Err(e) = handle.join().expect("open-loop worker panicked") {
                first_failure.get_or_insert(e);
            }
        }
        match first_failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;
    Ok(phase_start.elapsed().as_secs_f64())
}

/// One open-loop connection: handshakes v1 text, then paces raw
/// `SUBMIT` lines on schedule while a drain thread consumes the acks —
/// writes never wait on replies, so an overloaded endpoint slows its
/// own ack stream without throttling the offered load. The protocol's
/// strict per-connection request/reply ordering means the `i`-th reply
/// acknowledges the `i`-th submission, which is how acks are attributed
/// to arrival slots.
fn open_loop_worker(
    addr: &str,
    arrivals: &[(usize, TaskSpec)],
    pace: Duration,
    slot_accepted: &[AtomicUsize],
    slot_rejected: &[AtomicUsize],
    unavailable: &AtomicUsize,
) -> Result<(), ClientError> {
    let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
    stream.set_nodelay(true)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    writer.write_all(b"HELLO v1\n")?;
    writer.flush()?;
    let mut greeting = String::new();
    reader.read_line(&mut greeting)?;
    if !greeting.starts_with("OK") {
        return Err(ClientError::Protocol(format!(
            "unexpected greeting `{}`",
            greeting.trim_end()
        )));
    }
    let mut reader = std::thread::scope(|scope| -> Result<BufReader<TcpStream>, ClientError> {
        let drain = scope
            .spawn(move || drain_acks(reader, arrivals, slot_accepted, slot_rejected, unavailable));
        let start = Instant::now();
        let mut write_failure: Option<ClientError> = None;
        for (i, (_, spec)) in arrivals.iter().enumerate() {
            if let Some(ahead) = pace.mul_f64(i as f64).checked_sub(start.elapsed()) {
                if !ahead.is_zero() {
                    std::thread::sleep(ahead);
                }
            }
            let outcome = writer
                .write_all(submit_line(spec).as_bytes())
                .and_then(|()| writer.flush());
            if let Err(e) = outcome {
                // A broken connection also surfaces in the drain thread
                // as EOF; stop pacing and let the join sort out blame.
                write_failure = Some(ClientError::from(e));
                break;
            }
        }
        let (reader, drained) = drain.join().expect("open-loop drain thread panicked");
        if let Some(e) = write_failure {
            return Err(e);
        }
        drained?;
        Ok(reader)
    })?;
    writer.write_all(b"BYE\n")?;
    writer.flush()?;
    let mut farewell = String::new();
    reader.read_line(&mut farewell)?;
    Ok(())
}

/// Reads exactly one ack line per planned arrival, attributing each to
/// its slot. Classification failures are recorded but draining
/// continues — stopping early would let the unread ack stream
/// back-pressure the writer into a deadlock. Transport failures abort:
/// the writer is failing on the same socket anyway.
#[allow(clippy::type_complexity)]
fn drain_acks(
    mut reader: BufReader<TcpStream>,
    arrivals: &[(usize, TaskSpec)],
    slot_accepted: &[AtomicUsize],
    slot_rejected: &[AtomicUsize],
    unavailable: &AtomicUsize,
) -> (BufReader<TcpStream>, Result<(), ClientError>) {
    let mut failure: Option<ClientError> = None;
    for &(slot, _) in arrivals {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => {
                failure.get_or_insert(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-run",
                )));
                break;
            }
            Ok(_) => {}
            Err(e) => {
                failure.get_or_insert(ClientError::from(e));
                break;
            }
        }
        let line = line.trim_end();
        if line.starts_with("OK") {
            slot_accepted[slot].fetch_add(1, Ordering::Relaxed);
        } else if line.starts_with("ERR overload") {
            slot_rejected[slot].fetch_add(1, Ordering::Relaxed);
        } else if line.starts_with("ERR unavailable") {
            unavailable.fetch_add(1, Ordering::Relaxed);
        } else {
            failure.get_or_insert(ClientError::Protocol(format!(
                "unexpected submit ack `{line}`"
            )));
        }
    }
    match failure {
        Some(e) => (reader, Err(e)),
        None => (reader, Ok(())),
    }
}

/// The wire line for one raw `SUBMIT` — the same formatting
/// [`Client::submit`] puts on the socket.
fn submit_line(spec: &TaskSpec) -> String {
    format!(
        "SUBMIT {} {} {} {} {} {}\n",
        spec.device_pos.x,
        spec.device_pos.y,
        spec.device_facing.radians(),
        spec.end_slot,
        spec.required_energy,
        spec.weight
    )
}

/// Fetches the exposition over the plain-HTTP scrape listener: one
/// `GET /metrics` with `Connection: close`, body read to EOF.
fn http_scrape(addr: &str) -> Result<String, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        ClientError::Protocol("scrape response has no header/body boundary".to_string())
    })?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(ClientError::Protocol(format!("scrape returned `{status}`")));
    }
    Ok(body.to_string())
}

/// Nearest-rank percentile of an ascending-sorted sample: the value at
/// 1-based rank `ceil(p/100 · len)`. Unlike floor-indexing
/// (`sorted[(len - 1) * p / 100]`), small samples surface their tail —
/// the p99 of ten samples is the maximum, not the eighth value.
fn nearest_rank(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Each shard's final utility, recomputed by restoring its section of the
/// composite snapshot and evaluating the restored engine — a per-cell
/// fingerprint that is bit-comparable across sessions.
///
/// The engine's own `total_utility` sums the weighted per-task terms in
/// the shard's *local arrival order*, which differs between two
/// independent sessions (workers race for the wire), so at high task
/// counts two equivalent schedules can disagree in the last ulp purely
/// from float addition order. The fingerprint therefore re-sums the
/// terms sorted by the task's full spec (and the term itself as the
/// tie-break for duplicate specs): any two sessions that scheduled the
/// same tasks to the same utilities produce bit-identical sums.
fn per_shard_utilities(composite_text: &str) -> Result<Vec<f64>, ClientError> {
    let composite = parse_composite(composite_text)
        .map_err(|e| ClientError::Protocol(format!("router snapshot unusable: {e}")))?;
    composite
        .shards
        .iter()
        .map(|snapshot| {
            let mut engine = OnlineEngine::restore(snapshot)
                .map_err(|e| ClientError::Protocol(format!("shard snapshot unusable: {e}")))?;
            let report = engine.evaluate();
            let mut terms: Vec<([u64; 7], f64)> = engine
                .scenario()
                .tasks
                .iter()
                .zip(&report.per_task_utility)
                .map(|(task, utility)| {
                    let key = [
                        task.release_slot as u64,
                        task.end_slot as u64,
                        task.device_pos.x.to_bits(),
                        task.device_pos.y.to_bits(),
                        task.device_facing.radians().to_bits(),
                        task.required_energy.to_bits(),
                        task.weight.to_bits(),
                    ];
                    (key, task.weight * utility)
                })
                .collect();
            terms.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
            Ok(terms.iter().fold(0.0f64, |acc, (_, term)| acc + term))
        })
        .collect()
}

/// Independently replays every shard of a composite router snapshot from
/// its own submission trace and re-merges the per-task utility terms in
/// the recorded global arrival order — the sharded analogue of the
/// single-engine replay check, bit-comparable to the streamed total.
fn merged_shard_replay(composite_text: &str) -> Result<f64, ClientError> {
    let composite = parse_composite(composite_text)
        .map_err(|e| ClientError::Protocol(format!("router snapshot unusable: {e}")))?;
    let mut parts: Vec<Vec<f64>> = Vec::with_capacity(composite.shards.len());
    for snapshot in &composite.shards {
        let engine = OnlineEngine::restore(snapshot)
            .map_err(|e| ClientError::Protocol(format!("shard snapshot unusable: {e}")))?;
        let trace = engine.scenario().clone();
        let weights: Vec<f64> = trace.tasks.iter().map(|t| t.weight).collect();
        let replayed = haste_distributed::replay_trace(trace, engine.config().clone());
        parts.push(
            weights
                .iter()
                .zip(&replayed.report.per_task_utility)
                .map(|(w, u)| w * u)
                .collect(),
        );
    }
    let mut cursors = vec![0usize; parts.len()];
    let mut total = 0.0f64;
    for &owner in &composite.order {
        let shard = owner as usize;
        let term = cursors
            .get_mut(shard)
            .and_then(|cursor| {
                let term = parts.get(shard)?.get(*cursor).copied();
                *cursor += 1;
                term
            })
            .ok_or_else(|| {
                ClientError::Protocol("router snapshot order exceeds shard tasks".to_string())
            })?;
        total += term;
    }
    Ok(total)
}

/// The generated base scenario: chargers only; tasks arrive over the wire.
///
/// In sharded mode chargers are placed round-robin across cells, inside
/// the cell interior shrunk by the reach halo — the placement invariant
/// `Partition::validate_chargers` enforces at `LOAD`, guaranteed here by
/// construction.
fn base_scenario(config: &LoadgenConfig, rng: &mut StdRng) -> Scenario {
    let params = ChargingParams::simulation_default();
    let chargers = (0..config.chargers)
        .map(|i| {
            let pos = match config.cells {
                None => Vec2::new(
                    rng.gen_range(0.0..config.field),
                    rng.gen_range(0.0..config.field),
                ),
                Some((cells_x, cells_y)) => {
                    let cell = i % (cells_x * cells_y);
                    let (cw, ch) = (config.field / cells_x as f64, config.field / cells_y as f64);
                    // 1 m of slack beyond the halo keeps the strict
                    // `margin > halo + eps` check satisfied.
                    let inset = params.radius + 1.0;
                    assert!(
                        2.0 * inset < cw.min(ch),
                        "cells too small for halo-safe charger placement"
                    );
                    let (mut x0, mut y0, mut x1, mut y1) = (
                        (cell % cells_x) as f64 * cw,
                        (cell / cells_x) as f64 * ch,
                        (cell % cells_x) as f64 * cw + cw,
                        (cell / cells_x) as f64 * ch + ch,
                    );
                    // A scripted mid-run split halves `split_cell` along
                    // its longer axis (ties go to x). Chargers there are
                    // placed alternately inside the two future child
                    // interiors, so the same placement stays halo-safe
                    // before *and* after the migration.
                    if config
                        .reshard_split
                        .is_some_and(|(_, target)| target == cell)
                    {
                        // `round` is this charger's rank within its cell,
                        // so alternating on it fills both children even
                        // when the cell's charger indices share a parity.
                        let round = i / (cells_x * cells_y);
                        if cw >= ch {
                            let mid = x0 + cw / 2.0;
                            if round % 2 == 0 {
                                x1 = mid
                            } else {
                                x0 = mid
                            }
                        } else {
                            let mid = y0 + ch / 2.0;
                            if round % 2 == 0 {
                                y1 = mid
                            } else {
                                y0 = mid
                            }
                        }
                        assert!(
                            2.0 * inset < (x1 - x0).min(y1 - y0),
                            "split children too small for halo-safe charger placement"
                        );
                    }
                    Vec2::new(
                        rng.gen_range(x0 + inset..x1 - inset),
                        rng.gen_range(y0 + inset..y1 - inset),
                    )
                }
            };
            Charger::new(i as u32, pos)
        })
        .collect();
    Scenario::new(
        params,
        TimeGrid::new(60.0, config.slots),
        chargers,
        Vec::new(),
        1.0 / 12.0,
        1,
    )
    .expect("generated base scenario is valid")
}

#[cfg(test)]
mod tests {
    use super::{
        band_overload_rates, diurnal_weight, nearest_rank, slot_weights, ArrivalProfile,
        SlotSampler, DIURNAL_CURVE, DIURNAL_STEPS,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The curve interpolates its control points exactly, stays positive
    /// everywhere, and keeps its double-peak shape: the evening peak
    /// (step 204) and morning peak (step 108) both tower over the
    /// pre-dawn trough (step 48).
    #[test]
    fn diurnal_curve_is_positive_and_double_peaked() {
        for &(step, weight) in &DIURNAL_CURVE {
            if step < DIURNAL_STEPS {
                assert_eq!(diurnal_weight(step), weight, "control point at {step}");
            }
        }
        for step in 0..DIURNAL_STEPS {
            assert!(diurnal_weight(step) > 0, "weight vanished at step {step}");
        }
        let trough = diurnal_weight(48);
        assert!(diurnal_weight(108) > 3 * trough);
        assert!(diurnal_weight(204) > 3 * trough);
        // Wrap-around: step 288 is step 0 again.
        assert_eq!(diurnal_weight(DIURNAL_STEPS), diurnal_weight(0));
    }

    /// Slot weights map any slot count onto the full curve: a 288-slot
    /// period is the curve itself, and a coarser grid still sees both
    /// peaks and the trough.
    #[test]
    fn slot_weights_cover_uniform_and_diurnal() {
        assert_eq!(slot_weights(ArrivalProfile::Uniform, 5), vec![1; 5]);
        let full = slot_weights(ArrivalProfile::Diurnal { period: 288 }, 288);
        let direct: Vec<u64> = (0..288).map(diurnal_weight).collect();
        assert_eq!(full, direct);
        // 64 slots over a 64-slot period: min and max spread like the curve.
        let coarse = slot_weights(ArrivalProfile::Diurnal { period: 64 }, 64);
        let min = *coarse.iter().min().expect("nonempty");
        let max = *coarse.iter().max().expect("nonempty");
        assert!(min >= 12 && max == 100, "got min={min} max={max}");
        // Runs longer than one period wrap deterministically.
        let wrapped = slot_weights(ArrivalProfile::Diurnal { period: 32 }, 64);
        assert_eq!(wrapped[..32], wrapped[32..]);
    }

    /// The weighted sampler is seed-deterministic and visits heavy slots
    /// more often than light ones.
    #[test]
    fn slot_sampler_is_seeded_and_weighted() {
        let weights = [1u64, 1, 98];
        let sampler = SlotSampler::new(&weights);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..200).map(|_| sampler.draw(&mut rng)).collect()
        };
        assert_eq!(draw(7), draw(7), "same seed, same trace");
        let counts = draw(7).iter().fold([0usize; 3], |mut acc, &slot| {
            acc[slot] += 1;
            acc
        });
        assert!(
            counts[2] > counts[0] + counts[1],
            "heavy slot under-drawn: {counts:?}"
        );
    }

    /// Band rates pool the right slots: the heavy band rejects, the
    /// light band does not.
    #[test]
    fn band_rates_split_peak_and_trough() {
        let weights = [100u64, 100, 10, 10];
        let accepted = [50usize, 50, 100, 100];
        let rejected = [50usize, 50, 0, 0];
        let (peak, trough) = band_overload_rates(&weights, &accepted, &rejected);
        assert!((peak - 0.5).abs() < 1e-12, "peak={peak}");
        assert_eq!(trough, 0.0);
    }

    /// Pins the nearest-rank convention on the small samples where the
    /// old floor-indexing (`sorted[(len - 1) * p / 100]`) under-reported
    /// the tail.
    #[test]
    fn nearest_rank_surfaces_the_tail_on_small_samples() {
        let ten: Vec<u64> = (1..=10).collect();
        // Floor-indexing reported 9 here — the p99 of ten samples must
        // be the maximum.
        assert_eq!(nearest_rank(&ten, 99), 10);
        assert_eq!(nearest_rank(&ten, 50), 5);
        assert_eq!(nearest_rank(&ten, 100), 10);

        // A single sample is every percentile.
        assert_eq!(nearest_rank(&[42], 50), 42);
        assert_eq!(nearest_rank(&[42], 99), 42);

        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&hundred, 99), 99);
        assert_eq!(nearest_rank(&hundred, 50), 50);
        assert_eq!(nearest_rank(&hundred, 1), 1);

        assert_eq!(nearest_rank(&[], 99), 0);
    }
}
