//! A load-generator harness for the daemon: N concurrent connections
//! submitting Poisson task arrivals in **virtual time**, measuring
//! submit-to-ack latency, and verifying the streamed session against a
//! batch replay of its own submission trace.
//!
//! Arrival model: a homogeneous Poisson process conditioned on exactly `N`
//! total arrivals over `S` slots is `N` i.i.d. uniform arrival times (the
//! order-statistics property), so each submission independently draws a
//! uniform slot. No wall-clock sleeping is involved — the generator drives
//! the daemon's virtual clock itself: all connections submit their
//! arrivals for the open slot, meet at a barrier, one `TICK` closes the
//! slot, and the next slot begins.
//!
//! Chaos mode: with [`LoadgenConfig::fault_plan`] set the harness runs a
//! sharded router with out-of-process shards **twice** — once without
//! faults (the reference) and once injecting the seeded fault schedule —
//! and checks that every cell the plan did not target finishes with a
//! final utility bit-identical to the reference run ([`ChaosReport`]).
//! Submissions bounced while a shard is down (`ERR unavailable`) are
//! counted, not fatal.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use haste_distributed::{OnlineEngine, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_model::{Charger, ChargingParams, Scenario, TimeGrid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::shard::ShardHealth;
use crate::{
    parse_composite, serve, serve_router, Client, ClientError, FaultPlan, ProcessShardConfig,
    RouterConfig, ServerConfig,
};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address to drive; `None` self-hosts a daemon in-process
    /// (fresh engine, clean shutdown afterwards).
    pub addr: Option<String>,
    /// Concurrent client connections submitting tasks.
    pub connections: usize,
    /// Total task submissions across all connections.
    pub submissions: usize,
    /// Chargers in the generated base scenario (self-describing runs).
    pub chargers: usize,
    /// Side length of the square deployment field, meters.
    pub field: f64,
    /// Slots of the virtual-time grid (also the number of `TICK`s driven).
    pub slots: usize,
    /// Admission bound per slot for the self-hosted daemon.
    pub max_pending: usize,
    /// Seed for charger placement, arrival times and task parameters.
    pub seed: u64,
    /// After the run, pull a `SNAPSHOT`, replay the submission trace in
    /// batch ([`haste_distributed::replay_trace`]) and check the utilities
    /// match bit for bit. In sharded mode the composite snapshot is split
    /// and every shard is replayed independently; the per-task terms are
    /// re-merged in the recorded arrival order and compared bitwise.
    pub verify_replay: bool,
    /// Drive a sharded router on this partition grid instead of a plain
    /// daemon (`None` = single engine). Self-hosted runs start
    /// [`serve_router`]; chargers are placed in cell interiors (outside
    /// the reach halo) so the generated scenario always partitions.
    pub cells: Option<(usize, usize)>,
    /// Run the self-hosted router's shards as supervised `haste-shardd`
    /// child processes instead of in-process engines. Needs [`cells`]
    /// (sharded) and no [`addr`] (self-hosted).
    ///
    /// [`cells`]: LoadgenConfig::cells
    /// [`addr`]: LoadgenConfig::addr
    pub out_of_process: bool,
    /// Explicit `haste-shardd` binary path for out-of-process runs
    /// (`None` resolves next to the current executable; see
    /// [`crate::resolve_shardd`]).
    pub shardd: Option<std::path::PathBuf>,
    /// Per-request supervisor deadline for out-of-process shards
    /// (`None` = [`crate::DEFAULT_SHARD_DEADLINE`]).
    pub deadline: Option<std::time::Duration>,
    /// Deterministic fault schedule for chaos mode. Implies
    /// out-of-process shards; the run is doubled (reference + fault) and
    /// the report gains a [`ChaosReport`]. Every directive must mature
    /// before the final slot so the targeted shard has a tick left in
    /// which to rejoin.
    pub fault_plan: Option<FaultPlan>,
    /// Negotiate protocol v3 binary framing on the worker connections
    /// ([`Client::connect_v3`]). The run fails with a structured error if
    /// the endpoint only speaks text — a silent fallback would invalidate
    /// any binary-vs-text comparison. The control connection stays on v1
    /// text either way.
    pub binary: bool,
    /// Submissions per `submit_batch` call (clamped to at least 1). Over
    /// binary framing a chunk rides in one `OP_BATCH` frame with one
    /// vectored ack; over text it degrades to sequential `SUBMIT`s. Every
    /// record in a chunk is attributed the chunk's round-trip latency.
    pub batch: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: None,
            connections: 8,
            submissions: 10_000,
            chargers: 8,
            field: 200.0,
            slots: 64,
            max_pending: 4096,
            seed: 1,
            verify_replay: true,
            cells: None,
            out_of_process: false,
            shardd: None,
            deadline: None,
            fault_plan: None,
            binary: false,
            batch: 1,
        }
    }
}

/// What a load-generator run observed.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Submissions attempted.
    pub submitted: usize,
    /// Submissions acknowledged with a task id.
    pub accepted: usize,
    /// Submissions rejected by admission control (`ERR overload`).
    pub rejected: usize,
    /// Submissions bounced because their cell's shard was down
    /// (`ERR unavailable`; only non-zero under fault injection).
    pub unavailable: usize,
    /// Median submit-to-ack latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile submit-to-ack latency, microseconds.
    pub p99_us: u64,
    /// Worst submit-to-ack latency, microseconds.
    pub max_us: u64,
    /// Wall-clock duration of the whole session, seconds: connecting,
    /// `LOAD`, the submission phase, and the post-run utility/snapshot/
    /// verification queries. The honest denominator for submission
    /// throughput is [`submit_elapsed_s`](LoadgenReport::submit_elapsed_s).
    pub elapsed_s: f64,
    /// Acknowledged submissions per wall-clock second of the **whole
    /// session** — a utilization figure, not the submission rate; that is
    /// [`submit_throughput`](LoadgenReport::submit_throughput).
    pub throughput: f64,
    /// Wall-clock duration of the submit loop alone, seconds: from the
    /// instant every worker connection is established to the final slot's
    /// closing `TICK`.
    pub submit_elapsed_s: f64,
    /// Acknowledged submissions per wall-clock second of the submit loop
    /// alone.
    pub submit_throughput: f64,
    /// Final full-P1 utility reported by the daemon.
    pub utility: f64,
    /// Final relaxed (HASTE-R) value reported by the daemon.
    pub relaxed: f64,
    /// Utility of the batch replay of the submission trace (when
    /// verification ran). In sharded mode this is the merge of the
    /// independent per-shard replays.
    pub replay_utility: Option<f64>,
    /// Whether daemon and replay utilities matched bit for bit.
    pub replay_matches: Option<bool>,
    /// Shards behind the driven endpoint (`None` for a plain daemon run).
    pub shards: Option<usize>,
    /// Chaos verdict (`Some` only when a fault plan was injected).
    pub chaos: Option<ChaosReport>,
}

/// What a fault-injected run proved against its no-fault reference run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Cells the fault plan targeted (sorted, deduplicated).
    pub fault_cells: Vec<usize>,
    /// Whether every cell the plan did **not** target finished with a
    /// final utility bit-identical to the reference run — the blast
    /// radius of the injected faults stayed inside the targeted cells.
    pub surviving_match: bool,
    /// Child-process restarts performed across the fleet.
    pub restarts: u64,
    /// Journaled operations replayed into restarted children.
    pub replays: u64,
    /// Submissions bounced with `ERR unavailable` while shards were down.
    pub unavailable: usize,
    /// Whether every shard finished the run serving (no shard was still
    /// `restarting` at the end — the targeted cells rejoined).
    pub recovered: bool,
    /// Final utility of the no-fault reference run, for context.
    pub reference_utility: f64,
}

impl LoadgenReport {
    /// Fraction of submissions bounced by admission control
    /// (`ERR overload`): the saturation signal of a run.
    pub fn overload_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.rejected as f64 / self.submitted as f64
        }
    }
}

impl std::fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted={} accepted={} rejected={} overload_rate={:.2}% p50={}us p99={}us \
             max={}us elapsed={:.3}s throughput={:.0}/s submit_elapsed={:.3}s \
             submit_throughput={:.0}/s utility={:.6}",
            self.submitted,
            self.accepted,
            self.rejected,
            100.0 * self.overload_rate(),
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.elapsed_s,
            self.throughput,
            self.submit_elapsed_s,
            self.submit_throughput,
            self.utility
        )?;
        if let Some(shards) = self.shards {
            write!(f, " shards={shards}")?;
        }
        if let Some(matches) = self.replay_matches {
            write!(
                f,
                " replay_utility={:.6} replay_matches={matches}",
                self.replay_utility.unwrap_or(f64::NAN)
            )?;
        }
        if self.unavailable > 0 {
            write!(f, " unavailable={}", self.unavailable)?;
        }
        if let Some(chaos) = &self.chaos {
            write!(
                f,
                " chaos_cells={:?} surviving_match={} restarts={} replays={} recovered={}",
                chaos.fault_cells,
                chaos.surviving_match,
                chaos.restarts,
                chaos.replays,
                chaos.recovered
            )?;
        }
        Ok(())
    }
}

/// One worker's pre-generated submission plan: per slot, the specs it
/// submits while that slot is open.
struct WorkerPlan {
    per_slot: Vec<Vec<TaskSpec>>,
}

/// A self-hosted endpoint: either a plain daemon or a sharded router.
enum Hosted {
    Daemon(crate::ServerHandle),
    Router(crate::RouterHandle),
}

impl Hosted {
    fn addr(&self) -> std::net::SocketAddr {
        match self {
            Hosted::Daemon(handle) => handle.addr(),
            Hosted::Router(handle) => handle.addr(),
        }
    }

    fn shutdown(self) {
        match self {
            Hosted::Daemon(handle) => handle.shutdown(),
            Hosted::Router(handle) => handle.shutdown(),
        }
    }
}

/// Runs the load generator. Returns an error on any transport or protocol
/// failure (a malformed daemon response is an error, not a statistic —
/// correctness is binary here).
///
/// With a [`LoadgenConfig::fault_plan`] the run is doubled: a no-fault
/// reference session, then the fault session; the returned report is the
/// fault session's, with [`LoadgenReport::chaos`] carrying the verdict.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, ClientError> {
    let process_mode = config.out_of_process || config.fault_plan.is_some();
    if process_mode && config.addr.is_some() {
        return Err(ClientError::Protocol(
            "out-of-process shards need a self-hosted router (drop the address)".to_string(),
        ));
    }
    if process_mode && config.cells.is_none() {
        return Err(ClientError::Protocol(
            "out-of-process shards need a sharded router (set cells)".to_string(),
        ));
    }
    let plan = match &config.fault_plan {
        None => return run_session(config, None, false).map(|(report, _)| report),
        Some(plan) => plan,
    };
    if plan.is_empty() {
        return Err(ClientError::Protocol(
            "fault plan has no directives".to_string(),
        ));
    }
    if plan
        .latest_slot()
        .is_some_and(|slot| slot + 1 >= config.slots)
    {
        return Err(ClientError::Protocol(
            "fault plan matures too late: every directive needs at least one tick left \
             after it for the targeted shard to rejoin"
                .to_string(),
        ));
    }

    // Reference session: same seed, same out-of-process deployment, no
    // faults. Its per-shard utilities are the bitwise yardstick for the
    // cells the plan does not touch.
    let (reference, reference_obs) = run_session(config, None, true)?;
    let reference_obs = expect_observed(reference_obs)?;
    let (mut report, obs) = run_session(config, Some(plan), true)?;
    let obs = expect_observed(obs)?;

    let fault_cells: Vec<usize> = plan.cells().into_iter().collect();
    let surviving_match = reference_obs.per_shard_utility.len() == obs.per_shard_utility.len()
        && reference_obs
            .per_shard_utility
            .iter()
            .zip(&obs.per_shard_utility)
            .enumerate()
            .all(|(cell, (reference, faulted))| {
                fault_cells.contains(&cell) || reference.to_bits() == faulted.to_bits()
            });
    report.chaos = Some(ChaosReport {
        fault_cells,
        surviving_match,
        restarts: obs.restarts,
        replays: obs.replays,
        unavailable: report.unavailable,
        recovered: obs.all_serving,
        reference_utility: reference.utility,
    });
    Ok(report)
}

/// Post-run shard observations backing the chaos verdict: per-shard final
/// utilities (from the composite snapshot) and supervision counters (from
/// `SHARDS?`).
struct ShardObservations {
    per_shard_utility: Vec<f64>,
    restarts: u64,
    replays: u64,
    all_serving: bool,
}

/// Unwraps the observations a chaos session was asked to collect.
fn expect_observed(obs: Option<ShardObservations>) -> Result<ShardObservations, ClientError> {
    obs.ok_or_else(|| {
        ClientError::Protocol("chaos session produced no shard observations".to_string())
    })
}

/// One load-generator session: hosts (or dials) the endpoint, drives the
/// full submission plan, and tears the endpoint down. `fault` is the plan
/// injected into **this** session (the chaos reference passes `None`);
/// `observe` additionally collects [`ShardObservations`] from the final
/// snapshot and `SHARDS?`.
fn run_session(
    config: &LoadgenConfig,
    fault: Option<&FaultPlan>,
    observe: bool,
) -> Result<(LoadgenReport, Option<ShardObservations>), ClientError> {
    let process_mode = config.out_of_process || config.fault_plan.is_some();
    let hosted = match (&config.addr, config.cells) {
        (Some(_), _) => None,
        // Workers + the control connection must all fit in the pool, or
        // the barrier protocol deadlocks waiting on a queued connection.
        (None, None) => Some(Hosted::Daemon(serve(ServerConfig {
            worker_threads: config.connections + 2,
            max_pending: config.max_pending,
            ..ServerConfig::default()
        })?)),
        (None, Some(cells)) => {
            let process = process_mode.then(|| ProcessShardConfig {
                shardd: config.shardd.clone(),
                deadline: config.deadline,
                fault_plan: fault.cloned(),
            });
            Some(Hosted::Router(serve_router(RouterConfig {
                worker_threads: config.connections + 2,
                max_pending: config.max_pending,
                cells,
                origin: (0.0, 0.0),
                field: (config.field, config.field),
                process,
                ..RouterConfig::default()
            })?))
        }
    };
    let addr = match (&config.addr, &hosted) {
        (Some(addr), _) => addr.clone(),
        (None, Some(handle)) => handle.addr().to_string(),
        (None, None) => unreachable!("self-hosted handle exists"),
    };

    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let scenario = base_scenario(config, &mut rng);
    let mut control = Client::connect(&addr)?;
    control.load(&scenario)?;

    // Poisson arrivals: each submission draws a uniform slot; round-robin
    // across connections keeps per-worker load balanced.
    let mut plans: Vec<WorkerPlan> = (0..config.connections)
        .map(|_| WorkerPlan {
            per_slot: vec![Vec::new(); config.slots],
        })
        .collect();
    for i in 0..config.submissions {
        let slot = rng.gen_range(0..config.slots);
        let duration = rng.gen_range(2..=8usize);
        let spec = TaskSpec {
            device_pos: Vec2::new(
                rng.gen_range(0.0..config.field),
                rng.gen_range(0.0..config.field),
            ),
            device_facing: Angle::from_radians(rng.gen_range(0.0..std::f64::consts::TAU)),
            end_slot: (slot + duration).min(config.slots),
            required_energy: rng.gen_range(500.0..3000.0),
            weight: 1.0,
        };
        plans[i % config.connections].per_slot[slot].push(spec);
    }

    let barrier = Barrier::new(config.connections + 1);
    let accepted = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let unavailable = AtomicUsize::new(0);
    let mut all_latencies: Vec<u64> = Vec::with_capacity(config.submissions);
    let mut submit_elapsed_s = 0.0f64;

    std::thread::scope(|scope| -> Result<(), ClientError> {
        let mut handles = Vec::with_capacity(config.connections);
        for plan in &plans {
            let barrier = &barrier;
            let accepted = &accepted;
            let rejected = &rejected;
            let unavailable = &unavailable;
            let addr = addr.as_str();
            let slots = config.slots;
            let binary = config.binary;
            let batch = config.batch.max(1);
            handles.push(scope.spawn(move || -> Result<Vec<u64>, ClientError> {
                // A failed worker keeps meeting the barriers (without
                // submitting) so the remaining participants never
                // deadlock; the error surfaces at join time. That covers
                // a failed *connect* too — the ready barrier below is
                // met either way.
                let mut failure: Option<ClientError> = None;
                let mut client = match worker_connect(addr, binary) {
                    Ok(client) => Some(client),
                    Err(e) => {
                        failure = Some(e);
                        None
                    }
                };
                let mut latencies = Vec::new();
                // Ready barrier: every worker is connected (or has
                // recorded why not). The submit-phase clock starts here.
                barrier.wait();
                for slot in 0..slots {
                    if let (Some(client), None) = (client.as_mut(), failure.as_ref()) {
                        'chunks: for chunk in plan.per_slot[slot].chunks(batch) {
                            let sent = Instant::now();
                            let acks = match client.submit_batch(chunk) {
                                Ok(acks) => acks,
                                Err(e) => {
                                    failure = Some(e);
                                    break 'chunks;
                                }
                            };
                            let rtt = sent.elapsed().as_micros() as u64;
                            for ack in acks {
                                match ack {
                                    Ok(_) => {
                                        latencies.push(rtt);
                                        accepted.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(e) if e.code() == Some("overload") => {
                                        rejected.fetch_add(1, Ordering::Relaxed);
                                    }
                                    // A down shard bounces the submission;
                                    // under fault injection that is expected
                                    // degraded-mode behaviour, not a failure.
                                    Err(e) if e.code() == Some("unavailable") => {
                                        unavailable.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(e) => {
                                        failure = Some(e);
                                        break 'chunks;
                                    }
                                }
                            }
                        }
                    }
                    // All submissions for this slot are in; one TICK (from
                    // the controller, between the two barriers) closes it.
                    barrier.wait();
                    barrier.wait();
                }
                if let Some(e) = failure {
                    return Err(e);
                }
                client
                    .expect("a connected worker reaches the epilogue")
                    .bye()?;
                Ok(latencies)
            }));
        }
        // Controller: close each slot once every worker has drained it.
        // Same rule: keep meeting the barriers even after an error.
        barrier.wait();
        let submit_start = Instant::now();
        let mut tick_failure: Option<ClientError> = None;
        for _ in 0..config.slots {
            barrier.wait();
            if tick_failure.is_none() {
                if let Err(e) = control.tick(1) {
                    tick_failure = Some(e);
                }
            }
            barrier.wait();
        }
        submit_elapsed_s = submit_start.elapsed().as_secs_f64();
        for handle in handles {
            all_latencies.extend(handle.join().expect("loadgen worker panicked")?);
        }
        if let Some(e) = tick_failure {
            return Err(e);
        }
        Ok(())
    })?;

    let (utility, relaxed) = control.utility()?;
    let snapshot = if config.verify_replay || observe {
        Some(control.snapshot()?)
    } else {
        None
    };
    let (mut replay_utility, mut replay_matches) = (None, None);
    if config.verify_replay {
        let snapshot = snapshot.as_deref().unwrap_or_default();
        let replayed = match config.cells {
            None => {
                let engine = OnlineEngine::restore(snapshot)
                    .map_err(|e| ClientError::Protocol(format!("daemon snapshot unusable: {e}")))?;
                let trace = engine.scenario().clone();
                haste_distributed::replay_trace(trace, engine.config().clone())
                    .report
                    .total_utility
            }
            Some(_) => merged_shard_replay(snapshot)?,
        };
        replay_utility = Some(replayed);
        replay_matches = Some(replayed.to_bits() == utility.to_bits());
    }
    let observations = if observe {
        let composite = snapshot.as_deref().unwrap_or_default();
        let shards = control.shards()?;
        Some(ShardObservations {
            per_shard_utility: per_shard_utilities(composite)?,
            restarts: shards.iter().map(|s| s.restarts).sum(),
            replays: shards.iter().map(|s| s.replay).sum(),
            all_serving: shards.iter().all(|s| s.health != ShardHealth::Restarting),
        })
    } else {
        None
    };
    control.bye()?;
    let elapsed_s = start.elapsed().as_secs_f64();
    if let Some(handle) = hosted {
        handle.shutdown();
    }

    all_latencies.sort_unstable();
    let accepted = accepted.into_inner();
    let report = LoadgenReport {
        submitted: config.submissions,
        accepted,
        rejected: rejected.into_inner(),
        unavailable: unavailable.into_inner(),
        p50_us: nearest_rank(&all_latencies, 50),
        p99_us: nearest_rank(&all_latencies, 99),
        max_us: all_latencies.last().copied().unwrap_or(0),
        elapsed_s,
        throughput: accepted as f64 / elapsed_s.max(1e-9),
        submit_elapsed_s,
        submit_throughput: accepted as f64 / submit_elapsed_s.max(1e-9),
        utility,
        relaxed,
        replay_utility,
        replay_matches,
        shards: config.cells.map(|(cx, cy)| cx * cy),
        chaos: None,
    };
    Ok((report, observations))
}

/// Dials one worker connection: plain v1 text, or the protocol v3
/// binary-framing handshake when [`LoadgenConfig::binary`] is set. A v3
/// request that falls back to a text protocol is an error here — the run
/// was asked to measure the binary path, and silently measuring text
/// instead would poison the comparison.
fn worker_connect(addr: &str, binary: bool) -> Result<Client, ClientError> {
    if !binary {
        return Client::connect(addr);
    }
    let (client, _topology) = Client::connect_v3(addr)?;
    if !client.is_binary() {
        return Err(ClientError::Protocol(
            "endpoint does not speak the v3 binary framing (binary run refused to \
             fall back to text)"
                .to_string(),
        ));
    }
    Ok(client)
}

/// Nearest-rank percentile of an ascending-sorted sample: the value at
/// 1-based rank `ceil(p/100 · len)`. Unlike floor-indexing
/// (`sorted[(len - 1) * p / 100]`), small samples surface their tail —
/// the p99 of ten samples is the maximum, not the eighth value.
fn nearest_rank(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Each shard's final utility, recomputed by restoring its section of the
/// composite snapshot and evaluating the restored engine — a per-cell
/// fingerprint that is bit-comparable across sessions.
fn per_shard_utilities(composite_text: &str) -> Result<Vec<f64>, ClientError> {
    let composite = parse_composite(composite_text)
        .map_err(|e| ClientError::Protocol(format!("router snapshot unusable: {e}")))?;
    composite
        .shards
        .iter()
        .map(|snapshot| {
            let mut engine = OnlineEngine::restore(snapshot)
                .map_err(|e| ClientError::Protocol(format!("shard snapshot unusable: {e}")))?;
            Ok(engine.evaluate().total_utility)
        })
        .collect()
}

/// Independently replays every shard of a composite router snapshot from
/// its own submission trace and re-merges the per-task utility terms in
/// the recorded global arrival order — the sharded analogue of the
/// single-engine replay check, bit-comparable to the streamed total.
fn merged_shard_replay(composite_text: &str) -> Result<f64, ClientError> {
    let composite = parse_composite(composite_text)
        .map_err(|e| ClientError::Protocol(format!("router snapshot unusable: {e}")))?;
    let mut parts: Vec<Vec<f64>> = Vec::with_capacity(composite.shards.len());
    for snapshot in &composite.shards {
        let engine = OnlineEngine::restore(snapshot)
            .map_err(|e| ClientError::Protocol(format!("shard snapshot unusable: {e}")))?;
        let trace = engine.scenario().clone();
        let weights: Vec<f64> = trace.tasks.iter().map(|t| t.weight).collect();
        let replayed = haste_distributed::replay_trace(trace, engine.config().clone());
        parts.push(
            weights
                .iter()
                .zip(&replayed.report.per_task_utility)
                .map(|(w, u)| w * u)
                .collect(),
        );
    }
    let mut cursors = vec![0usize; parts.len()];
    let mut total = 0.0f64;
    for &owner in &composite.order {
        let shard = owner as usize;
        let term = cursors
            .get_mut(shard)
            .and_then(|cursor| {
                let term = parts.get(shard)?.get(*cursor).copied();
                *cursor += 1;
                term
            })
            .ok_or_else(|| {
                ClientError::Protocol("router snapshot order exceeds shard tasks".to_string())
            })?;
        total += term;
    }
    Ok(total)
}

/// The generated base scenario: chargers only; tasks arrive over the wire.
///
/// In sharded mode chargers are placed round-robin across cells, inside
/// the cell interior shrunk by the reach halo — the placement invariant
/// `Partition::validate_chargers` enforces at `LOAD`, guaranteed here by
/// construction.
fn base_scenario(config: &LoadgenConfig, rng: &mut StdRng) -> Scenario {
    let params = ChargingParams::simulation_default();
    let chargers = (0..config.chargers)
        .map(|i| {
            let pos = match config.cells {
                None => Vec2::new(
                    rng.gen_range(0.0..config.field),
                    rng.gen_range(0.0..config.field),
                ),
                Some((cells_x, cells_y)) => {
                    let cell = i % (cells_x * cells_y);
                    let (cw, ch) = (config.field / cells_x as f64, config.field / cells_y as f64);
                    // 1 m of slack beyond the halo keeps the strict
                    // `margin > halo + eps` check satisfied.
                    let inset = params.radius + 1.0;
                    assert!(
                        2.0 * inset < cw.min(ch),
                        "cells too small for halo-safe charger placement"
                    );
                    Vec2::new(
                        (cell % cells_x) as f64 * cw + rng.gen_range(inset..cw - inset),
                        (cell / cells_x) as f64 * ch + rng.gen_range(inset..ch - inset),
                    )
                }
            };
            Charger::new(i as u32, pos)
        })
        .collect();
    Scenario::new(
        params,
        TimeGrid::new(60.0, config.slots),
        chargers,
        Vec::new(),
        1.0 / 12.0,
        1,
    )
    .expect("generated base scenario is valid")
}

#[cfg(test)]
mod tests {
    use super::nearest_rank;

    /// Pins the nearest-rank convention on the small samples where the
    /// old floor-indexing (`sorted[(len - 1) * p / 100]`) under-reported
    /// the tail.
    #[test]
    fn nearest_rank_surfaces_the_tail_on_small_samples() {
        let ten: Vec<u64> = (1..=10).collect();
        // Floor-indexing reported 9 here — the p99 of ten samples must
        // be the maximum.
        assert_eq!(nearest_rank(&ten, 99), 10);
        assert_eq!(nearest_rank(&ten, 50), 5);
        assert_eq!(nearest_rank(&ten, 100), 10);

        // A single sample is every percentile.
        assert_eq!(nearest_rank(&[42], 50), 42);
        assert_eq!(nearest_rank(&[42], 99), 42);

        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&hundred, 99), 99);
        assert_eq!(nearest_rank(&hundred, 50), 50);
        assert_eq!(nearest_rank(&hundred, 1), 1);

        assert_eq!(nearest_rank(&[], 99), 0);
    }
}
