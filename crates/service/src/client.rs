//! A blocking typed client for the daemon's wire protocol.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use haste_distributed::TaskSpec;
use haste_model::{io as model_io, Scenario, Schedule, TaskId};

use crate::framing;
use crate::proto::{VERSION, VERSION_V2, VERSION_V3};

/// Backoff schedule for transient connect/greeting failures: the
/// daemon-startup and daemon-restart race windows. Three attempts total,
/// deterministic delays (no jitter — reproducibility beats
/// thundering-herd concerns at this scale).
const CONNECT_RETRY_DELAYS: [Duration; 2] = [Duration::from_millis(10), Duration::from_millis(50)];

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The daemon replied `ERR <code> <message>`.
    Server {
        /// Stable error code (see [`crate::proto::ErrCode`]).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// A request-level deadline set with
    /// [`Client::set_timeout`] expired before the reply arrived.
    Timeout,
    /// The daemon's reply did not match the protocol.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Timeout => write!(f, "request deadline expired"),
            ClientError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        // A socket timeout surfaces as `TimedOut` on most platforms but
        // `WouldBlock` on some (the BSD read(2) heritage); both mean the
        // request deadline fired.
        if matches!(
            e.kind(),
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
        ) {
            ClientError::Timeout
        } else {
            ClientError::Io(e)
        }
    }
}

impl ClientError {
    /// The stable error code: the server's for an `ERR` reply, the
    /// protocol's `timeout` token for an expired request deadline (see
    /// [`crate::proto::ErrCode`]).
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            ClientError::Timeout => Some("timeout"),
            _ => None,
        }
    }

    /// Whether retrying the whole connect + `HELLO` exchange can succeed:
    /// the listener is not up yet (`ECONNREFUSED`) or a restarting daemon
    /// dropped the connection between accept and greeting
    /// (`ECONNRESET`/`EPIPE`/abort/EOF mid-reply).
    fn transient_for_connect(&self) -> bool {
        matches!(self, ClientError::Io(e) if e.kind() == std::io::ErrorKind::ConnectionRefused)
            || self.disconnected()
    }

    /// Whether the error means the established connection is gone —
    /// `ECONNRESET`/`ECONNABORTED`/`EPIPE`, or EOF mid-reply. These (and
    /// only these) justify a transparent reconnect: the request may
    /// never have reached the peer, or the peer restarted. A refused
    /// connect, a timeout, a server `ERR`, or a protocol violation is
    /// not a disconnect — retrying those would mask a real failure.
    pub fn disconnected(&self) -> bool {
        match self {
            ClientError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::UnexpectedEof
            ),
            _ => false,
        }
    }
}

/// A successful reply: the `OK` fields or a `DATA` payload.
#[derive(Debug)]
enum Payload {
    Fields(String),
    Document(String),
}

/// Shard topology advertised by a v2 `HELLO` greeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of shards behind the endpoint (1 for a plain daemon).
    pub shards: usize,
    /// The partition grid as `(cells_x, cells_y)` (`(1, 1)` for a plain
    /// daemon).
    pub cells: (usize, usize),
}

/// One line of a `SHARDS?` reply: a shard's cell, virtual clock,
/// admission counters, supervision state, and owning tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// Shard index (row-major cell index).
    pub index: usize,
    /// The shard's cell as `(cx, cy)`.
    pub cell: (usize, usize),
    /// The shard's current open slot.
    pub slot: usize,
    /// Whether the shard's grid still has open slots.
    pub open: bool,
    /// Tasks materialized into the shard's scenario.
    pub tasks: usize,
    /// Tasks staged for future release.
    pub staged: usize,
    /// Submissions admitted since load.
    pub admitted: u64,
    /// Submissions rejected since load.
    pub rejected: u64,
    /// Submissions waiting in the open slot.
    pub pending: usize,
    /// Supervision state (in-process shards are always `up`).
    pub health: crate::shard::ShardHealth,
    /// Child-process restarts performed by the supervisor.
    pub restarts: u64,
    /// Journaled operations replayed into restarted children.
    pub replay: u64,
    /// The tenant this shard belongs to (`default` on a plain daemon).
    pub tenant: String,
    /// The tenant's routing-map version the shard serves under.
    pub map_version: u64,
}

/// How requests cross the wire after the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireMode {
    /// Protocols v1/v2: newline-terminated text both ways.
    Text,
    /// Protocol v3: length-prefixed binary frames carrying the same text
    /// requests/replies, plus batched submissions.
    Framed,
}

/// A connected protocol client. One request is in flight at a time
/// (the protocol is strictly request/reply).
///
/// The idempotent read-only queries — [`shards`](Client::shards),
/// [`metrics`](Client::metrics), [`export`](Client::export) — survive a
/// dropped connection transparently: on `ECONNRESET`/`EPIPE`/EOF the
/// client reconnects to the remembered peer, re-negotiates the exact
/// `HELLO` version this session had (re-selecting its tenant, if one was
/// chosen), and retries the query once. Mutating requests never
/// reconnect — a `SUBMIT` or `TICK` whose connection died may or may not
/// have been applied, and silently retrying it could double-apply.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    mode: WireMode,
    /// The peer this session dialed, for transparent reconnects.
    peer: Option<std::net::SocketAddr>,
    /// The armed request deadline, re-applied across reconnects.
    deadline: Option<Duration>,
    /// The `HELLO` version token the session actually negotiated.
    hello: &'static str,
    /// The tenant selected with [`tenant`](Client::tenant), re-selected
    /// (by id only — never the quota, which is a mutation) on reconnect.
    tenant: Option<String>,
}

impl Client {
    /// Connects and performs the v1 `HELLO` handshake.
    ///
    /// The whole connect + greeting exchange is retried up to two more
    /// times with deterministic backoff (10 ms, then 50 ms) when the
    /// failure is transient: `ECONNREFUSED` (listener not bound yet) or
    /// `ECONNRESET`/`EPIPE`/EOF during `HELLO` (a daemon restarting
    /// between accept and greeting). Any other error fails immediately.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Self::connect_with_deadline(addr, None)
    }

    /// [`connect`](Client::connect) with the socket deadline applied
    /// *before* the greeting: a peer that accepts and then never sends
    /// its `HELLO` reply (a wedged daemon, an exhausted handler pool)
    /// fails with [`ClientError::Timeout`] instead of hanging the
    /// handshake forever. The deadline stays armed on the session, as if
    /// [`set_timeout`](Client::set_timeout) had been called.
    pub fn connect_with_deadline<A: ToSocketAddrs>(
        addr: A,
        deadline: Option<Duration>,
    ) -> Result<Client, ClientError> {
        Self::connect_with_retry(&addr, deadline, |client| {
            client.request_fields(&format!("HELLO {VERSION}"))?;
            Ok(())
        })
        .map(|(client, ())| client)
    }

    /// Connects with the v2 `HELLO` handshake; returns the client and the
    /// shard topology the endpoint advertised. Works against both a
    /// sharded router and a plain daemon (which reports one shard on a
    /// 1×1 grid). Uses the same bounded connect + greeting retry as
    /// [`connect`](Client::connect).
    pub fn connect_v2<A: ToSocketAddrs>(addr: A) -> Result<(Client, Topology), ClientError> {
        Self::connect_with_retry(&addr, None, |client| {
            let fields = client.request_fields(&format!("HELLO {VERSION_V2}"))?;
            client.hello = VERSION_V2;
            parse_topology(&fields)
        })
    }

    /// Connects with the v3 `HELLO` handshake — binary framing with
    /// batched submissions — falling back *on the same connection* to v2
    /// and then v1 when the daemon answers `ERR version`. The handshake
    /// itself is plain text either way, so an old daemon's rejection can
    /// never misframe the stream; against a v1-only daemon the topology
    /// is the synthesized single-shard 1×1 grid. Check
    /// [`is_binary`](Client::is_binary) for the negotiated mode. Uses the
    /// same bounded connect + greeting retry as [`connect`](Client::connect).
    pub fn connect_v3<A: ToSocketAddrs>(addr: A) -> Result<(Client, Topology), ClientError> {
        Self::connect_with_retry(&addr, None, |client| {
            match client.request_fields(&format!("HELLO {VERSION_V3}")) {
                Ok(fields) => {
                    let topology = parse_topology(&fields)?;
                    // The daemon switches to frames right after its OK.
                    client.mode = WireMode::Framed;
                    client.hello = VERSION_V3;
                    Ok(topology)
                }
                Err(ClientError::Server { code, .. }) if code == "version" => {
                    match client.request_fields(&format!("HELLO {VERSION_V2}")) {
                        Ok(fields) => {
                            client.hello = VERSION_V2;
                            parse_topology(&fields)
                        }
                        Err(ClientError::Server { code, .. }) if code == "version" => {
                            client.request_fields(&format!("HELLO {VERSION}"))?;
                            Ok(Topology {
                                shards: 1,
                                cells: (1, 1),
                            })
                        }
                        Err(e) => Err(e),
                    }
                }
                Err(e) => Err(e),
            }
        })
    }

    /// Whether the session negotiated protocol v3 binary framing.
    pub fn is_binary(&self) -> bool {
        self.mode == WireMode::Framed
    }

    /// Runs connect-then-greet attempts until one succeeds, a
    /// non-transient error occurs, or the backoff schedule is exhausted.
    /// Retrying the full exchange (not just the connect) covers a daemon
    /// that accepts and then dies before greeting: the reset/EOF surfaces
    /// while reading the `HELLO` reply, and the next attempt reaches its
    /// restarted successor.
    fn connect_with_retry<A: ToSocketAddrs, T>(
        addr: &A,
        deadline: Option<Duration>,
        hello: impl Fn(&mut Client) -> Result<T, ClientError>,
    ) -> Result<(Client, T), ClientError> {
        let mut delays = CONNECT_RETRY_DELAYS.iter();
        loop {
            let attempt = Self::connect_transport(addr, deadline).and_then(|mut client| {
                let greeting = hello(&mut client)?;
                Ok((client, greeting))
            });
            match attempt {
                Ok(connected) => return Ok(connected),
                Err(e) if e.transient_for_connect() => match delays.next() {
                    Some(delay) => std::thread::sleep(*delay),
                    None => return Err(e),
                },
                Err(e) => return Err(e),
            }
        }
    }

    /// Opens the TCP stream; no handshake, no retry (the caller's retry
    /// loop wraps connect and greeting together). The deadline is armed
    /// here — before any greeting byte moves — so even the handshake
    /// reads and writes are bounded.
    fn connect_transport<A: ToSocketAddrs>(
        addr: &A,
        deadline: Option<Duration>,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(deadline).map_err(ClientError::Io)?;
        stream
            .set_write_timeout(deadline)
            .map_err(ClientError::Io)?;
        let peer = stream.peer_addr().ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            mode: WireMode::Text,
            peer,
            deadline,
            hello: VERSION,
            tenant: None,
        })
    }

    /// Sets (or clears) the per-request deadline: applied to every
    /// subsequent socket read and write via
    /// [`TcpStream::set_read_timeout`]/[`TcpStream::set_write_timeout`].
    /// When a reply does not arrive within the deadline the request fails
    /// with [`ClientError::Timeout`] (`code() == Some("timeout")`) instead
    /// of blocking forever on a stalled daemon. After a timeout the stream
    /// may hold a partial reply, so the session should be abandoned.
    pub fn set_timeout(&mut self, deadline: Option<Duration>) -> Result<(), ClientError> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(deadline).map_err(ClientError::Io)?;
        stream
            .set_write_timeout(deadline)
            .map_err(ClientError::Io)?;
        self.deadline = deadline;
        Ok(())
    }

    /// Sends one request line (plus an optional multi-line payload) and
    /// reads the reply — as text lines, or inside `OP_TEXT`/`OP_REPLY`
    /// frames on a v3 session. Either way the request and reply bytes are
    /// identical; only the envelope differs.
    fn request(&mut self, line: &str, payload: Option<&str>) -> Result<Payload, ClientError> {
        if self.mode == WireMode::Framed {
            return self.request_framed(line, payload);
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        if let Some(payload) = payload {
            self.writer.write_all(payload.as_bytes())?;
            if !payload.is_empty() && !payload.ends_with('\n') {
                self.writer.write_all(b"\n")?;
            }
        }
        self.writer.flush()?;
        let head = self.read_line()?;
        let (kind, rest) = head.split_once(' ').unwrap_or((head.as_str(), ""));
        match kind {
            "OK" => Ok(Payload::Fields(rest.to_string())),
            "DATA" => {
                let count: usize = rest
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("bad DATA count `{rest}`")))?;
                let mut document = String::new();
                for _ in 0..count {
                    document.push_str(&self.read_line()?);
                    document.push('\n');
                }
                Ok(Payload::Document(document))
            }
            "ERR" => {
                let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
                Err(ClientError::Server {
                    code: code.to_string(),
                    message: message.to_string(),
                })
            }
            other => Err(ClientError::Protocol(format!("unknown reply `{other}`"))),
        }
    }

    /// The v3 envelope: the request line and any payload travel inside
    /// one `OP_TEXT` frame; the reply (including a `DATA` document) comes
    /// back whole inside one `OP_REPLY` frame.
    fn request_framed(
        &mut self,
        line: &str,
        payload: Option<&str>,
    ) -> Result<Payload, ClientError> {
        let mut body = Vec::with_capacity(line.len() + 2 + payload.map_or(0, str::len));
        body.extend_from_slice(line.as_bytes());
        body.push(b'\n');
        if let Some(payload) = payload {
            body.extend_from_slice(payload.as_bytes());
            if !payload.is_empty() && !payload.ends_with('\n') {
                body.push(b'\n');
            }
        }
        framing::write_frame(&mut self.writer, framing::OP_TEXT, &body)?;
        let frame = self.read_frame()?;
        if frame.opcode != framing::OP_REPLY {
            return Err(ClientError::Protocol(format!(
                "expected a reply frame, got opcode {}",
                frame.opcode
            )));
        }
        parse_framed_reply(&frame.body)
    }

    /// Reads one frame, mapping a violated length prefix onto the
    /// protocol error space (timeouts and EOF keep their io semantics).
    fn read_frame(&mut self) -> Result<framing::Frame, ClientError> {
        framing::read_frame(&mut self.reader).map_err(|e| {
            if e.kind() == std::io::ErrorKind::InvalidData {
                ClientError::Protocol(e.to_string())
            } else {
                ClientError::from(e)
            }
        })
    }

    fn request_fields(&mut self, line: &str) -> Result<String, ClientError> {
        match self.request(line, None)? {
            Payload::Fields(fields) => Ok(fields),
            Payload::Document(_) => Err(ClientError::Protocol("expected OK, got DATA".to_string())),
        }
    }

    fn request_document(&mut self, line: &str) -> Result<String, ClientError> {
        match self.request(line, None)? {
            Payload::Document(document) => Ok(document),
            Payload::Fields(_) => Err(ClientError::Protocol("expected DATA, got OK".to_string())),
        }
    }

    /// [`request_document`](Client::request_document) for **idempotent
    /// read-only** queries only: on a disconnect the session is
    /// re-established ([`reconnect`](Client::reconnect)) and the query is
    /// retried exactly once. Safe because the query mutates nothing on
    /// the peer — asking twice answers the same question.
    fn request_document_reconnecting(&mut self, line: &str) -> Result<String, ClientError> {
        match self.request_document(line) {
            Err(e) if e.disconnected() => {
                self.reconnect()?;
                self.request_document(line)
            }
            other => other,
        }
    }

    /// Re-establishes a dropped session: dials the remembered peer (with
    /// the same bounded retry as the original connect, covering a daemon
    /// mid-restart), re-negotiates the **exact** `HELLO` version this
    /// session had — a downgrade mid-session would silently change
    /// semantics, so an endpoint that no longer speaks it is an error —
    /// and re-selects the session tenant by id. The tenant quota, if one
    /// was ever sent, is a mutation and is never re-sent.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let peer = self.peer.ok_or_else(|| {
            ClientError::Protocol("no remembered peer address to reconnect to".to_string())
        })?;
        let hello = self.hello;
        let (mut fresh, ()) = Self::connect_with_retry(&peer, self.deadline, |client| {
            client.request_fields(&format!("HELLO {hello}"))?;
            if hello == VERSION_V3 {
                client.mode = WireMode::Framed;
            }
            client.hello = hello;
            Ok(())
        })?;
        if let Some(tenant) = &self.tenant {
            fresh.request_fields(&format!("TENANT {tenant}"))?;
            fresh.tenant = Some(tenant.clone());
        }
        *self = fresh;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            // EOF mid-reply is a transport failure, not a protocol one:
            // connect-time retry and the router's crash detection both
            // classify on the io kind.
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-reply",
            )));
        }
        Ok(line.trim_end().to_string())
    }

    /// Loads a scenario into a fresh daemon, starting its engine.
    pub fn load(&mut self, scenario: &Scenario) -> Result<(), ClientError> {
        let text = model_io::write_scenario(scenario);
        let count = text.lines().count();
        match self.request(&format!("LOAD {count}"), Some(&text))? {
            Payload::Fields(_) => Ok(()),
            Payload::Document(_) => Err(ClientError::Protocol("expected OK, got DATA".to_string())),
        }
    }

    /// Submits a task into the current open slot; returns its assigned id
    /// and release slot.
    pub fn submit(&mut self, spec: &TaskSpec) -> Result<(TaskId, usize), ClientError> {
        let line = format!(
            "SUBMIT {} {} {} {} {} {}",
            spec.device_pos.x,
            spec.device_pos.y,
            spec.device_facing.radians(),
            spec.end_slot,
            spec.required_energy,
            spec.weight
        );
        let fields = self.request_fields(&line)?;
        let task = parse_field(&fields, "task")?;
        let release = parse_field(&fields, "release")?;
        // A checked narrowing: a daemon that hands out ids past the u32
        // task-id space is broken, and truncating would silently alias
        // some earlier task.
        let task = u32::try_from(task).map_err(|_| {
            ClientError::Protocol(format!("task id {task} overflows the u32 task-id space"))
        })?;
        Ok((TaskId(task), release))
    }

    /// Submits many tasks in one exchange; returns one outcome per spec,
    /// in order. On a v3 session the whole batch crosses the wire as a
    /// single `OP_BATCH` frame answered by one vectored ack; on a text
    /// session it degrades to sequential [`submit`](Client::submit)s.
    /// Per-record rejections (overload, a down cell, …) come back as
    /// inner `Err`s; the outer `Err` is reserved for transport/protocol
    /// failures that abort the whole exchange.
    #[allow(clippy::type_complexity)]
    pub fn submit_batch(
        &mut self,
        specs: &[TaskSpec],
    ) -> Result<Vec<Result<(TaskId, usize), ClientError>>, ClientError> {
        if self.mode == WireMode::Text {
            let mut outcomes = Vec::with_capacity(specs.len());
            for spec in specs {
                match self.submit(spec) {
                    Ok(ok) => outcomes.push(Ok(ok)),
                    Err(e @ ClientError::Server { .. }) => outcomes.push(Err(e)),
                    Err(e) => return Err(e),
                }
            }
            return Ok(outcomes);
        }
        framing::write_frame(
            &mut self.writer,
            framing::OP_BATCH,
            &framing::encode_batch(specs),
        )?;
        let frame = self.read_frame()?;
        if frame.opcode == framing::OP_REPLY {
            // A whole-batch failure: the daemon answered with a text
            // reply (e.g. `ERR bad-request` for a malformed frame).
            return Err(match parse_framed_reply(&frame.body) {
                Err(e) => e,
                Ok(_) => {
                    ClientError::Protocol("expected a batch ack, got a success reply".to_string())
                }
            });
        }
        if frame.opcode != framing::OP_BATCH_ACK {
            return Err(ClientError::Protocol(format!(
                "expected a batch ack frame, got opcode {}",
                frame.opcode
            )));
        }
        let acks = framing::decode_batch_ack(&frame.body).map_err(ClientError::Protocol)?;
        if acks.len() != specs.len() {
            return Err(ClientError::Protocol(format!(
                "batch of {} submissions acknowledged {} records",
                specs.len(),
                acks.len()
            )));
        }
        acks.into_iter()
            .map(|ack| match ack {
                framing::BatchAck::Ok { task, release } => {
                    let task = u32::try_from(task).map_err(|_| {
                        ClientError::Protocol(format!(
                            "task id {task} overflows the u32 task-id space"
                        ))
                    })?;
                    let release = usize::try_from(release).map_err(|_| {
                        ClientError::Protocol(format!("release slot {release} overflows usize"))
                    })?;
                    Ok(Ok((TaskId(task), release)))
                }
                framing::BatchAck::Err { code, message } => {
                    Ok(Err(ClientError::Server { code, message }))
                }
            })
            .collect()
    }

    /// Closes `n` slots; returns `(clock, still_open)`.
    pub fn tick(&mut self, n: usize) -> Result<(usize, bool), ClientError> {
        let fields = self.request_fields(&format!("TICK {n}"))?;
        Ok((
            parse_field(&fields, "slot")?,
            parse_field(&fields, "open")? == 1,
        ))
    }

    /// The current open slot and whether the grid still has slots.
    pub fn clock(&mut self) -> Result<(usize, bool), ClientError> {
        let fields = self.request_fields("CLOCK?")?;
        Ok((
            parse_field(&fields, "slot")?,
            parse_field(&fields, "open")? == 1,
        ))
    }

    /// The schedule as planned/executed so far.
    pub fn schedule(&mut self) -> Result<Schedule, ClientError> {
        let document = self.request_document("SCHEDULE?")?;
        model_io::read_schedule(&document)
            .map_err(|e| ClientError::Protocol(format!("bad schedule document: {e}")))
    }

    /// `(full P1 utility, relaxed HASTE-R value)` of the current schedule.
    pub fn utility(&mut self) -> Result<(f64, f64), ClientError> {
        let fields = self.request_fields("UTILITY?")?;
        Ok((
            parse_f64_field(&fields, "utility")?,
            parse_f64_field(&fields, "relaxed")?,
        ))
    }

    /// Per-task weighted utility terms `(full, relaxed)` in task-id
    /// (= arrival) order — the exact addends of [`utility`](Client::utility)'s
    /// totals. v2; the router's supervisor uses this to merge shard
    /// streams bit-identically.
    pub fn parts(&mut self) -> Result<crate::shard::UtilityParts, ClientError> {
        let document = self.request_document("PARTS?")?;
        let mut full = Vec::new();
        let mut relaxed = Vec::new();
        for line in document.lines() {
            let pair = line
                .split_once(' ')
                .and_then(|(f, r)| Some((f.parse::<f64>().ok()?, r.parse::<f64>().ok()?)))
                .ok_or_else(|| ClientError::Protocol(format!("bad parts line `{line}`")))?;
            full.push(pair.0);
            relaxed.push(pair.1);
        }
        Ok(crate::shard::UtilityParts { full, relaxed })
    }

    /// Solver metrics and counters, as `(key, value)` pairs. Idempotent:
    /// survives a dropped connection by transparent reconnect.
    pub fn metrics(&mut self) -> Result<Vec<(String, String)>, ClientError> {
        let document = self.request_document_reconnecting("METRICS?")?;
        document
            .lines()
            .map(|line| {
                line.split_once(' ')
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .ok_or_else(|| ClientError::Protocol(format!("bad metrics line `{line}`")))
            })
            .collect()
    }

    /// The typed metric registry as Prometheus-style exposition text
    /// (`EXPORT?`). Parse with [`haste_metrics::Snapshot::parse`].
    /// Idempotent: survives a dropped connection by transparent
    /// reconnect.
    pub fn export(&mut self) -> Result<String, ClientError> {
        self.request_document_reconnecting("EXPORT?")
    }

    /// Per-shard slot/cell/admission counters (v2). A plain daemon
    /// answers with itself as shard 0 on cell `(0, 0)`. Idempotent:
    /// survives a dropped connection by transparent reconnect.
    pub fn shards(&mut self) -> Result<Vec<ShardInfo>, ClientError> {
        let document = self.request_document_reconnecting("SHARDS?")?;
        document.lines().map(parse_shard_line).collect()
    }

    /// The daemon's full engine state as snapshot text.
    pub fn snapshot(&mut self) -> Result<String, ClientError> {
        self.request_document("SNAPSHOT")
    }

    /// Replaces the daemon's engine state from snapshot text; returns the
    /// restored clock.
    pub fn restore(&mut self, snapshot: &str) -> Result<usize, ClientError> {
        let count = snapshot.lines().count();
        match self.request(&format!("RESTORE {count}"), Some(snapshot))? {
            Payload::Fields(fields) => parse_field(&fields, "slot"),
            Payload::Document(_) => Err(ClientError::Protocol("expected OK, got DATA".to_string())),
        }
    }

    /// Selects the session's tenant (v3 routers). With `quota`, also sets
    /// the tenant's per-slot admission quota — applied immediately if the
    /// tenant exists, otherwise at its `LOAD`.
    pub fn tenant(&mut self, id: &str, quota: Option<u64>) -> Result<(), ClientError> {
        let request = match quota {
            Some(q) => format!("TENANT {id} {q}"),
            None => format!("TENANT {id}"),
        };
        self.request_fields(&request)?;
        self.tenant = Some(id.to_string());
        Ok(())
    }

    /// Live-splits one cell of the session tenant's partition; returns the
    /// new `(cell_count, routing_map_version)`.
    pub fn reshard_split(&mut self, cell: usize) -> Result<(usize, u64), ClientError> {
        let fields = self.request_fields(&format!("RESHARD SPLIT {cell}"))?;
        Ok((
            parse_field(&fields, "cells")?,
            parse_field(&fields, "map")? as u64,
        ))
    }

    /// Live-merges two sibling cells back together; returns the new
    /// `(cell_count, routing_map_version)`.
    pub fn reshard_merge(&mut self, a: usize, b: usize) -> Result<(usize, u64), ClientError> {
        let fields = self.request_fields(&format!("RESHARD MERGE {a} {b}"))?;
        Ok((
            parse_field(&fields, "cells")?,
            parse_field(&fields, "map")? as u64,
        ))
    }

    /// Closes the session politely.
    pub fn bye(mut self) -> Result<(), ClientError> {
        self.request_fields("BYE")?;
        Ok(())
    }
}

/// Parses the shard topology fields of a v2/v3 `HELLO` greeting.
fn parse_topology(fields: &str) -> Result<Topology, ClientError> {
    let shards = parse_field(fields, "shards")?;
    let cells_text = find_value(fields, "cells")?;
    let cells = cells_text
        .split_once('x')
        .and_then(|(cx, cy)| Some((cx.parse().ok()?, cy.parse().ok()?)))
        .ok_or_else(|| {
            ClientError::Protocol(format!("bad cells field `{cells_text}` in `{fields}`"))
        })?;
    Ok(Topology { shards, cells })
}

/// Parses an `OP_REPLY` frame body: the exact text reply the v1/v2
/// protocol would have sent, with any `DATA` document riding in the same
/// frame after the head line.
fn parse_framed_reply(body: &[u8]) -> Result<Payload, ClientError> {
    let text = String::from_utf8_lossy(body);
    let (head, rest) = text.split_once('\n').unwrap_or((text.as_ref(), ""));
    let (kind, args) = head.split_once(' ').unwrap_or((head, ""));
    match kind {
        "OK" => Ok(Payload::Fields(args.trim_end().to_string())),
        "DATA" => {
            let count: usize = args
                .trim()
                .parse()
                .map_err(|_| ClientError::Protocol(format!("bad DATA count `{args}`")))?;
            let mut document = String::new();
            let mut lines = rest.lines();
            for _ in 0..count {
                match lines.next() {
                    Some(line) => {
                        document.push_str(line);
                        document.push('\n');
                    }
                    None => {
                        return Err(ClientError::Protocol(
                            "DATA frame shorter than its line count".to_string(),
                        ))
                    }
                }
            }
            Ok(Payload::Document(document))
        }
        "ERR" => {
            let (code, message) = args.split_once(' ').unwrap_or((args, ""));
            Err(ClientError::Server {
                code: code.to_string(),
                message: message.trim_end().to_string(),
            })
        }
        other => Err(ClientError::Protocol(format!("unknown reply `{other}`"))),
    }
}

/// Extracts `key=<usize>` from an `OK` field list.
fn parse_field(fields: &str, key: &str) -> Result<usize, ClientError> {
    find_value(fields, key)?
        .parse()
        .map_err(|_| ClientError::Protocol(format!("`{key}` is not an integer in `{fields}`")))
}

/// Extracts `key=<f64>` from an `OK` field list.
fn parse_f64_field(fields: &str, key: &str) -> Result<f64, ClientError> {
    find_value(fields, key)?
        .parse()
        .map_err(|_| ClientError::Protocol(format!("`{key}` is not a number in `{fields}`")))
}

fn find_value<'a>(fields: &'a str, key: &str) -> Result<&'a str, ClientError> {
    fields
        .split_whitespace()
        .find_map(|field| field.strip_prefix(key)?.strip_prefix('='))
        .ok_or_else(|| ClientError::Protocol(format!("missing `{key}=` in `{fields}`")))
}

/// Parses one `SHARDS?` payload line.
fn parse_shard_line(line: &str) -> Result<ShardInfo, ClientError> {
    let cell_text = find_value(line, "cell")?;
    let cell = cell_text
        .split_once(',')
        .and_then(|(cx, cy)| Some((cx.parse().ok()?, cy.parse().ok()?)))
        .ok_or_else(|| {
            ClientError::Protocol(format!("bad cell field `{cell_text}` in `{line}`"))
        })?;
    let health_text = find_value(line, "health")?;
    let health = crate::shard::ShardHealth::parse(health_text).ok_or_else(|| {
        ClientError::Protocol(format!("bad health field `{health_text}` in `{line}`"))
    })?;
    let tenant = find_value(line, "tenant")?.to_string();
    Ok(ShardInfo {
        tenant,
        map_version: parse_field(line, "map")? as u64,
        index: parse_field(line, "shard")?,
        cell,
        slot: parse_field(line, "slot")?,
        open: parse_field(line, "open")? == 1,
        tasks: parse_field(line, "tasks")?,
        staged: parse_field(line, "staged")?,
        admitted: parse_field(line, "admitted")? as u64,
        rejected: parse_field(line, "rejected")? as u64,
        pending: parse_field(line, "pending")?,
        health,
        restarts: parse_field(line, "restarts")? as u64,
        replay: parse_field(line, "replay")? as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{serve, ServerConfig};
    use std::net::TcpListener;

    /// Grab a free port by binding, note the address, and release it so a
    /// daemon can bind it shortly after.
    fn reserve_addr() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        listener
            .local_addr()
            .expect("bound listener has an address")
    }

    #[test]
    fn connect_retries_through_a_startup_race() {
        let addr = reserve_addr();
        // Nothing is listening yet; the daemon comes up 30 ms from now —
        // after the client's first (immediate) and second (+10 ms)
        // attempts, before its third (+60 ms).
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            serve(ServerConfig {
                addr: addr.to_string(),
                worker_threads: 2,
                ..ServerConfig::default()
            })
            .expect("bind the reserved address")
        });
        let client = Client::connect(addr).expect("connect must survive the startup race");
        client.bye().expect("polite shutdown");
        server.join().expect("server thread").shutdown();
    }

    #[test]
    fn connect_gives_up_after_three_refused_attempts() {
        let addr = reserve_addr();
        match Client::connect(addr) {
            Err(ClientError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::ConnectionRefused);
            }
            Err(other) => panic!("expected ConnectionRefused after retries, got {other}"),
            Ok(_) => panic!("nothing listens on a reserved-then-released port"),
        }
    }

    #[test]
    fn shard_line_roundtrips_through_the_parser() {
        let status = crate::shard::ShardStatus {
            clock: 3,
            open: true,
            tasks: 7,
            staged: 2,
            admitted: 9,
            rejected: 1,
            pending: 4,
            ..crate::shard::ShardStatus::default()
        };
        let line = crate::server::shard_line(
            5,
            (1, 2),
            &status,
            crate::shard::ShardHealth::Degraded,
            2,
            6,
            "acme",
            4,
        );
        let info = parse_shard_line(line.trim_end()).expect("well-formed line");
        assert_eq!(
            info,
            ShardInfo {
                index: 5,
                cell: (1, 2),
                slot: 3,
                open: true,
                tasks: 7,
                staged: 2,
                admitted: 9,
                rejected: 1,
                pending: 4,
                health: crate::shard::ShardHealth::Degraded,
                restarts: 2,
                replay: 6,
                tenant: "acme".to_string(),
                map_version: 4,
            }
        );
    }

    #[test]
    fn connect_retries_through_a_dropped_greeting() {
        // Attempt 1 is accepted and then dropped without a greeting (the
        // daemon-restart race: reset/EOF surfaces mid-HELLO); the real
        // daemon binds the same port before attempt 2 (+10 ms).
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let dropper = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("first connection attempt");
            drop(stream); // slam the door mid-handshake
            drop(listener); // free the port for the real daemon
            serve(ServerConfig {
                addr: addr.to_string(),
                worker_threads: 2,
                ..ServerConfig::default()
            })
            .expect("rebind the released address")
        });
        let client = Client::connect(addr).expect("connect must survive a dropped greeting");
        client.bye().expect("polite shutdown");
        dropper.join().expect("server thread").shutdown();
    }

    #[test]
    fn task_ids_past_u32_are_rejected_structurally() {
        // A (broken or future) daemon handing out ids past the u32 task-id
        // space: the old cast truncated 2^32 to task 0, silently aliasing
        // the first task. The client must refuse instead.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let fake = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("client connects");
            let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            let mut line = String::new();
            std::io::BufRead::read_line(&mut reader, &mut line).expect("HELLO");
            std::io::Write::write_all(&mut stream, b"OK haste-service v1\n").expect("greet");
            line.clear();
            std::io::BufRead::read_line(&mut reader, &mut line).expect("SUBMIT");
            std::io::Write::write_all(&mut stream, b"OK task=4294967296 release=0\n")
                .expect("oversized id reply");
        });
        let mut client = Client::connect(addr).expect("handshake");
        let spec = TaskSpec {
            device_pos: haste_geometry::Vec2::new(1.0, 2.0),
            device_facing: haste_geometry::Angle::from_radians(0.0),
            end_slot: 5,
            required_energy: 100.0,
            weight: 1.0,
        };
        let err = client.submit(&spec).expect_err("id overflows u32");
        match err {
            ClientError::Protocol(reason) => {
                assert!(reason.contains("4294967296"), "{reason}");
            }
            other => panic!("expected a protocol error, got {other}"),
        }
        fake.join().expect("fake daemon thread");
    }

    /// A scripted text-protocol daemon: answers each `HELLO` from the
    /// given script, then serves `BYE`. Stands in for older daemons in
    /// the negotiation tests.
    fn scripted_hello_daemon(
        listener: TcpListener,
        script: Vec<(&'static str, &'static str)>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("client connects");
            let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            for (expect, reply) in script {
                let mut line = String::new();
                std::io::BufRead::read_line(&mut reader, &mut line).expect("request line");
                assert_eq!(line.trim_end(), expect, "negotiation went off-script");
                std::io::Write::write_all(&mut stream, reply.as_bytes()).expect("reply");
            }
            let mut line = String::new();
            std::io::BufRead::read_line(&mut reader, &mut line).expect("BYE");
            assert_eq!(line.trim_end(), "BYE");
            std::io::Write::write_all(&mut stream, b"OK bye\n").expect("bye reply");
        })
    }

    #[test]
    fn v3_falls_back_to_v2_on_the_same_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let daemon = scripted_hello_daemon(
            listener,
            vec![
                ("HELLO v3", "ERR version unsupported version `v3`\n"),
                ("HELLO v2", "OK haste-service v2 shards=4 cells=2x2\n"),
            ],
        );
        let (client, topology) = Client::connect_v3(addr).expect("fall back to v2");
        assert!(!client.is_binary(), "a v2 fallback must stay in text mode");
        assert_eq!(
            topology,
            Topology {
                shards: 4,
                cells: (2, 2)
            }
        );
        client.bye().expect("polite shutdown");
        daemon.join().expect("fake daemon thread");
    }

    #[test]
    fn v3_falls_back_to_v1_against_a_v1_only_daemon() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let daemon = scripted_hello_daemon(
            listener,
            vec![
                ("HELLO v3", "ERR version unsupported version `v3`\n"),
                ("HELLO v2", "ERR version unsupported version `v2`\n"),
                ("HELLO v1", "OK haste-service v1\n"),
            ],
        );
        let (client, topology) = Client::connect_v3(addr).expect("fall back to v1");
        assert!(!client.is_binary());
        assert_eq!(
            topology,
            Topology {
                shards: 1,
                cells: (1, 1)
            }
        );
        client.bye().expect("polite shutdown");
        daemon.join().expect("fake daemon thread");
    }

    #[test]
    fn a_non_version_hello_failure_is_not_swallowed_by_fallback() {
        // Only `ERR version` triggers the downgrade; any other structured
        // failure surfaces as-is so real errors are never masked.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let fake = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("client connects");
            let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            let mut line = String::new();
            std::io::BufRead::read_line(&mut reader, &mut line).expect("HELLO");
            std::io::Write::write_all(&mut stream, b"ERR internal handler panicked\n")
                .expect("reply");
        });
        match Client::connect_v3(addr) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, "internal"),
            Err(other) => panic!("expected the internal error through, got {other}"),
            Ok(_) => panic!("the handshake cannot succeed"),
        }
        fake.join().expect("fake daemon thread");
    }

    #[test]
    fn v3_negotiates_binary_framing_against_a_live_daemon() {
        let server = serve(ServerConfig {
            worker_threads: 2,
            ..ServerConfig::default()
        })
        .expect("start daemon");
        let (mut client, topology) = Client::connect_v3(server.addr()).expect("v3 handshake");
        assert!(client.is_binary(), "a live daemon speaks v3");
        assert_eq!(
            topology,
            Topology {
                shards: 1,
                cells: (1, 1)
            }
        );
        // A framed request round-trips and fails structurally (no
        // scenario loaded) instead of hanging or misframing.
        let err = client.clock().expect_err("no scenario loaded");
        assert_eq!(err.code(), Some("no-scenario"));
        client.bye().expect("polite framed shutdown");
        server.shutdown();
    }

    /// A scripted text daemon session on an already-accepted stream:
    /// answers each expected request with its reply, then returns the
    /// stream (dropped by the caller to slam the door, or kept to go
    /// on).
    fn run_script(
        stream: &mut TcpStream,
        reader: &mut std::io::BufReader<TcpStream>,
        script: &[(&str, &str)],
    ) {
        for (expect, reply) in script {
            let mut line = String::new();
            std::io::BufRead::read_line(reader, &mut line).expect("request line");
            assert_eq!(line.trim_end(), *expect, "session went off-script");
            std::io::Write::write_all(stream, reply.as_bytes()).expect("reply");
        }
    }

    #[test]
    fn read_only_queries_reconnect_through_a_dropped_session() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let daemon = std::thread::spawn(move || {
            // Session 1: greet, then slam the door on the first METRICS?
            // without a reply — the client sees EOF mid-reply.
            let (mut stream, _) = listener.accept().expect("first session");
            let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
            run_script(
                &mut stream,
                &mut reader,
                &[("HELLO v1", "OK haste-service v1\n")],
            );
            let mut line = String::new();
            std::io::BufRead::read_line(&mut reader, &mut line).expect("METRICS?");
            assert_eq!(line.trim_end(), "METRICS?");
            // Both handles must go: `reader` holds a clone of the socket,
            // and only closing the last handle delivers the EOF.
            drop(reader);
            drop(stream);
            // Session 2, same listener: the transparent reconnect must
            // re-run the same HELLO and then retry the query.
            let (mut stream, _) = listener.accept().expect("reconnect session");
            let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
            run_script(
                &mut stream,
                &mut reader,
                &[
                    ("HELLO v1", "OK haste-service v1\n"),
                    ("METRICS?", "DATA 1\nsolver_runs 3\n"),
                    ("BYE", "OK bye\n"),
                ],
            );
        });
        let mut client = Client::connect(addr).expect("handshake");
        let metrics = client.metrics().expect("the query survives the drop");
        assert_eq!(
            metrics,
            vec![("solver_runs".to_string(), "3".to_string())],
            "the retried reply must come through intact"
        );
        client.bye().expect("polite shutdown on the new session");
        daemon.join().expect("scripted daemon thread");
    }

    #[test]
    fn reconnect_reselects_the_tenant_without_its_quota() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let daemon = std::thread::spawn(move || {
            // Session 1: the tenant is selected WITH a quota; the door
            // slams on EXPORT?.
            let (mut stream, _) = listener.accept().expect("first session");
            let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
            run_script(
                &mut stream,
                &mut reader,
                &[
                    ("HELLO v1", "OK haste-service v1\n"),
                    ("TENANT acme 7", "OK tenant=acme\n"),
                ],
            );
            let mut line = String::new();
            std::io::BufRead::read_line(&mut reader, &mut line).expect("EXPORT?");
            assert_eq!(line.trim_end(), "EXPORT?");
            // Close both handles (the reader clones the socket), so the
            // client actually sees the EOF.
            drop(reader);
            drop(stream);
            // Session 2: the reconnect re-selects by id only — re-sending
            // the quota would be a mutation smuggled inside a read.
            let (mut stream, _) = listener.accept().expect("reconnect session");
            let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
            run_script(
                &mut stream,
                &mut reader,
                &[
                    ("HELLO v1", "OK haste-service v1\n"),
                    ("TENANT acme", "OK tenant=acme\n"),
                    ("EXPORT?", "DATA 1\n# TYPE haste_x counter\n"),
                ],
            );
        });
        let mut client = Client::connect(addr).expect("handshake");
        client.tenant("acme", Some(7)).expect("select the tenant");
        let document = client.export().expect("the query survives the drop");
        assert_eq!(document, "# TYPE haste_x counter\n");
        daemon.join().expect("scripted daemon thread");
    }

    #[test]
    fn mutating_requests_never_reconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let daemon = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("only session");
            let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
            run_script(
                &mut stream,
                &mut reader,
                &[("HELLO v1", "OK haste-service v1\n")],
            );
            let mut line = String::new();
            std::io::BufRead::read_line(&mut reader, &mut line).expect("TICK");
            assert_eq!(line.trim_end(), "TICK 1");
            // Drop both socket handles AND the listener: if TICK tried
            // to reconnect it would now get ECONNREFUSED instead of the
            // disconnect below, failing the match.
            drop(reader);
            drop(stream);
            drop(listener);
        });
        let mut client = Client::connect(addr).expect("handshake");
        let err = client.tick(1).expect_err("the connection died mid-TICK");
        daemon.join().expect("scripted daemon thread");
        assert!(
            err.disconnected(),
            "a mutating request must surface the raw disconnect, got {err}"
        );
    }

    #[test]
    fn a_stalled_daemon_times_out_instead_of_hanging() {
        // A listener that accepts and never replies: without a deadline
        // the request would block forever.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let stall = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("client connects");
            // Greet properly, then go silent while holding the socket open.
            let mut stream = stream;
            std::io::Write::write_all(&mut stream, b"OK haste-service v1\n")
                .expect("greeting write");
            std::thread::sleep(Duration::from_millis(500));
            drop(stream);
        });
        let mut client = Client::connect(addr).expect("the stalling daemon greets fine");
        client
            .set_timeout(Some(Duration::from_millis(50)))
            .expect("set the request deadline");
        let err = client.clock().expect_err("no reply ever comes");
        assert!(matches!(err, ClientError::Timeout), "got {err}");
        assert_eq!(err.code(), Some("timeout"));
        stall.join().expect("stall thread");
    }

    #[test]
    fn a_daemon_that_accepts_but_never_greets_times_out() {
        // The nastier stall: the listener accepts the connection and then
        // says nothing at all. The deadline is armed before the greeting
        // read, so connect fails with `Timeout` instead of hanging — and
        // `Timeout` is not a transient connect error, so no retry loop.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        let mute = std::thread::spawn(move || {
            if let Ok((stream, _)) = listener.accept() {
                std::thread::sleep(Duration::from_millis(500));
                drop(stream);
            }
        });
        let err = match Client::connect_with_deadline(addr, Some(Duration::from_millis(50))) {
            Ok(_) => panic!("the greeting never arrives, connect cannot succeed"),
            Err(e) => e,
        };
        assert!(matches!(err, ClientError::Timeout), "got {err}");
        assert_eq!(err.code(), Some("timeout"));
        mute.join().expect("mute thread");
    }
}
