//! A blocking typed client for the daemon's wire protocol.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use haste_distributed::TaskSpec;
use haste_model::{io as model_io, Scenario, Schedule, TaskId};

use crate::proto::VERSION;

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The daemon replied `ERR <code> <message>`.
    Server {
        /// Stable error code (see [`crate::proto::ErrCode`]).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// The daemon's reply did not match the protocol.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server error code, if this is a server-side rejection.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }
}

/// A successful reply: the `OK` fields or a `DATA` payload.
#[derive(Debug)]
enum Payload {
    Fields(String),
    Document(String),
}

/// A connected protocol client. One request is in flight at a time
/// (the protocol is strictly request/reply).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects and performs the `HELLO` handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        };
        client.request_fields(&format!("HELLO {VERSION}"))?;
        Ok(client)
    }

    /// Sends one request line (plus an optional multi-line payload) and
    /// reads the reply.
    fn request(&mut self, line: &str, payload: Option<&str>) -> Result<Payload, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        if let Some(payload) = payload {
            self.writer.write_all(payload.as_bytes())?;
            if !payload.is_empty() && !payload.ends_with('\n') {
                self.writer.write_all(b"\n")?;
            }
        }
        self.writer.flush()?;
        let head = self.read_line()?;
        let (kind, rest) = head.split_once(' ').unwrap_or((head.as_str(), ""));
        match kind {
            "OK" => Ok(Payload::Fields(rest.to_string())),
            "DATA" => {
                let count: usize = rest
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("bad DATA count `{rest}`")))?;
                let mut document = String::new();
                for _ in 0..count {
                    document.push_str(&self.read_line()?);
                    document.push('\n');
                }
                Ok(Payload::Document(document))
            }
            "ERR" => {
                let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
                Err(ClientError::Server {
                    code: code.to_string(),
                    message: message.to_string(),
                })
            }
            other => Err(ClientError::Protocol(format!("unknown reply `{other}`"))),
        }
    }

    fn request_fields(&mut self, line: &str) -> Result<String, ClientError> {
        match self.request(line, None)? {
            Payload::Fields(fields) => Ok(fields),
            Payload::Document(_) => Err(ClientError::Protocol("expected OK, got DATA".to_string())),
        }
    }

    fn request_document(&mut self, line: &str) -> Result<String, ClientError> {
        match self.request(line, None)? {
            Payload::Document(document) => Ok(document),
            Payload::Fields(_) => Err(ClientError::Protocol("expected DATA, got OK".to_string())),
        }
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(
                "connection closed mid-reply".to_string(),
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Loads a scenario into a fresh daemon, starting its engine.
    pub fn load(&mut self, scenario: &Scenario) -> Result<(), ClientError> {
        let text = model_io::write_scenario(scenario);
        let count = text.lines().count();
        match self.request(&format!("LOAD {count}"), Some(&text))? {
            Payload::Fields(_) => Ok(()),
            Payload::Document(_) => Err(ClientError::Protocol("expected OK, got DATA".to_string())),
        }
    }

    /// Submits a task into the current open slot; returns its assigned id
    /// and release slot.
    pub fn submit(&mut self, spec: &TaskSpec) -> Result<(TaskId, usize), ClientError> {
        let line = format!(
            "SUBMIT {} {} {} {} {} {}",
            spec.device_pos.x,
            spec.device_pos.y,
            spec.device_facing.radians(),
            spec.end_slot,
            spec.required_energy,
            spec.weight
        );
        let fields = self.request_fields(&line)?;
        let task = parse_field(&fields, "task")?;
        let release = parse_field(&fields, "release")?;
        Ok((TaskId(task as u32), release))
    }

    /// Closes `n` slots; returns `(clock, still_open)`.
    pub fn tick(&mut self, n: usize) -> Result<(usize, bool), ClientError> {
        let fields = self.request_fields(&format!("TICK {n}"))?;
        Ok((
            parse_field(&fields, "slot")?,
            parse_field(&fields, "open")? == 1,
        ))
    }

    /// The current open slot and whether the grid still has slots.
    pub fn clock(&mut self) -> Result<(usize, bool), ClientError> {
        let fields = self.request_fields("CLOCK?")?;
        Ok((
            parse_field(&fields, "slot")?,
            parse_field(&fields, "open")? == 1,
        ))
    }

    /// The schedule as planned/executed so far.
    pub fn schedule(&mut self) -> Result<Schedule, ClientError> {
        let document = self.request_document("SCHEDULE?")?;
        model_io::read_schedule(&document)
            .map_err(|e| ClientError::Protocol(format!("bad schedule document: {e}")))
    }

    /// `(full P1 utility, relaxed HASTE-R value)` of the current schedule.
    pub fn utility(&mut self) -> Result<(f64, f64), ClientError> {
        let fields = self.request_fields("UTILITY?")?;
        Ok((
            parse_f64_field(&fields, "utility")?,
            parse_f64_field(&fields, "relaxed")?,
        ))
    }

    /// Solver metrics and counters, as `(key, value)` pairs.
    pub fn metrics(&mut self) -> Result<Vec<(String, String)>, ClientError> {
        let document = self.request_document("METRICS?")?;
        document
            .lines()
            .map(|line| {
                line.split_once(' ')
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .ok_or_else(|| ClientError::Protocol(format!("bad metrics line `{line}`")))
            })
            .collect()
    }

    /// The daemon's full engine state as snapshot text.
    pub fn snapshot(&mut self) -> Result<String, ClientError> {
        self.request_document("SNAPSHOT")
    }

    /// Replaces the daemon's engine state from snapshot text; returns the
    /// restored clock.
    pub fn restore(&mut self, snapshot: &str) -> Result<usize, ClientError> {
        let count = snapshot.lines().count();
        match self.request(&format!("RESTORE {count}"), Some(snapshot))? {
            Payload::Fields(fields) => parse_field(&fields, "slot"),
            Payload::Document(_) => Err(ClientError::Protocol("expected OK, got DATA".to_string())),
        }
    }

    /// Closes the session politely.
    pub fn bye(mut self) -> Result<(), ClientError> {
        self.request_fields("BYE")?;
        Ok(())
    }
}

/// Extracts `key=<usize>` from an `OK` field list.
fn parse_field(fields: &str, key: &str) -> Result<usize, ClientError> {
    find_value(fields, key)?
        .parse()
        .map_err(|_| ClientError::Protocol(format!("`{key}` is not an integer in `{fields}`")))
}

/// Extracts `key=<f64>` from an `OK` field list.
fn parse_f64_field(fields: &str, key: &str) -> Result<f64, ClientError> {
    find_value(fields, key)?
        .parse()
        .map_err(|_| ClientError::Protocol(format!("`{key}` is not a number in `{fields}`")))
}

fn find_value<'a>(fields: &'a str, key: &str) -> Result<&'a str, ClientError> {
    fields
        .split_whitespace()
        .find_map(|field| field.strip_prefix(key)?.strip_prefix('='))
        .ok_or_else(|| ClientError::Protocol(format!("missing `{key}=` in `{fields}`")))
}
