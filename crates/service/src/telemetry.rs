//! The service-side instrumentation layer: pre-built handles into a
//! [`haste_metrics::Registry`] for the request hot path, the bridge that
//! projects engine [`ShardStatus`] fields onto their cataloged
//! `haste_engine_*` alias families, and the supervisor's per-cell
//! counters.
//!
//! Handle acquisition (which takes the registry mutex) happens once at
//! construction for every per-request series; recording on the hot path
//! is a relaxed atomic add on a pre-resolved handle. Series names come
//! from `haste_metrics::catalog` — lint rule C2 cross-checks that catalog
//! against the schema table in `docs/service_protocol.md`.
//!
//! This module owns the service crate's only wall-clock read
//! ([`clock_start`]): latency observations are measured here-adjacent and
//! fed to handles as microsecond values, so no other request-handling
//! file needs a D2 suppression.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use haste_metrics::{Counter, Histogram, Registry, Snapshot};

use crate::proto::{ErrCode, Reply};
use crate::shard::ShardStatus;

/// Every wire directive, for pre-building per-opcode series handles.
/// Must stay in sync with [`crate::proto::Request::opcode`].
const OPCODES: [&str; 16] = [
    "HELLO",
    "LOAD",
    "SUBMIT",
    "TICK",
    "CLOCK?",
    "SCHEDULE?",
    "UTILITY?",
    "PARTS?",
    "METRICS?",
    "EXPORT?",
    "SHARDS?",
    "TENANT",
    "RESHARD",
    "SNAPSHOT",
    "RESTORE",
    "BYE",
];

/// Starts a latency stopwatch. The one sanctioned monotonic-clock read of
/// the request path; the elapsed time feeds observability histograms and
/// never influences scheduling decisions.
pub(crate) fn clock_start() -> Instant {
    Instant::now() // haste-lint: allow(D2) — request latency instrumentation, observability only
}

/// Microseconds elapsed since a [`clock_start`] stopwatch, as the `f64`
/// that histogram bucket assignment consumes.
pub(crate) fn elapsed_us(start: Instant) -> f64 {
    start.elapsed().as_micros() as f64
}

/// Shared instrumentation state of one endpoint (daemon or router).
/// Cheap to clone; all handles point into the same registry.
#[derive(Clone)]
pub(crate) struct Telemetry {
    registry: Arc<Registry>,
    /// Per-opcode (requests counter, latency histogram) pairs, resolved
    /// once so the hot path never takes the registry mutex.
    requests: Arc<BTreeMap<&'static str, (Counter, Histogram)>>,
    batch_size: Histogram,
    batch_rejected: Histogram,
}

impl Telemetry {
    /// Builds a registry and resolves every hot-path handle.
    pub(crate) fn new() -> Telemetry {
        let registry = Arc::new(Registry::new());
        let mut requests = BTreeMap::new();
        for opcode in OPCODES {
            requests.insert(
                opcode,
                (
                    registry.counter_with("haste_service_requests_total", "opcode", opcode),
                    registry.histogram_with("haste_service_request_duration_us", "opcode", opcode),
                ),
            );
        }
        let batch_size = registry.histogram("haste_service_batch_size_records");
        let batch_rejected = registry.histogram("haste_service_batch_rejected_records");
        Telemetry {
            registry,
            requests: Arc::new(requests),
            batch_size,
            batch_rejected,
        }
    }

    /// The underlying registry, for snapshotting and ad-hoc series.
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records one handled text request: count + latency by opcode, and
    /// the error code if the reply is an `ERR`.
    pub(crate) fn observe_request(&self, opcode: &'static str, latency_us: f64, reply: &Reply) {
        if let Some((counter, histogram)) = self.requests.get(opcode) {
            counter.inc();
            histogram.observe(latency_us);
        }
        if let Reply::Err(code, _) = reply {
            self.count_error(*code);
        }
    }

    /// Records an error reply that never reached a handler (a request
    /// line that failed to parse has no opcode to attribute).
    pub(crate) fn count_error(&self, code: ErrCode) {
        self.registry
            .counter_with("haste_service_errors_total", "err_code", code.as_str())
            .inc();
    }

    /// Records one `OP_BATCH` submission frame: the size and rejection
    /// distributions, plus one `SUBMIT` request + latency observation per
    /// record — so the `SUBMIT` histogram count equals the number of
    /// records whichever wire mode carried them.
    pub(crate) fn observe_batch(&self, records: usize, rejected: usize, latency_us: f64) {
        self.batch_size.observe(records as f64);
        self.batch_rejected.observe(rejected as f64);
        if let Some((counter, histogram)) = self.requests.get("SUBMIT") {
            counter.add(records as u64);
            histogram.observe_n(latency_us, records as u64);
        }
    }

    /// Freezes the registry, folding an engine status (when one is
    /// available) into the cataloged `haste_engine_*` alias families.
    pub(crate) fn export(&self, status: Option<&ShardStatus>) -> Snapshot {
        let mut snap = self.registry.snapshot();
        if let Some(status) = status {
            engine_alias_snapshot(status, &mut snap);
        }
        snap
    }
}

/// Projects a [`ShardStatus`] onto the `haste_engine_*` families that
/// alias the legacy `METRICS?` keys. The `u128` phase timers go in
/// untruncated; merge semantics (sum vs max across shards) come from the
/// catalog at merge time.
pub(crate) fn engine_alias_snapshot(status: &ShardStatus, snap: &mut Snapshot) {
    snap.set_gauge("haste_engine_clock_slots", &[], status.clock as u128);
    snap.set_gauge("haste_engine_active_tasks", &[], status.tasks as u128);
    snap.set_gauge("haste_engine_staged_tasks", &[], status.staged as u128);
    snap.set_counter(
        "haste_engine_admitted_total",
        &[],
        u128::from(status.admitted),
    );
    snap.set_counter(
        "haste_engine_rejected_total",
        &[],
        u128::from(status.rejected),
    );
    snap.set_gauge("haste_engine_pending_tasks", &[], status.pending as u128);
    snap.set_gauge("haste_engine_worker_threads", &[], status.threads as u128);
    snap.set_counter(
        "haste_engine_oracle_marginals_total",
        &[],
        u128::from(status.oracle_marginals),
    );
    snap.set_counter(
        "haste_engine_oracle_commits_total",
        &[],
        u128::from(status.oracle_commits),
    );
    snap.set_counter(
        "haste_engine_negotiation_messages_total",
        &[],
        u128::from(status.messages),
    );
    snap.set_counter(
        "haste_engine_negotiation_rounds_total",
        &[],
        u128::from(status.rounds),
    );
    snap.set_counter(
        "haste_engine_instance_build_us_total",
        &[],
        status.instance_build_us,
    );
    snap.set_counter("haste_engine_greedy_us_total", &[], status.greedy_us);
    snap.set_counter("haste_engine_rounding_us_total", &[], status.rounding_us);
    snap.set_counter(
        "haste_engine_coverage_build_us_total",
        &[],
        status.coverage_build_us,
    );
}

/// The supervisor's per-cell fault counters, resolved once per shard
/// slot at launch.
#[derive(Clone)]
pub(crate) struct SupervisorCounters {
    /// Child restarts performed.
    pub restarts: Counter,
    /// Journaled operations replayed into restarted children.
    pub replays: Counter,
    /// Requests that hit the per-request deadline.
    pub deadlines: Counter,
}

impl SupervisorCounters {
    /// Resolves the counters of one cell (labeled by linear cell index).
    pub(crate) fn for_cell(registry: &Registry, cell: usize) -> SupervisorCounters {
        let cell_label = cell.to_string();
        SupervisorCounters {
            restarts: registry.counter_with("haste_supervisor_restarts_total", "cell", &cell_label),
            replays: registry.counter_with("haste_supervisor_replays_total", "cell", &cell_label),
            deadlines: registry.counter_with(
                "haste_supervisor_deadline_expired_total",
                "cell",
                &cell_label,
            ),
        }
    }
}

/// The router's per-tenant elasticity series, resolved once per tenant
/// when it is created (or restored).
#[derive(Clone)]
pub(crate) struct TenantCounters {
    /// Completed split/merge migrations.
    pub reshards: Counter,
    /// Submissions bounced by the tenant's per-slot admission quota.
    pub quota_rejected: Counter,
}

impl TenantCounters {
    /// Resolves the counters of one tenant (labeled by tenant id).
    pub(crate) fn for_tenant(registry: &Registry, tenant: &str) -> TenantCounters {
        TenantCounters {
            reshards: registry.counter_with("haste_router_reshards_total", "tenant", tenant),
            quota_rejected: registry.counter_with(
                "haste_router_tenant_rejected_total",
                "tenant",
                tenant,
            ),
        }
    }

    /// Publishes a tenant's current shard count (the
    /// `haste_router_tenant_shards` gauge).
    pub(crate) fn set_shards(registry: &Registry, tenant: &str, shards: usize) {
        registry
            .gauge_with("haste_router_tenant_shards", "tenant", tenant)
            .set(shards as u64);
    }
}

/// The durability layer's hot-path series, resolved once when the router
/// opens its WAL directory. Latency observations come from
/// [`clock_start`]/[`elapsed_us`] in the router, keeping the wall-clock
/// reads confined to this module's sanctioned site.
#[derive(Clone)]
pub(crate) struct WalTelemetry {
    /// Record append latency (framing + file write, excluding fsync).
    pub append: Histogram,
    /// Fsync latency at the configured durability points.
    pub fsync: Histogram,
}

impl WalTelemetry {
    /// Resolves the unlabeled WAL histograms.
    pub(crate) fn new(registry: &Registry) -> WalTelemetry {
        WalTelemetry {
            append: registry.histogram("haste_wal_append_duration_us"),
            fsync: registry.histogram("haste_wal_fsync_duration_us"),
        }
    }

    /// Counts one completed checkpoint of a tenant.
    pub(crate) fn count_checkpoint(registry: &Registry, tenant: &str) {
        registry
            .counter_with("haste_wal_checkpoints_total", "tenant", tenant)
            .inc();
    }

    /// Records one tenant recovered at startup and the number of log-tail
    /// operations replayed on top of its checkpoint.
    pub(crate) fn count_recovery(registry: &Registry, tenant: &str, replayed_ops: u64) {
        registry
            .counter_with("haste_wal_recoveries_total", "tenant", tenant)
            .inc();
        registry
            .counter_with("haste_wal_replayed_ops_total", "tenant", tenant)
            .add(replayed_ops);
    }
}

/// Counts one accepted submission against its cell's arrival-rate series
/// (`haste_router_cell_submits_total`, the auto-split load trigger).
pub(crate) fn count_cell_submit(registry: &Registry, cell: usize) {
    registry
        .counter_with("haste_router_cell_submits_total", "cell", &cell.to_string())
        .inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_observations_land_in_the_snapshot() {
        let telemetry = Telemetry::new();
        telemetry.observe_request("SUBMIT", 120.0, &Reply::Ok("task=1".to_string()));
        telemetry.observe_request(
            "SUBMIT",
            64.0,
            &Reply::Err(ErrCode::Overload, "queue full".to_string()),
        );
        telemetry.observe_batch(16, 3, 900.0);
        let snap = telemetry.export(None);
        match snap.get("haste_service_requests_total", &[("opcode", "SUBMIT")]) {
            Some(haste_metrics::Value::Counter(n)) => assert_eq!(*n, 18),
            other => panic!("expected SUBMIT counter, got {other:?}"),
        }
        match snap.get("haste_service_request_duration_us", &[("opcode", "SUBMIT")]) {
            Some(haste_metrics::Value::Histogram { buckets, .. }) => {
                assert_eq!(buckets.iter().sum::<u64>(), 18)
            }
            other => panic!("expected SUBMIT histogram, got {other:?}"),
        }
        match snap.get("haste_service_errors_total", &[("err_code", "overload")]) {
            Some(haste_metrics::Value::Counter(n)) => assert_eq!(*n, 1),
            other => panic!("expected overload counter, got {other:?}"),
        }
    }

    #[test]
    fn engine_aliases_cover_every_legacy_engine_key() {
        let status = ShardStatus {
            clock: 3,
            open: true,
            tasks: 7,
            staged: 2,
            admitted: 11,
            rejected: 4,
            pending: 1,
            threads: 8,
            oracle_marginals: 100,
            oracle_commits: 10,
            messages: 50,
            rounds: 5,
            instance_build_us: 1000,
            greedy_us: 2000,
            rounding_us: 300,
            coverage_build_us: 400,
        };
        let mut snap = Snapshot::new();
        engine_alias_snapshot(&status, &mut snap);
        // Every cataloged haste_engine_* family must be populated.
        for spec in haste_metrics::catalog::CATALOG {
            if spec.name.starts_with("haste_engine_") {
                assert!(
                    snap.get(spec.name, &[]).is_some(),
                    "alias family `{}` missing from the projection",
                    spec.name
                );
            }
        }
        match snap.get("haste_engine_clock_slots", &[]) {
            Some(haste_metrics::Value::Gauge(v)) => assert_eq!(*v, 3),
            other => panic!("expected clock gauge, got {other:?}"),
        }
    }

    #[test]
    fn wal_series_land_under_their_cataloged_names() {
        let registry = Registry::new();
        let wal = WalTelemetry::new(&registry);
        wal.append.observe(12.0);
        wal.fsync.observe(850.0);
        WalTelemetry::count_checkpoint(&registry, "acme");
        WalTelemetry::count_recovery(&registry, "acme", 17);
        let snap = registry.snapshot();
        match snap.get("haste_wal_append_duration_us", &[]) {
            Some(haste_metrics::Value::Histogram { buckets, .. }) => {
                assert_eq!(buckets.iter().sum::<u64>(), 1)
            }
            other => panic!("expected append histogram, got {other:?}"),
        }
        match snap.get("haste_wal_fsync_duration_us", &[]) {
            Some(haste_metrics::Value::Histogram { buckets, .. }) => {
                assert_eq!(buckets.iter().sum::<u64>(), 1)
            }
            other => panic!("expected fsync histogram, got {other:?}"),
        }
        match snap.get("haste_wal_checkpoints_total", &[("tenant", "acme")]) {
            Some(haste_metrics::Value::Counter(n)) => assert_eq!(*n, 1),
            other => panic!("expected checkpoint counter, got {other:?}"),
        }
        match snap.get("haste_wal_replayed_ops_total", &[("tenant", "acme")]) {
            Some(haste_metrics::Value::Counter(n)) => assert_eq!(*n, 17),
            other => panic!("expected replay counter, got {other:?}"),
        }
        match snap.get("haste_wal_recoveries_total", &[("tenant", "acme")]) {
            Some(haste_metrics::Value::Counter(n)) => assert_eq!(*n, 1),
            other => panic!("expected recovery counter, got {other:?}"),
        }
    }

    #[test]
    fn supervisor_counters_are_labeled_by_cell() {
        let registry = Registry::new();
        let counters = SupervisorCounters::for_cell(&registry, 2);
        counters.restarts.inc();
        counters.deadlines.add(3);
        let snap = registry.snapshot();
        match snap.get("haste_supervisor_restarts_total", &[("cell", "2")]) {
            Some(haste_metrics::Value::Counter(n)) => assert_eq!(*n, 1),
            other => panic!("expected restart counter, got {other:?}"),
        }
        match snap.get("haste_supervisor_deadline_expired_total", &[("cell", "2")]) {
            Some(haste_metrics::Value::Counter(n)) => assert_eq!(*n, 3),
            other => panic!("expected deadline counter, got {other:?}"),
        }
    }
}
