//! The router's durability layer: a per-tenant, append-only, CRC32-framed
//! write-ahead log plus checkpoint files, written under
//! `routerd --wal-dir DIR`.
//!
//! Every client-visible mutation of a tenant appends one record — an
//! accepted or rejected `SUBMIT` (batch records individually), a `TICK`
//! slot close, a `RESHARD` split/merge, a `TENANT` quota change — in the
//! exact order the router applied it (the router lock serializes both).
//! `LOAD` and `RESTORE` do not append; they write a **checkpoint**: the
//! tenant's composite v3 snapshot document (the same
//! [`crate::render_composite`] bytes the operator-facing `SNAPSHOT` verb
//! returns), written to a temp file, fsynced, atomically renamed, after
//! which the log truncates back to its header. Recovery is therefore
//! always *newest valid checkpoint + replay of the log tail*, and the
//! determinism contract makes the replayed tenant bit-identical to the
//! one that crashed.
//!
//! The log format is designed for torn writes: a fixed text header
//! followed by binary frames `len:u32_be | crc32:u32_be | payload`,
//! where the payload is one UTF-8 operation line. A crash can only ever
//! tear the final frame; [`scan_wal`] walks frames until the first
//! invalid one (short header, absurd length, CRC mismatch, unparsable
//! payload) and reports the byte length of the valid prefix, which
//! recovery truncates to. Scanning never panics on arbitrary bytes.
//!
//! Fsync policy is explicit ([`WalSync`]): `always` syncs after every
//! append (each ack is durable), `every-tick` syncs only when a `TICK`
//! record lands (a crash may lose acked submissions of the open slot,
//! never a closed one). DESIGN.md §14 has the full durability argument.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use haste_distributed::TaskSpec;
use haste_geometry::{Angle, Vec2};

/// First bytes of every log file; a file that does not start with this
/// header is treated as having no valid records at all.
pub const WAL_MAGIC: &[u8] = b"# haste-wal v1\n";

/// Upper bound on one record's payload, far above any real operation
/// line. A length prefix past this is corruption, not a long record.
pub const MAX_RECORD: usize = 1 << 20;

/// Default automatic-checkpoint threshold: a checkpoint is attempted at
/// the next slot close once this many records accumulated since the
/// last one.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 1024;

/// When appended records are fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalSync {
    /// fsync after every append: an acked operation is always durable.
    Always,
    /// fsync when a `TICK` record is appended (and at checkpoints): a
    /// crash can lose acked submissions of the still-open slot, but
    /// never an operation of a closed slot.
    EveryTick,
}

impl WalSync {
    /// Parses the `--wal-sync` flag values `always` / `every-tick`.
    pub fn parse(text: &str) -> Option<WalSync> {
        match text {
            "always" => Some(WalSync::Always),
            "every-tick" => Some(WalSync::EveryTick),
            _ => None,
        }
    }

    /// The flag token this policy parses from.
    pub fn as_str(self) -> &'static str {
        match self {
            WalSync::Always => "always",
            WalSync::EveryTick => "every-tick",
        }
    }
}

/// Durability settings of a router (see [`crate::RouterConfig::wal`]).
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the per-tenant `<id>.wal` / `<id>.ckpt` files;
    /// created if absent.
    pub dir: PathBuf,
    /// Fsync policy for appended records.
    pub sync: WalSync,
    /// Automatic-checkpoint threshold in records (see
    /// [`DEFAULT_CHECKPOINT_EVERY`]). Zero disables automatic
    /// checkpoints (explicit `SNAPSHOT`s still write them).
    pub checkpoint_every: usize,
}

impl WalConfig {
    /// Durability under `dir` with the default `every-tick` fsync policy
    /// and checkpoint threshold.
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            sync: WalSync::EveryTick,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        }
    }
}

/// One logged operation. Render/parse round-trip exactly: floats use
/// shortest-roundtrip formatting, the same determinism anchor as the
/// wire protocol and the snapshot formats.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An accepted submission, with the spec as admitted.
    Submit(TaskSpec),
    /// A rejected submission: the stable error-code token and the spec.
    /// Rejections never mutated engine state, so recovery skips them;
    /// they are logged so the admission decision itself is durable.
    Reject {
        /// Stable error code of the rejection (see [`crate::proto::ErrCode`]).
        code: String,
        /// The refused submission.
        spec: TaskSpec,
    },
    /// One closed slot.
    Tick,
    /// A completed live split of one cell.
    ReshardSplit(usize),
    /// A completed live merge of two cells.
    ReshardMerge(usize, usize),
    /// The tenant's per-slot admission quota was set to this value.
    Quota(u64),
    /// A checkpoint marker: the CRC-32 and byte length of a checkpoint
    /// document about to be installed. Appended and fsynced *before* the
    /// checkpoint file's atomic rename, so a crash anywhere between the
    /// rename and the log truncation cannot replay a stale tail: recovery
    /// replays only records after the last marker matching the on-disk
    /// checkpoint, and a marker matching nothing (the rename never
    /// happened) replays as a no-op.
    Checkpoint {
        /// [`crc32`] of the checkpoint document's bytes.
        crc: u32,
        /// Byte length of the checkpoint document.
        len: usize,
    },
}

impl WalRecord {
    /// The operation line this record serializes to.
    pub fn render(&self) -> String {
        match self {
            WalRecord::Submit(spec) => format!("submit {}", spec_fields(spec)),
            WalRecord::Reject { code, spec } => {
                format!("reject {code} {}", spec_fields(spec))
            }
            WalRecord::Tick => "tick".to_string(),
            WalRecord::ReshardSplit(cell) => format!("reshard split {cell}"),
            WalRecord::ReshardMerge(a, b) => format!("reshard merge {a} {b}"),
            WalRecord::Quota(q) => format!("quota {q}"),
            WalRecord::Checkpoint { crc, len } => format!("checkpoint {crc} {len}"),
        }
    }

    /// Parses one operation line; `None` on anything malformed.
    pub fn parse(line: &str) -> Option<WalRecord> {
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["submit", rest @ ..] => Some(WalRecord::Submit(parse_spec(rest)?)),
            ["reject", code, rest @ ..] => {
                if code.is_empty() {
                    return None;
                }
                Some(WalRecord::Reject {
                    code: (*code).to_string(),
                    spec: parse_spec(rest)?,
                })
            }
            ["tick"] => Some(WalRecord::Tick),
            ["reshard", "split", cell] => Some(WalRecord::ReshardSplit(cell.parse().ok()?)),
            ["reshard", "merge", a, b] => {
                Some(WalRecord::ReshardMerge(a.parse().ok()?, b.parse().ok()?))
            }
            ["quota", q] => Some(WalRecord::Quota(q.parse().ok()?)),
            ["checkpoint", crc, len] => Some(WalRecord::Checkpoint {
                crc: crc.parse().ok()?,
                len: len.parse().ok()?,
            }),
            _ => None,
        }
    }
}

/// The six submission fields in wire `SUBMIT` order.
fn spec_fields(spec: &TaskSpec) -> String {
    format!(
        "{} {} {} {} {} {}",
        spec.device_pos.x,
        spec.device_pos.y,
        spec.device_facing.radians(),
        spec.end_slot,
        spec.required_energy,
        spec.weight
    )
}

fn parse_spec(fields: &[&str]) -> Option<TaskSpec> {
    match fields {
        [x, y, facing, end, energy, weight] => Some(TaskSpec {
            device_pos: Vec2::new(x.parse().ok()?, y.parse().ok()?),
            device_facing: Angle::from_radians(facing.parse().ok()?),
            end_slot: end.parse().ok()?,
            required_energy: energy.parse().ok()?,
            weight: weight.parse().ok()?,
        }),
        _ => None,
    }
}

// ----------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib/PNG polynomial), hand-rolled: the
// workspace builds fully offline.
// ----------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// The IEEE CRC-32 of `bytes` (polynomial `0xEDB88320`, reflected,
/// init/xorout `!0`) — the framing checksum of every log record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = (c >> 8) ^ CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize];
    }
    !c
}

/// Frames one payload as it appears in the log:
/// `len:u32_be | crc32:u32_be | payload`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// What a scan of raw log bytes found: the records of the valid prefix,
/// the byte length of that prefix (header included — the truncation
/// point for a torn log), and why the scan stopped early, if it did.
#[derive(Debug)]
pub struct WalScan {
    /// Records of the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix. Equal to the input length when
    /// the whole log is valid; `0` when even the header is wrong.
    pub valid_len: usize,
    /// Why the scan stopped before the end (`None` = clean log).
    pub truncated: Option<String>,
}

/// Walks the framed records of a log byte-for-byte, stopping at the
/// first invalid frame. Total: any byte string yields a scan, never a
/// panic — the recovery path for torn and corrupted logs.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return WalScan {
            records: Vec::new(),
            valid_len: 0,
            truncated: Some("missing or torn log header".to_string()),
        };
    }
    let mut records = Vec::new();
    let mut offset = WAL_MAGIC.len();
    let truncated = loop {
        if offset == bytes.len() {
            break None;
        }
        let Some(header) = bytes.get(offset..offset + 8) else {
            break Some(format!("torn frame header at byte {offset}"));
        };
        let (len_bytes, crc_bytes) = header.split_at(4);
        let len = u32::from_be_bytes(match len_bytes.try_into() {
            Ok(array) => array,
            Err(_) => break Some(format!("torn frame header at byte {offset}")),
        }) as usize;
        let stored_crc = u32::from_be_bytes(match crc_bytes.try_into() {
            Ok(array) => array,
            Err(_) => break Some(format!("torn frame header at byte {offset}")),
        });
        if len == 0 || len > MAX_RECORD {
            break Some(format!("absurd frame length {len} at byte {offset}"));
        }
        let Some(payload) = bytes.get(offset + 8..offset + 8 + len) else {
            break Some(format!("torn frame payload at byte {offset}"));
        };
        if crc32(payload) != stored_crc {
            break Some(format!("CRC mismatch at byte {offset}"));
        }
        let Ok(line) = std::str::from_utf8(payload) else {
            break Some(format!("non-UTF-8 payload at byte {offset}"));
        };
        let Some(record) = WalRecord::parse(line.trim_end()) else {
            break Some(format!(
                "unparsable record `{}` at byte {offset}",
                line.trim_end()
            ));
        };
        records.push(record);
        offset += 8 + len;
    };
    WalScan {
        records,
        valid_len: offset,
        truncated,
    }
}

// ----------------------------------------------------------------------
// Per-tenant files
// ----------------------------------------------------------------------

fn log_path(dir: &Path, tenant: &str) -> PathBuf {
    dir.join(format!("{tenant}.wal"))
}

fn checkpoint_path(dir: &Path, tenant: &str) -> PathBuf {
    dir.join(format!("{tenant}.ckpt"))
}

fn checkpoint_tmp_path(dir: &Path, tenant: &str) -> PathBuf {
    dir.join(format!("{tenant}.ckpt.tmp"))
}

/// Fsyncs the directory itself so a just-renamed checkpoint survives a
/// crash of the file system cache (POSIX durability of `rename`).
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// The open write-ahead log of one tenant: an append handle on the log
/// file plus the checkpoint bookkeeping.
pub struct TenantWal {
    dir: PathBuf,
    tenant: String,
    file: File,
    /// Records appended since the last checkpoint (drives the automatic
    /// checkpoint threshold).
    pub ops_since_checkpoint: usize,
}

impl TenantWal {
    /// Creates (or truncates) the tenant's log with a fresh header — the
    /// `LOAD`/`RESTORE` path, immediately followed by a checkpoint.
    pub fn create(dir: &Path, tenant: &str) -> io::Result<TenantWal> {
        std::fs::create_dir_all(dir)?;
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(log_path(dir, tenant))?;
        file.write_all(WAL_MAGIC)?;
        file.sync_all()?;
        Ok(TenantWal {
            dir: dir.to_path_buf(),
            tenant: tenant.to_string(),
            file,
            ops_since_checkpoint: 0,
        })
    }

    /// Re-opens a recovered tenant's log for appending after recovery
    /// truncated it to `valid_len` bytes holding `tail_ops` records.
    pub fn open_recovered(
        dir: &Path,
        tenant: &str,
        valid_len: usize,
        tail_ops: usize,
    ) -> io::Result<TenantWal> {
        let path = log_path(dir, tenant);
        // `create(true)`: a checkpoint with no log at all (the file was
        // lost after the crash) recovers as an empty tail, so appends
        // need a fresh log — `valid_len` is 0 and the header is
        // rewritten below. `truncate(false)`: the surviving prefix of an
        // existing log must be kept; `set_len` below cuts exactly the
        // torn suffix.
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        // Drop the torn suffix (no-op on a clean log); `valid_len` of 0
        // means even the header was bad — rewrite it.
        file.set_len(valid_len as u64)?;
        let mut wal = TenantWal {
            dir: dir.to_path_buf(),
            tenant: tenant.to_string(),
            file,
            ops_since_checkpoint: tail_ops,
        };
        use std::io::Seek;
        wal.file.seek(io::SeekFrom::End(0))?;
        if valid_len == 0 {
            wal.file.write_all(WAL_MAGIC)?;
        }
        wal.file.sync_all()?;
        Ok(wal)
    }

    /// Appends records without fsyncing (the caller decides the sync
    /// point from the [`WalSync`] policy). One `write_all` per call, so
    /// a batch tears at most once.
    pub fn append(&mut self, records: &[WalRecord]) -> io::Result<()> {
        let mut bytes = Vec::new();
        for record in records {
            bytes.extend_from_slice(&frame(record.render().as_bytes()));
        }
        self.file.write_all(&bytes)?;
        self.ops_since_checkpoint += records.len();
        Ok(())
    }

    /// Fsyncs the log — the durability point of every acked operation
    /// since the previous sync.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// Writes `composite` as the tenant's checkpoint, then truncates the
    /// log back to its header and re-seeds it with the tenant's quota —
    /// the only piece of front-door state the composite document does
    /// not carry. Recovery from the resulting pair replays nothing.
    ///
    /// Crash-safe in three ordered steps, each durable before the next
    /// starts: (1) a [`WalRecord::Checkpoint`] marker naming the document
    /// by CRC and length is appended and fsynced, (2) the document is
    /// written to a temp file, fsynced, atomically renamed over the
    /// `.ckpt` path, and the directory fsynced, (3) the log truncates and
    /// re-seeds. A crash after (2) leaves the new checkpoint with the old
    /// log — but the matching marker tells recovery to discard everything
    /// before it; a crash before (2) leaves the old checkpoint, and the
    /// marker (matching nothing) replays as a no-op.
    pub fn checkpoint(&mut self, composite: &str, quota: Option<u64>) -> io::Result<()> {
        self.append(&[WalRecord::Checkpoint {
            crc: crc32(composite.as_bytes()),
            len: composite.len(),
        }])?;
        self.file.sync_all()?;
        let tmp = checkpoint_tmp_path(&self.dir, &self.tenant);
        let mut out = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        out.write_all(composite.as_bytes())?;
        out.sync_all()?;
        drop(out);
        std::fs::rename(&tmp, checkpoint_path(&self.dir, &self.tenant))?;
        sync_dir(&self.dir)?;
        self.file.set_len(0)?;
        use std::io::Seek;
        self.file.seek(io::SeekFrom::Start(0))?;
        let mut reseed = WAL_MAGIC.to_vec();
        if let Some(q) = quota {
            reseed.extend_from_slice(&frame(WalRecord::Quota(q).render().as_bytes()));
        }
        self.file.write_all(&reseed)?;
        self.ops_since_checkpoint = 0;
        self.file.sync_all()
    }
}

/// One tenant as found on disk at recovery: its checkpoint document and
/// the valid log tail to replay on top of it.
pub struct RecoveredTenant {
    /// Tenant id (derived from the checkpoint file name).
    pub tenant: String,
    /// The checkpoint's composite snapshot document.
    pub checkpoint: String,
    /// The valid log records appended after that checkpoint: everything
    /// past the last [`WalRecord::Checkpoint`] marker matching the
    /// checkpoint document, or the whole valid prefix if no marker
    /// matches (the log was already truncated, or the crash landed
    /// before the checkpoint's rename).
    pub tail: Vec<WalRecord>,
    /// Byte length of the valid log prefix (the file is truncated to
    /// this before appends resume).
    pub valid_len: usize,
    /// Why the log scan stopped early (`None` = the log was clean).
    pub truncated: Option<String>,
}

/// Scans a WAL directory for recoverable tenants: every `<id>.ckpt`
/// file, paired with the valid prefix of its `<id>.wal` log (a missing
/// log is an empty tail — the crash happened right after a checkpoint).
/// Stale `.ckpt.tmp` files (a crash mid-checkpoint-write) are removed;
/// torn log suffixes are truncated away on the spot. Tenants come back
/// in id order.
pub fn recover_dir(dir: &Path) -> io::Result<Vec<RecoveredTenant>> {
    let mut recovered = Vec::new();
    if !dir.is_dir() {
        return Ok(recovered);
    }
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(stem) = name.strip_suffix(".ckpt.tmp") {
            // A checkpoint that never completed its atomic rename: the
            // previous (fully written) checkpoint is still the newest
            // valid one, so the partial file is just noise.
            let _ = stem;
            std::fs::remove_file(entry.path())?;
            continue;
        }
        if let Some(stem) = name.strip_suffix(".ckpt") {
            names.push(stem.to_string());
        }
    }
    names.sort();
    for tenant in names {
        let checkpoint = std::fs::read_to_string(checkpoint_path(dir, &tenant))?;
        let mut bytes = Vec::new();
        match File::open(log_path(dir, &tenant)) {
            Ok(mut file) => {
                file.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let scan = scan_wal(&bytes);
        // A crash between a checkpoint's atomic rename and its log
        // truncation leaves the pre-checkpoint records in the log; the
        // marker the checkpoint fsynced first says where its state
        // actually begins.
        let ckpt_crc = crc32(checkpoint.as_bytes());
        let cut = scan.records.iter().rposition(
            |record| matches!(record, WalRecord::Checkpoint { crc, len } if *crc == ckpt_crc && *len == checkpoint.len()),
        );
        let tail = match cut {
            Some(marker) => scan.records.get(marker + 1..).unwrap_or(&[]).to_vec(),
            None => scan.records,
        };
        recovered.push(RecoveredTenant {
            tenant,
            checkpoint,
            tail,
            valid_len: scan.valid_len,
            truncated: scan.truncated,
        });
    }
    Ok(recovered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(x: f64) -> TaskSpec {
        TaskSpec {
            device_pos: Vec2::new(x, 42.5),
            device_facing: Angle::from_radians(1.25),
            end_slot: 7,
            required_energy: 1500.125,
            weight: 0.1,
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Quota(12),
            WalRecord::Submit(spec(30.75)),
            WalRecord::Reject {
                code: "overload".to_string(),
                spec: spec(130.5),
            },
            WalRecord::Tick,
            WalRecord::ReshardSplit(0),
            WalRecord::Submit(spec(99.0625)),
            WalRecord::ReshardMerge(0, 1),
            WalRecord::Checkpoint {
                crc: 0xDEAD_BEEF,
                len: 4096,
            },
            WalRecord::Tick,
        ]
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("haste-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn records_roundtrip_through_render_and_parse() {
        for record in sample_records() {
            let line = record.render();
            assert_eq!(WalRecord::parse(&line), Some(record.clone()), "{line}");
        }
        // Shortest-roundtrip floats survive exactly, including awkward ones.
        let awkward = WalRecord::Submit(TaskSpec {
            device_pos: Vec2::new(0.1 + 0.2, -0.0),
            device_facing: Angle::from_radians(std::f64::consts::PI),
            end_slot: usize::MAX,
            required_energy: f64::MIN_POSITIVE,
            weight: 1.0 / 3.0,
        });
        assert_eq!(WalRecord::parse(&awkward.render()), Some(awkward));
    }

    #[test]
    fn malformed_record_lines_are_rejected() {
        for bad in [
            "",
            "submit",
            "submit 1 2 3 4 5",
            "submit 1 2 3 4 5 6 7",
            "submit a 2 3 4 5 6",
            "reject",
            "reject overload 1 2 3 4 5",
            "tick 2",
            "reshard",
            "reshard split",
            "reshard split x",
            "reshard merge 1",
            "quota",
            "quota -1",
            "quota x",
            "checkpoint",
            "checkpoint 1",
            "checkpoint 1 2 3",
            "checkpoint x 2",
            "unknown 1 2",
        ] {
            assert_eq!(WalRecord::parse(bad), None, "`{bad}` must not parse");
        }
    }

    #[test]
    fn crc32_matches_the_reference_vectors() {
        // The canonical IEEE test vector plus a couple of anchors.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"tick"), crc32(b"tick"));
        assert_ne!(crc32(b"tick"), crc32(b"tock"));
    }

    /// Builds a log image in memory: header + framed records.
    fn log_image(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for record in records {
            bytes.extend_from_slice(&frame(record.render().as_bytes()));
        }
        bytes
    }

    #[test]
    fn a_clean_log_scans_completely() {
        let records = sample_records();
        let bytes = log_image(&records);
        let scan = scan_wal(&bytes);
        assert_eq!(scan.records, records);
        assert_eq!(scan.valid_len, bytes.len());
        assert!(scan.truncated.is_none());
    }

    #[test]
    fn every_truncation_recovers_the_longest_valid_prefix() {
        let records = sample_records();
        let bytes = log_image(&records);
        // Frame boundaries: after the header, then after each record.
        let mut boundaries = vec![WAL_MAGIC.len()];
        let mut offset = WAL_MAGIC.len();
        for record in &records {
            offset += 8 + record.render().len();
            boundaries.push(offset);
        }
        assert_eq!(offset, bytes.len());
        for cut in 0..=bytes.len() {
            let scan = scan_wal(&bytes[..cut]);
            let complete = boundaries.iter().filter(|&&b| b <= cut).count();
            if complete == 0 {
                // Not even the header fits: nothing valid at all.
                assert_eq!(scan.valid_len, 0, "cut {cut}");
                assert!(scan.records.is_empty(), "cut {cut}");
            } else {
                let records_in = complete - 1;
                assert_eq!(scan.records, records[..records_in], "cut {cut}");
                assert_eq!(scan.valid_len, boundaries[records_in], "cut {cut}");
            }
            // Truncation is reported exactly when bytes were dropped —
            // including a cut inside the header, where nothing is valid.
            let dropped = scan.valid_len != cut || cut < WAL_MAGIC.len();
            assert_eq!(scan.truncated.is_some(), dropped, "cut {cut}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught_and_truncates() {
        let records = vec![
            WalRecord::Submit(spec(10.0)),
            WalRecord::Tick,
            WalRecord::Submit(spec(20.0)),
        ];
        let bytes = log_image(&records);
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            let scan = scan_wal(&corrupt);
            // Never a panic, never more records than were written, and
            // the valid prefix stops at a frame boundary.
            assert!(scan.records.len() <= records.len(), "bit {bit}");
            if bit < WAL_MAGIC.len() * 8 {
                assert_eq!(scan.valid_len, 0, "header bit {bit}");
            }
            // A flip can only ever damage the frame it lands in; earlier
            // records must survive verbatim.
            let damaged_frame = if bit < WAL_MAGIC.len() * 8 {
                0
            } else {
                let mut offset = WAL_MAGIC.len();
                let mut frame_index = records.len();
                for (index, record) in records.iter().enumerate() {
                    let end = offset + 8 + record.render().len();
                    if bit / 8 < end {
                        frame_index = index;
                        break;
                    }
                    offset = end;
                }
                frame_index
            };
            if bit >= WAL_MAGIC.len() * 8 {
                assert!(
                    scan.records.len() >= damaged_frame.min(records.len()),
                    "bit {bit}: records before the damaged frame went missing"
                );
                for (a, b) in scan.records.iter().zip(records.iter()).take(damaged_frame) {
                    assert_eq!(a, b, "bit {bit}");
                }
            }
        }
    }

    #[test]
    fn spliced_and_trailing_garbage_is_dropped_at_the_splice_point() {
        let records = sample_records();
        let mut bytes = log_image(&records[..3]);
        let clean_len = bytes.len();
        // A half record followed by a whole valid one: the torn frame
        // ends the valid prefix, the valid-looking tail never counts.
        let torn = frame(WalRecord::Tick.render().as_bytes());
        bytes.extend_from_slice(&torn[..5]);
        bytes.extend_from_slice(&frame(WalRecord::Quota(3).render().as_bytes()));
        let scan = scan_wal(&bytes);
        assert_eq!(scan.records, records[..3]);
        assert_eq!(scan.valid_len, clean_len);
        assert!(scan.truncated.is_some());

        // A correctly-CRC'd frame whose payload is not an operation line
        // is corruption too, not a record.
        let mut bytes = log_image(&records[..2]);
        let clean_len = bytes.len();
        bytes.extend_from_slice(&frame(b"definitely not an op"));
        bytes.extend_from_slice(&frame(WalRecord::Tick.render().as_bytes()));
        let scan = scan_wal(&bytes);
        assert_eq!(scan.records, records[..2]);
        assert_eq!(scan.valid_len, clean_len);
        assert!(scan.truncated.is_some());
    }

    #[test]
    fn append_checkpoint_and_recover_roundtrip_on_disk() {
        let dir = temp_dir("roundtrip");
        let mut wal = TenantWal::create(&dir, "acme").unwrap();
        wal.append(&sample_records()).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.ops_since_checkpoint, sample_records().len());

        // No checkpoint yet: the tenant is invisible to recovery (a
        // crash mid-LOAD, before the first checkpoint, never acked).
        assert!(recover_dir(&dir).unwrap().is_empty());

        wal.checkpoint("# pretend composite\n", Some(9)).unwrap();
        assert_eq!(wal.ops_since_checkpoint, 0);
        wal.append(&[WalRecord::Tick]).unwrap();
        wal.sync().unwrap();
        drop(wal);

        let recovered = recover_dir(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].tenant, "acme");
        assert_eq!(recovered[0].checkpoint, "# pretend composite\n");
        // The quota re-seed survives the truncation, then the tick.
        assert_eq!(
            recovered[0].tail,
            vec![WalRecord::Quota(9), WalRecord::Tick]
        );
        assert!(recovered[0].truncated.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_torn_tail_is_truncated_on_disk_and_appends_resume_cleanly() {
        let dir = temp_dir("torn");
        let mut wal = TenantWal::create(&dir, "acme").unwrap();
        wal.checkpoint("ckpt\n", None).unwrap();
        wal.append(&[WalRecord::Tick, WalRecord::Quota(5)]).unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Tear the final record: chop 3 bytes off the file.
        let path = dir.join("acme.wal");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let recovered = recover_dir(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].tail, vec![WalRecord::Tick]);
        assert!(recovered[0].truncated.is_some());

        // Re-open at the valid boundary, truncate, append again: the log
        // is clean afterwards.
        let mut wal = TenantWal::open_recovered(
            &dir,
            "acme",
            recovered[0].valid_len,
            recovered[0].tail.len(),
        )
        .unwrap();
        wal.append(&[WalRecord::Tick]).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.ops_since_checkpoint, 2);
        drop(wal);
        let recovered = recover_dir(&dir).unwrap();
        assert_eq!(recovered[0].tail, vec![WalRecord::Tick, WalRecord::Tick]);
        assert!(recovered[0].truncated.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_crash_between_checkpoint_rename_and_truncation_discards_the_stale_tail() {
        let dir = temp_dir("stale-tail");
        let mut wal = TenantWal::create(&dir, "acme").unwrap();
        wal.checkpoint("old state\n", None).unwrap();
        wal.append(&[WalRecord::Tick, WalRecord::Tick]).unwrap();
        wal.sync().unwrap();
        // Simulate a checkpoint that crashed right after its atomic
        // rename: marker fsynced, new document installed, log untouched.
        let new_doc = "new state\n";
        wal.append(&[WalRecord::Checkpoint {
            crc: crc32(new_doc.as_bytes()),
            len: new_doc.len(),
        }])
        .unwrap();
        wal.sync().unwrap();
        drop(wal);
        std::fs::write(dir.join("acme.ckpt"), new_doc).unwrap();

        let recovered = recover_dir(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].checkpoint, new_doc);
        // The ticks predate the installed checkpoint: replaying them on
        // top of it would double-apply. The marker cuts them away.
        assert!(recovered[0].tail.is_empty(), "stale tail must be dropped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_crash_before_checkpoint_rename_replays_the_whole_tail() {
        let dir = temp_dir("pre-rename");
        let mut wal = TenantWal::create(&dir, "acme").unwrap();
        wal.checkpoint("old state\n", None).unwrap();
        wal.append(&[WalRecord::Tick]).unwrap();
        // Simulate a checkpoint that crashed after fsyncing its marker
        // but before the rename: the marker names a document that never
        // made it to disk.
        let doomed = "never installed\n";
        wal.append(&[WalRecord::Checkpoint {
            crc: crc32(doomed.as_bytes()),
            len: doomed.len(),
        }])
        .unwrap();
        wal.sync().unwrap();
        drop(wal);

        let recovered = recover_dir(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].checkpoint, "old state\n");
        // No marker matches the old document, so the whole tail replays;
        // the orphaned marker rides along as a replay no-op.
        assert_eq!(
            recovered[0].tail,
            vec![
                WalRecord::Tick,
                WalRecord::Checkpoint {
                    crc: crc32(doomed.as_bytes()),
                    len: doomed.len(),
                },
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_stale_checkpoint_tmp_is_swept_and_the_real_checkpoint_wins() {
        let dir = temp_dir("tmp-sweep");
        let mut wal = TenantWal::create(&dir, "acme").unwrap();
        wal.checkpoint("the real one\n", None).unwrap();
        drop(wal);
        // A crash mid-checkpoint leaves a partial temp file behind.
        std::fs::write(dir.join("acme.ckpt.tmp"), "half-writ").unwrap();
        let recovered = recover_dir(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].checkpoint, "the real one\n");
        assert!(!dir.join("acme.ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
