//! The engine-owning core of a daemon, listener-free.
//!
//! A [`Shard`] is one [`OnlineEngine`] plus its admission bound and
//! scheduling configuration behind a mutex — exactly the state the
//! single-engine daemon used to keep per process, extracted so it can be
//! owned equally well by the plain daemon ([`crate::serve`]) or N at a
//! time by the sharded router ([`crate::serve_router`]). All methods are
//! structured (typed results, no wire formatting): the protocol layer that
//! calls them decides how replies are spelled, which keeps the METRICS?
//! key list and float formatting in the lint-audited serialization files.
//!
//! Thread model: every method locks the shard's own mutex for the duration
//! of the call, so concurrent callers serialize per shard — submissions
//! within a slot are ordered by admission, and that order *is* the
//! determinism contract.

use haste_distributed::{AdmitError, OnlineConfig, OnlineEngine, TaskSpec};
use haste_model::{evaluate_relaxed, CoverageMap, TaskId};
use parking_lot::Mutex;

/// Outcome of `LOAD`/`RESTORE`: what the freshly installed engine holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadInfo {
    /// Chargers in the scenario.
    pub chargers: usize,
    /// Tasks known at load time (immediate + staged).
    pub staged: usize,
    /// Slots in the time grid.
    pub slots: usize,
    /// The engine clock after the install (0 for `LOAD`).
    pub clock: usize,
    /// Whether the grid still has open slots.
    pub open: bool,
}

/// Liveness of one shard as reported by `SHARDS?`. In-process shards are
/// always [`ShardHealth::Up`]; the out-of-process supervisor moves a shard
/// through `restarting` (child dead or mid-replay, rejoin pending) and
/// `degraded` (up again after at least one restart this session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardHealth {
    /// Serving, never restarted.
    #[default]
    Up,
    /// Child process down or replaying; SUBMITs to its cell fail with
    /// `ERR unavailable` until it rejoins.
    Restarting,
    /// Serving after at least one restart (state rebuilt from
    /// snapshot + journal replay).
    Degraded,
}

impl ShardHealth {
    /// The wire token (the `health=` field value of a `SHARDS?` line).
    pub fn as_str(self) -> &'static str {
        match self {
            ShardHealth::Up => "up",
            ShardHealth::Restarting => "restarting",
            ShardHealth::Degraded => "degraded",
        }
    }

    /// Parses a wire token back into a health state.
    pub fn parse(token: &str) -> Option<ShardHealth> {
        [
            ShardHealth::Up,
            ShardHealth::Restarting,
            ShardHealth::Degraded,
        ]
        .into_iter()
        .find(|health| health.as_str() == token)
    }
}

/// One shard's full METRICS? row — every counter the wire protocol
/// reports, in engine-native numeric form so a router can aggregate
/// before formatting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStatus {
    /// Current open slot.
    pub clock: usize,
    /// Whether the grid still has open slots.
    pub open: bool,
    /// Tasks materialized into the scenario so far.
    pub tasks: usize,
    /// Tasks staged for future release.
    pub staged: usize,
    /// Submissions admitted since load.
    pub admitted: u64,
    /// Submissions rejected since load.
    pub rejected: u64,
    /// Submissions waiting in the open slot.
    pub pending: usize,
    /// Worker threads the solver is configured with.
    pub threads: usize,
    /// Marginal-gain oracle evaluations.
    pub oracle_marginals: u64,
    /// Optimizer state commits.
    pub oracle_commits: u64,
    /// Negotiation messages sent.
    pub messages: u64,
    /// Negotiation rounds executed.
    pub rounds: u64,
    /// Wall-clock spent building HASTE-R instances, microseconds.
    pub instance_build_us: u128,
    /// Wall-clock spent in the greedy optimizer, microseconds.
    pub greedy_us: u128,
    /// Wall-clock spent rounding selections, microseconds.
    pub rounding_us: u128,
    /// Wall-clock spent building coverage maps, microseconds.
    pub coverage_build_us: u128,
}

impl ShardStatus {
    /// Element-wise accumulation for router-level aggregation. Clocks are
    /// not summed: the router asserts lockstep and keeps the common value;
    /// here `clock` takes the maximum and `open` the logical-or so a
    /// partially folded value stays meaningful.
    pub fn absorb(&mut self, other: &ShardStatus) {
        self.clock = self.clock.max(other.clock);
        self.open |= other.open;
        self.tasks += other.tasks;
        self.staged += other.staged;
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.pending += other.pending;
        self.threads = self.threads.max(other.threads);
        self.oracle_marginals += other.oracle_marginals;
        self.oracle_commits += other.oracle_commits;
        self.messages += other.messages;
        self.rounds += other.rounds;
        self.instance_build_us += other.instance_build_us;
        self.greedy_us += other.greedy_us;
        self.rounding_us += other.rounding_us;
        self.coverage_build_us += other.coverage_build_us;
    }
}

/// Per-task utility terms in task-id (= arrival) order: exactly the
/// addends of the engine's sequential `Σ wⱼ · Uⱼ`, so a router holding
/// the global arrival order can re-merge shard totals bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityParts {
    /// `wⱼ · Uⱼ` under the full P1 evaluation (switching delay included).
    pub full: Vec<f64>,
    /// `wⱼ · Uⱼ` under the HASTE-R relaxation (`ρ = 0`).
    pub relaxed: Vec<f64>,
}

/// Why a shard operation failed. Mirrors the wire protocol's error space
/// one-to-one minus transport concerns.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// No scenario loaded yet.
    NoScenario,
    /// `LOAD` on a shard that already has an engine.
    AlreadyLoaded,
    /// The time grid is exhausted.
    AtHorizon,
    /// The scenario text or value failed validation.
    BadScenario(String),
    /// A snapshot failed to parse or validate.
    BadSnapshot(String),
    /// The engine refused a submission.
    Admit(AdmitError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoScenario => write!(f, "no scenario loaded (LOAD or RESTORE first)"),
            ShardError::AlreadyLoaded => write!(
                f,
                "a scenario is already loaded (RESTORE replaces state, LOAD does not)"
            ),
            ShardError::AtHorizon => write!(f, "the time grid is exhausted"),
            ShardError::BadScenario(reason) => write!(f, "bad scenario: {reason}"),
            ShardError::BadSnapshot(reason) => write!(f, "{reason}"),
            ShardError::Admit(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// One engine + admission control + metrics, no listener. See the module
/// docs for the ownership story.
pub struct Shard {
    engine: Mutex<Option<OnlineEngine>>,
    scheduling: OnlineConfig,
    max_pending: usize,
}

impl Shard {
    /// Creates an empty shard (no scenario loaded).
    pub fn new(scheduling: OnlineConfig, max_pending: usize) -> Self {
        Shard {
            engine: Mutex::new(None),
            scheduling,
            max_pending,
        }
    }

    /// The scheduling configuration engines of this shard are created with.
    pub fn scheduling(&self) -> &OnlineConfig {
        &self.scheduling
    }

    /// The admission bound (submissions per open slot).
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// Whether a scenario is loaded.
    pub fn is_loaded(&self) -> bool {
        self.engine.lock().is_some()
    }

    /// Parses a scenario document and installs a fresh engine.
    pub fn load_text(&self, payload: &str) -> Result<LoadInfo, ShardError> {
        match haste_model::io::read_scenario(payload) {
            Ok(scenario) => self.load_scenario(scenario),
            Err(e) => Err(ShardError::BadScenario(e.to_string())),
        }
    }

    /// Installs a fresh engine for an already-built scenario (the router
    /// path: sub-scenarios come from [`haste_model::Partition::split`],
    /// never from re-parsing text).
    pub fn load_scenario(&self, scenario: haste_model::Scenario) -> Result<LoadInfo, ShardError> {
        if let Err(e) = scenario.validate() {
            return Err(ShardError::BadScenario(e.to_string()));
        }
        let mut engine = self.engine.lock();
        if engine.is_some() {
            return Err(ShardError::AlreadyLoaded);
        }
        let new = OnlineEngine::new(scenario, self.scheduling.clone(), self.max_pending);
        let info = LoadInfo {
            chargers: new.scenario().num_chargers(),
            staged: new.staged_len() + new.scenario().num_tasks(),
            slots: new.scenario().grid.num_slots,
            clock: new.clock(),
            open: !new.is_closed(),
        };
        *engine = Some(new);
        Ok(info)
    }

    /// Submits a task into the open slot. Returns the shard-local task id
    /// and the release slot (the current clock).
    pub fn submit(&self, spec: TaskSpec) -> Result<(TaskId, usize), ShardError> {
        let mut engine = self.engine.lock();
        match engine.as_mut() {
            None => Err(ShardError::NoScenario),
            Some(engine) => match engine.submit(spec) {
                Ok(id) => Ok((id, engine.clock())),
                Err(e) => Err(ShardError::Admit(e)),
            },
        }
    }

    /// Advances up to `n` slots (stopping at the horizon). Returns the new
    /// clock and whether the grid is still open. Fails with
    /// [`ShardError::AtHorizon`] only when already closed on entry.
    pub fn tick(&self, n: usize) -> Result<(usize, bool), ShardError> {
        let mut engine = self.engine.lock();
        match engine.as_mut() {
            None => Err(ShardError::NoScenario),
            Some(engine) => {
                if engine.is_closed() {
                    return Err(ShardError::AtHorizon);
                }
                for _ in 0..n {
                    if engine.tick().is_none() {
                        break;
                    }
                }
                Ok((engine.clock(), !engine.is_closed()))
            }
        }
    }

    /// The current clock and open flag.
    pub fn clock(&self) -> Result<(usize, bool), ShardError> {
        match self.engine.lock().as_ref() {
            None => Err(ShardError::NoScenario),
            Some(engine) => Ok((engine.clock(), !engine.is_closed())),
        }
    }

    /// The schedule as a text document (the model's serialization format).
    pub fn schedule_text(&self) -> Result<String, ShardError> {
        match self.engine.lock().as_ref() {
            None => Err(ShardError::NoScenario),
            Some(engine) => Ok(haste_model::io::write_schedule(engine.schedule())),
        }
    }

    /// A clone of the current schedule (shard-local charger ids).
    pub fn schedule(&self) -> Result<haste_model::Schedule, ShardError> {
        match self.engine.lock().as_ref() {
            None => Err(ShardError::NoScenario),
            Some(engine) => Ok(engine.schedule().clone()),
        }
    }

    /// Total `(full, relaxed)` utility of the schedule as executed so far.
    pub fn utility(&self) -> Result<(f64, f64), ShardError> {
        let mut engine = self.engine.lock();
        match engine.as_mut() {
            None => Err(ShardError::NoScenario),
            Some(engine) => {
                let full = engine.evaluate().total_utility;
                let relaxed = engine.relaxed_value();
                Ok((full, relaxed))
            }
        }
    }

    /// Per-task weighted utility terms in task-id order (see
    /// [`UtilityParts`]). The relaxed terms re-evaluate with a coverage
    /// map rebuilt from the scenario — bit-identical to the engine's own,
    /// since coverage construction is deterministic in the scenario.
    pub fn utility_parts(&self) -> Result<UtilityParts, ShardError> {
        let mut engine = self.engine.lock();
        match engine.as_mut() {
            None => Err(ShardError::NoScenario),
            Some(engine) => {
                let report = engine.evaluate();
                let full = weighted(engine, &report.per_task_utility);
                let coverage = CoverageMap::build(engine.scenario());
                let relaxed_report =
                    evaluate_relaxed(engine.scenario(), &coverage, engine.schedule());
                let relaxed = weighted(engine, &relaxed_report.per_task_utility);
                Ok(UtilityParts { full, relaxed })
            }
        }
    }

    /// The full METRICS? row.
    pub fn status(&self) -> Result<ShardStatus, ShardError> {
        match self.engine.lock().as_ref() {
            None => Err(ShardError::NoScenario),
            Some(engine) => {
                let metrics = engine.metrics();
                let stats = engine.stats();
                let (admitted, rejected, pending) = engine.counters();
                Ok(ShardStatus {
                    clock: engine.clock(),
                    open: !engine.is_closed(),
                    tasks: engine.scenario().num_tasks(),
                    staged: engine.staged_len(),
                    admitted,
                    rejected,
                    pending,
                    threads: metrics.threads,
                    oracle_marginals: metrics.oracle_marginals,
                    oracle_commits: metrics.oracle_commits,
                    messages: stats.messages,
                    rounds: stats.rounds,
                    instance_build_us: metrics.instance_build.as_micros(),
                    greedy_us: metrics.greedy.as_micros(),
                    rounding_us: metrics.rounding.as_micros(),
                    coverage_build_us: metrics.coverage_build.as_micros(),
                })
            }
        }
    }

    /// The lossless engine snapshot document.
    pub fn snapshot(&self) -> Result<String, ShardError> {
        match self.engine.lock().as_ref() {
            None => Err(ShardError::NoScenario),
            Some(engine) => Ok(engine.snapshot()),
        }
    }

    /// Replaces the shard's engine with one restored from a snapshot
    /// (unlike `LOAD`, this overwrites existing state).
    pub fn restore_text(&self, payload: &str) -> Result<LoadInfo, ShardError> {
        match OnlineEngine::restore(payload) {
            Ok(new) => Ok(self.install(new)),
            Err(e) => Err(ShardError::BadSnapshot(e.to_string())),
        }
    }

    /// Installs an already-restored engine, overwriting existing state.
    /// This is the commit half of a two-phase restore: callers holding
    /// several shards (the router) restore every snapshot first, validate
    /// the set as a whole, and only then install — so a corrupt section
    /// can never leave a partial cut behind.
    pub fn install(&self, engine: OnlineEngine) -> LoadInfo {
        let info = LoadInfo {
            chargers: engine.scenario().num_chargers(),
            staged: engine.staged_len() + engine.scenario().num_tasks(),
            slots: engine.scenario().grid.num_slots,
            clock: engine.clock(),
            open: !engine.is_closed(),
        };
        *self.engine.lock() = Some(engine);
        info
    }
}

/// `wⱼ · Uⱼ` for every task, in task-id order — the exact addends of the
/// evaluator's sequential total.
fn weighted(engine: &OnlineEngine, per_task_utility: &[f64]) -> Vec<f64> {
    engine
        .scenario()
        .tasks
        .iter()
        .zip(per_task_utility)
        .map(|(task, u)| task.weight * u)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use haste_geometry::{Angle, Vec2};
    use haste_model::{Charger, ChargingParams, Scenario, Task, TimeGrid};

    fn tiny_scenario() -> Scenario {
        Scenario::new(
            ChargingParams::simulation_default(),
            TimeGrid::minutes(6),
            vec![Charger::new(0, Vec2::ZERO)],
            vec![Task::new(
                0,
                Vec2::new(8.0, 0.0),
                Angle::from_degrees(180.0),
                0,
                6,
                500.0,
                1.0,
            )],
            1.0 / 12.0,
            1,
        )
        .unwrap()
    }

    #[test]
    fn lifecycle_errors_are_structured() {
        let shard = Shard::new(OnlineConfig::default(), 8);
        assert_eq!(shard.clock(), Err(ShardError::NoScenario));
        assert_eq!(shard.tick(1).unwrap_err(), ShardError::NoScenario);
        shard.load_scenario(tiny_scenario()).unwrap();
        assert_eq!(
            shard.load_scenario(tiny_scenario()).unwrap_err(),
            ShardError::AlreadyLoaded
        );
        let (clock, open) = shard.tick(6).unwrap();
        assert_eq!((clock, open), (6, false));
        assert_eq!(shard.tick(1).unwrap_err(), ShardError::AtHorizon);
    }

    #[test]
    fn utility_parts_sum_to_totals_bitwise() {
        let shard = Shard::new(OnlineConfig::default(), 8);
        shard.load_scenario(tiny_scenario()).unwrap();
        shard.tick(6).ok();
        let (full, relaxed) = shard.utility().unwrap();
        let parts = shard.utility_parts().unwrap();
        let full_sum: f64 = parts.full.iter().sum();
        let relaxed_sum: f64 = parts.relaxed.iter().sum();
        assert_eq!(full.to_bits(), full_sum.to_bits());
        assert_eq!(relaxed.to_bits(), relaxed_sum.to_bits());
        assert!(full > 0.0, "the single task should harvest something");
    }

    #[test]
    fn snapshot_restore_roundtrips_through_the_shard() {
        let shard = Shard::new(OnlineConfig::default(), 8);
        shard.load_scenario(tiny_scenario()).unwrap();
        shard.tick(2).unwrap();
        let snap = shard.snapshot().unwrap();
        let other = Shard::new(OnlineConfig::default(), 8);
        let info = other.restore_text(&snap).unwrap();
        assert_eq!(info.clock, 2);
        assert_eq!(other.snapshot().unwrap(), snap);
    }
}
