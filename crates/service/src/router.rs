//! The sharded router: N [`Shard`]s behind one listener, in-process or
//! supervised child processes.
//!
//! The router owns one shard per cell of a [`Partition`] (uniform grid
//! with a charger-reach halo). `LOAD` splits the scenario into per-cell
//! sub-scenarios — rejecting unpartitionable inputs with
//! `ERR unpartitionable` — and `SUBMIT` routes each task to the shard
//! owning its device position. `TICK`, `UTILITY?`, `METRICS?` and
//! `SHARDS?` fan out to every shard.
//!
//! **Deployment modes.** By default every shard is an in-process
//! [`Shard`]. With [`RouterConfig::process`] set, each shard instead
//! lives in a spawned `haste-shardd` child reached over localhost TCP
//! (see [`crate::supervisor`]): same protocol, same bits — the wire
//! round-trips floats losslessly — plus a real failure domain per cell.
//!
//! **Failure model (out-of-process).** A child crash, hang past the
//! per-request deadline, or injected fault marks its shard *down*; the
//! router keeps serving. Submissions routed to a down cell fail with
//! `ERR unavailable <cell> ...`; `TICK` advances the healthy shards in
//! lockstep and journals the slots a down shard misses. At the start of
//! each tick step the supervisor restarts down children and replays
//! their last baseline (the loaded sub-scenario or last committed
//! `SNAPSHOT` section) plus the journal of acked operations — engine
//! determinism makes the rebuilt state bit-identical, so a recovered
//! cell rejoins the lockstep exactly where the router believes it is.
//! `SHARDS?` reports each shard as `up`, `restarting`, or `degraded`
//! (recovered after ≥1 restart); `METRICS?` totals restarts, replayed
//! operations, and currently-down shards.
//!
//! **Bit-equivalence contract.** With localized replanning
//! ([`OnlineConfig::localized`](haste_distributed::OnlineConfig)) the
//! negotiation of Alg. 3 never crosses a partition boundary, so each
//! shard's schedule is bitwise the restriction of the single-engine
//! schedule. The router reconstructs the single engine's totals exactly:
//! it records the **global arrival order** of tasks (initial release-0
//! tasks, then staged releases and live submissions as slots open) and
//! sums per-task `wⱼ·Uⱼ` terms in that order — the same addends in the
//! same sequence as the single engine's evaluator, hence the same bits.
//!
//! **Consistent cut.** All request handling serializes on one router
//! mutex and `TICK` advances every shard in lockstep inside it — the
//! per-shard replans of one slot run *concurrently* (scoped
//! `haste-parallel` threads in-process; concurrently-issued child
//! requests out-of-process), but the router joins them all before its
//! clock moves, so between requests all healthy shards still sit at the
//! router's virtual slot and the pipelining is invisible to every other
//! request. `SNAPSHOT` (under that mutex) therefore captures a trivially
//! consistent cut; it requires every shard up (a down shard's state is
//! mid-replay by definition) and, once the composite document is
//! assembled, commits each section as its shard's new replay baseline.
//! The composite document restores bit-identically.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use haste_distributed::{OnlineConfig, OnlineEngine, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_model::{io as model_io, ChargerId, Partition, PartitionError, Schedule};
use haste_parallel::ThreadPool;
use parking_lot::Mutex;

use crate::client::Client;
use crate::framing::{self, BatchAck};
use crate::proto::{ErrCode, Reply, Request};
use crate::server::{
    batch_backstop, catching, hello_reply, parts_payload, read_line_polling, read_payload,
    shard_err, shard_err_parts, shard_line, READ_POLL,
};
use crate::shard::{Shard, ShardHealth, ShardStatus, UtilityParts};
use crate::supervisor::{
    resolve_shardd, Launcher, ProcessShardConfig, RemoteShard, ShardSlot, SlotError,
};
use crate::telemetry::{self, SupervisorCounters, Telemetry};

/// Magic first line of a composite router snapshot.
const COMPOSITE_MAGIC: &str = "# haste-router snapshot v2";

/// Configuration of a router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address; use port 0 to let the OS pick.
    pub addr: String,
    /// Connection-handler threads (the connection cap, as for the plain
    /// daemon).
    pub worker_threads: usize,
    /// Admission bound per shard: submissions per open slot before
    /// `ERR overload`.
    pub max_pending: usize,
    /// Scheduling configuration for every shard's engine. Bit-equivalence
    /// with a single-engine run requires `localized: true` here and on the
    /// reference daemon.
    pub scheduling: OnlineConfig,
    /// Partition grid as `(cells_x, cells_y)`; one shard per cell.
    pub cells: (usize, usize),
    /// Field origin `(x, y)` in meters.
    pub origin: (f64, f64),
    /// Field extent `(width, height)` in meters.
    pub field: (f64, f64),
    /// `Some` runs every shard as a supervised `haste-shardd` child
    /// process instead of in-process (see the module docs' failure
    /// model); `None` is the original in-process mode.
    pub process: Option<ProcessShardConfig>,
    /// `Some(addr)` additionally binds a plain-HTTP scrape listener that
    /// answers any `GET` with the router's `EXPORT?` exposition text
    /// (Prometheus-style). `None` disables it; `EXPORT?` on the wire
    /// protocol is always available.
    pub metrics_addr: Option<String>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            worker_threads: 64,
            max_pending: 4096,
            scheduling: OnlineConfig::default(),
            cells: (2, 1),
            origin: (0.0, 0.0),
            field: (200.0, 100.0),
            process: None,
            metrics_addr: None,
        }
    }
}

/// Mutable router state: the shards plus the global bookkeeping that maps
/// shard-local task ids back onto the single-engine arrival order.
struct RouterCore {
    shards: Vec<ShardSlot>,
    /// Built at `LOAD`/`RESTORE` (the halo is the scenario's radius).
    partition: Option<Partition>,
    /// `charger_shard[i]` — owning shard of original charger `i`.
    /// Shard-local charger ids follow by per-shard counting.
    charger_shard: Vec<u32>,
    /// Owning shard of every materialized task, in global arrival order.
    /// Shard-local task ids follow by per-shard counting.
    order: Vec<u32>,
    /// Staged tasks not yet released: `(release_slot, shard)` in the
    /// single engine's injection order (stable by release slot).
    plan: VecDeque<(usize, u32)>,
    /// Time-grid length, for merging schedules.
    slots: usize,
    /// The router's virtual clock. This is the authority — healthy shards
    /// follow it in lockstep, and a down shard rejoins *to it* by replay —
    /// so it stays correct even while children are dead.
    clock: usize,
}

impl RouterCore {
    /// Appends to `order` every planned staged release for slots up to and
    /// including `clock` (the single engine injects staged tasks the
    /// moment their slot opens, before any live submission of that slot).
    fn drain_plan(&mut self, clock: usize) {
        while let Some(&(slot, shard)) = self.plan.front() {
            if slot > clock {
                break;
            }
            self.order.push(shard);
            self.plan.pop_front();
        }
    }

    /// Whether the router's grid still has open slots.
    fn open(&self) -> bool {
        self.clock < self.slots
    }
}

/// State shared by every connection of one router.
struct RouterShared {
    core: Mutex<RouterCore>,
    config: RouterConfig,
    shutdown: AtomicBool,
    telemetry: Telemetry,
}

/// A running router. Dropping the handle shuts it down and joins its
/// threads.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    metrics_thread: Option<std::thread::JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The number of shards this router owns.
    pub fn shards(&self) -> usize {
        self.shared.config.cells.0 * self.shared.config.cells.1
    }

    /// Blocks until the accept loop exits (i.e. forever, unless another
    /// thread signals shutdown). For foreground daemon binaries.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Signals shutdown and joins the accept loop and all handlers.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.metrics_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Starts a router and returns its handle. Mirrors [`crate::serve`] but
/// owns `cells_x × cells_y` shards instead of one engine. With
/// [`RouterConfig::process`] set this spawns one `haste-shardd` child per
/// cell before binding; a launch failure aborts startup (there is no
/// state to recover yet — supervision begins once the fleet is up).
pub fn serve_router(config: RouterConfig) -> std::io::Result<RouterHandle> {
    if config.cells.0 == 0 || config.cells.1 == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "router needs at least one cell per axis",
        ));
    }
    let num_shards = config.cells.0 * config.cells.1;
    let router_telemetry = Telemetry::new();
    let shards: Vec<ShardSlot> = match &config.process {
        None => (0..num_shards)
            .map(|_| ShardSlot::Local(Shard::new(config.scheduling.clone(), config.max_pending)))
            .collect(),
        Some(process) => {
            if !config.scheduling.failures.is_empty() {
                // Charger-failure injection mutates engine internals the
                // wire protocol does not carry; it stays in-process.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "charger failure injection is not supported with out-of-process shards",
                ));
            }
            let plan = process.fault_plan.clone().unwrap_or_default();
            if let Some(cell) = plan.cells().into_iter().find(|&cell| cell >= num_shards) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!(
                        "fault plan targets cell {cell}, but the router has {num_shards} shards"
                    ),
                ));
            }
            let program = resolve_shardd(process.shardd.as_deref())?;
            let launcher = Launcher::new(
                program,
                &config.scheduling,
                config.max_pending,
                process.effective_deadline(),
            );
            let mut shards = Vec::with_capacity(num_shards);
            for cell in 0..num_shards {
                shards.push(ShardSlot::Remote(RemoteShard::launch(
                    cell,
                    launcher.clone(),
                    plan.for_cell(cell),
                    SupervisorCounters::for_cell(router_telemetry.registry(), cell),
                )?));
            }
            shards
        }
    };
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    // Bind the scrape listener before spawning anything, so a bad
    // `metrics_addr` aborts startup instead of failing silently later.
    let metrics_listener = match &config.metrics_addr {
        Some(scrape_addr) => {
            let listener = TcpListener::bind(scrape_addr)?;
            listener.set_nonblocking(true)?;
            Some(listener)
        }
        None => None,
    };
    let shared = Arc::new(RouterShared {
        core: Mutex::new(RouterCore {
            shards,
            partition: None,
            charger_shard: Vec::new(),
            order: Vec::new(),
            plan: VecDeque::new(),
            slots: 0,
            clock: 0,
        }),
        config: config.clone(),
        shutdown: AtomicBool::new(false),
        telemetry: router_telemetry,
    });
    let accept_shared = Arc::clone(&shared);
    let workers = config.worker_threads.max(1);
    let accept_thread = std::thread::Builder::new()
        .name("haste-router-accept".to_string())
        .spawn(move || {
            let pool = ThreadPool::new(workers);
            while !accept_shared.shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let conn_shared = Arc::clone(&accept_shared);
                        pool.execute(move || {
                            let _ = handle_connection(stream, &conn_shared);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })?;
    let metrics_thread = match metrics_listener {
        Some(listener) => {
            let scrape_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("haste-router-metrics".to_string())
                    .spawn(move || {
                        while !scrape_shared.shutdown.load(Ordering::Acquire) {
                            match listener.accept() {
                                Ok((stream, _peer)) => {
                                    let _ = serve_scrape(stream, addr);
                                }
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(Duration::from_millis(5));
                                }
                                Err(_) => break,
                            }
                        }
                    })?,
            )
        }
        None => None,
    };
    Ok(RouterHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        metrics_thread,
    })
}

/// Every socket deadline on the HTTP scrape path — the scraper-facing
/// stream (both directions) and the internal dial back into the router's
/// protocol port. One constant so the whole scrape is uniformly bounded.
const SCRAPE_DEADLINE: Duration = Duration::from_secs(5);

/// Answers one HTTP scrape: any `GET` gets the router's `EXPORT?`
/// exposition as `200 text/plain`. The handler dials the router's own
/// protocol port as an ordinary client, so the scrape sees exactly the
/// document wire clients see (merged child registries included) and the
/// HTTP layer stays a dozen lines: request head + headers in, one
/// `Content-Length`-framed response out, connection closed.
fn serve_scrape(stream: TcpStream, router: SocketAddr) -> std::io::Result<()> {
    serve_scrape_with(stream, router, SCRAPE_DEADLINE)
}

/// [`serve_scrape`] with the deadline injectable, so tests can exercise
/// the wedged-router path in milliseconds instead of [`SCRAPE_DEADLINE`].
fn serve_scrape_with(
    stream: TcpStream,
    router: SocketAddr,
    deadline: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(deadline))?;
    stream.set_write_timeout(Some(deadline))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut head = String::new();
    reader.read_line(&mut head)?;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim_end().is_empty() {
            break;
        }
    }
    let mut writer = BufWriter::new(stream);
    if !head.starts_with("GET ") {
        writer.write_all(
            b"HTTP/1.1 405 Method Not Allowed\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )?;
        return writer.flush();
    }
    // The inner dial carries the same deadline end to end: a wedged
    // router (or one that accepts and never greets) turns into a prompt
    // `503` with the timeout in the body, never a hung scrape thread.
    let body =
        Client::connect_with_deadline(router, Some(deadline)).and_then(|mut conn| conn.export());
    match body {
        Ok(body) => {
            writer.write_all(
                format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            )?;
            writer.write_all(body.as_bytes())?;
        }
        Err(e) => {
            let detail = format!("scrape failed: {e}\n");
            writer.write_all(
                format!(
                    "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n",
                    detail.len()
                )
                .as_bytes(),
            )?;
            writer.write_all(detail.as_bytes())?;
        }
    }
    writer.flush()
}

/// Serves one connection until EOF, `BYE`, or shutdown.
fn handle_connection(stream: TcpStream, shared: &RouterShared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_write_timeout(Some(crate::server::WRITE_STALL))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut buf = Vec::new();
    loop {
        let Some(line) = read_line_polling(&mut reader, &mut buf, &shared.shutdown)? else {
            return Ok(());
        };
        if line.is_empty() {
            continue;
        }
        let (reply, close) = dispatch(&line, &mut reader, shared)?;
        let upgrade = framing::upgrades_to_v3(&line, &reply);
        writer.write_all(reply.serialize().as_bytes())?;
        writer.flush()?;
        if close {
            return Ok(());
        }
        if upgrade {
            // Same switch as the single-engine daemon: the accepted
            // `HELLO v3` greeting is the last text exchange.
            return serve_framed(&mut reader, &mut writer, shared);
        }
    }
}

/// The router's framed (protocol v3) connection loop: identical dispatch
/// semantics, plus the batched-submit path — many records per `OP_BATCH`
/// frame, routed and acknowledged under one acquisition of the router
/// mutex.
fn serve_framed<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    shared: &RouterShared,
) -> std::io::Result<()> {
    framing::serve_frames(
        reader,
        writer,
        &shared.shutdown,
        |head, payload| {
            let mut embedded = std::io::Cursor::new(payload);
            dispatch(head, &mut embedded, shared)
        },
        |specs| batch_backstop(specs, || execute_batch(specs, shared)),
    )
}

/// Executes a batched submission on the router: one lock acquisition,
/// then per record the exact `SUBMIT` path — finiteness check, cell
/// routing, shard admission, and a push onto the global arrival order.
/// Holding the lock across the whole frame means the batch occupies a
/// contiguous run of the arrival order, but any interleaving with other
/// connections' submissions would be equally valid: within a slot the
/// recorded order *is* the determinism contract, exactly as for text
/// submits racing on separate connections.
fn execute_batch(specs: &[TaskSpec], shared: &RouterShared) -> Vec<BatchAck> {
    let start = telemetry::clock_start();
    let mut core = shared.core.lock();
    let core = &mut *core;
    let acks: Vec<BatchAck> = specs
        .iter()
        .map(|spec| {
            if !(spec.device_pos.x.is_finite()
                && spec.device_pos.y.is_finite()
                && spec.device_facing.radians().is_finite())
            {
                BatchAck::rejected(ErrCode::BadTask, "non-finite position/facing")
            } else {
                match core.partition.as_ref() {
                    None => {
                        let (code, message) = shard_err_parts(crate::shard::ShardError::NoScenario);
                        BatchAck::Err {
                            code: code.as_str().to_string(),
                            message,
                        }
                    }
                    Some(partition) => {
                        let cell = partition.cell_of(spec.device_pos);
                        let outcome = match core.shards.get(cell) {
                            // haste-lint: allow(L2) — lockstep contract: `core` serializes shard traffic so global arrival order stays bit-identical; the child request is deadline-bounded
                            Some(shard) => shard.submit(*spec),
                            None => Err(SlotError::Shard(crate::shard::ShardError::NoScenario)),
                        };
                        match outcome {
                            Ok((_local, release)) => {
                                let global = core.order.len();
                                core.order.push(cell as u32);
                                BatchAck::Ok {
                                    task: global as u64,
                                    release: release as u64,
                                }
                            }
                            Err(e) => {
                                let (code, message) = slot_err_parts(e);
                                BatchAck::Err {
                                    code: code.as_str().to_string(),
                                    message,
                                }
                            }
                        }
                    }
                }
            }
        })
        .collect();
    let rejected = acks
        .iter()
        .filter(|ack| matches!(ack, BatchAck::Err { .. }))
        .count();
    shared
        .telemetry
        .observe_batch(specs.len(), rejected, telemetry::elapsed_us(start));
    acks
}

/// Parses and executes one request under the panic backstop (see the
/// single-engine daemon's `dispatch`).
fn dispatch<R: BufRead>(
    line: &str,
    reader: &mut R,
    shared: &RouterShared,
) -> std::io::Result<(Reply, bool)> {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(reason) => {
            shared.telemetry.count_error(ErrCode::BadRequest);
            return Ok((Reply::Err(ErrCode::BadRequest, reason), false));
        }
    };
    let opcode = request.opcode();
    let start = telemetry::clock_start();
    let result = catching(AssertUnwindSafe(|| execute(request, reader, shared)));
    if let Ok((reply, _)) = &result {
        shared
            .telemetry
            .observe_request(opcode, telemetry::elapsed_us(start), reply);
    }
    result
}

/// Maps a partition failure onto the wire error space: geometry/split
/// violations are the client's scenario-vs-topology mismatch.
fn partition_err(e: PartitionError) -> Reply {
    Reply::Err(ErrCode::Unpartitionable, e.to_string())
}

/// Maps a shard-slot failure onto the wire error space. Structured child
/// errors pass through with their original code; a down shard becomes
/// `ERR unavailable` with the cell index leading the message, so clients
/// can tell *which* cell is degraded without a `SHARDS?` round trip.
fn slot_err(e: SlotError) -> Reply {
    let (code, message) = slot_err_parts(e);
    Reply::Err(code, message)
}

/// The code/message pair of [`slot_err`], for the batch-ack path.
fn slot_err_parts(e: SlotError) -> (ErrCode, String) {
    match e {
        SlotError::Shard(e) => shard_err_parts(e),
        SlotError::Remote { code, message } => (code, message),
        SlotError::Unavailable { cell, detail } => {
            (ErrCode::Unavailable, format!("{cell} shard down: {detail}"))
        }
    }
}

/// Executes one parsed request; returns the reply and whether the
/// connection should close.
fn execute<R: BufRead>(
    request: Request,
    reader: &mut R,
    shared: &RouterShared,
) -> std::io::Result<(Reply, bool)> {
    let config = &shared.config;
    let num_shards = config.cells.0 * config.cells.1;
    let reply = match request {
        Request::Hello(version) => hello_reply(&version, num_shards, config.cells),
        Request::Load(count) => {
            let Some(payload) = read_payload(reader, count, &shared.shutdown)? else {
                return Ok((
                    Reply::Err(ErrCode::BadRequest, "truncated LOAD payload".to_string()),
                    true,
                ));
            };
            let mut core = shared.core.lock();
            // haste-lint: allow(L2) — per-cell LOADs are deadline-bounded; `core` must be held so no request observes a half-partitioned scenario
            load_scenario_text(&mut core, config, &payload)
        }
        Request::Submit {
            x,
            y,
            facing,
            end_slot,
            energy,
            weight,
        } => {
            if !(x.is_finite() && y.is_finite() && facing.is_finite()) {
                Reply::Err(ErrCode::BadTask, "non-finite position/facing".to_string())
            } else {
                let mut core = shared.core.lock();
                match core.partition.as_ref() {
                    None => shard_err(crate::shard::ShardError::NoScenario),
                    Some(partition) => {
                        let cell = partition.cell_of(Vec2::new(x, y));
                        let spec = TaskSpec {
                            device_pos: Vec2::new(x, y),
                            device_facing: Angle::from_radians(facing),
                            end_slot,
                            required_energy: energy,
                            weight,
                        };
                        let outcome = match core.shards.get(cell) {
                            // haste-lint: allow(L2) — lockstep contract: `core` serializes shard traffic so global arrival order stays bit-identical; the child request is deadline-bounded
                            Some(shard) => shard.submit(spec),
                            None => Err(SlotError::Shard(crate::shard::ShardError::NoScenario)),
                        };
                        match outcome {
                            Ok((_local, release)) => {
                                let global = core.order.len();
                                core.order.push(cell as u32);
                                Reply::Ok(format!("task={global} release={release} shard={cell}"))
                            }
                            Err(e) => slot_err(e),
                        }
                    }
                }
            }
        }
        Request::Tick(n) => {
            let mut core = shared.core.lock();
            if core.partition.is_none() {
                shard_err(crate::shard::ShardError::NoScenario)
            } else {
                // haste-lint: allow(L2) — the lockstep pipelines deadline-bounded TICKs across cells under `core`; interleaving another request mid-round would fork the clock
                match tick_lockstep(&mut core, n, &shared.telemetry) {
                    Ok((slot, open)) => Reply::Ok(format!("slot={slot} open={}", u8::from(open))),
                    Err(reply) => reply,
                }
            }
        }
        Request::Clock => {
            let core = shared.core.lock();
            if core.partition.is_none() {
                shard_err(crate::shard::ShardError::NoScenario)
            } else {
                // The router clock is authoritative (healthy shards track
                // it in lockstep; down shards rejoin to it), so CLOCK?
                // answers even while children are restarting.
                Reply::Ok(format!(
                    "slot={} open={}",
                    core.clock,
                    u8::from(core.open())
                ))
            }
        }
        Request::Schedule => {
            let core = shared.core.lock();
            if core.partition.is_none() {
                shard_err(crate::shard::ShardError::NoScenario)
            } else {
                // haste-lint: allow(L2) — merge must read every cell at one consistent clock; each child SCHEDULE? is deadline-bounded
                match merged_schedule(&core) {
                    Ok(schedule) => Reply::Data(model_io::write_schedule(&schedule)),
                    Err(reply) => reply,
                }
            }
        }
        Request::Utility => {
            let core = shared.core.lock();
            if core.partition.is_none() {
                shard_err(crate::shard::ShardError::NoScenario)
            } else {
                // haste-lint: allow(L2) — merge must read every cell at one consistent clock; each child PARTS? is deadline-bounded
                match merged_parts(&core) {
                    Ok(parts) => {
                        // Sequential left-to-right sums over the arrival
                        // order: the single engine's exact addend sequence.
                        let utility: f64 = parts.full.iter().sum();
                        let relaxed: f64 = parts.relaxed.iter().sum();
                        Reply::Ok(format!("utility={utility} relaxed={relaxed}"))
                    }
                    Err(reply) => reply,
                }
            }
        }
        Request::Parts => {
            let core = shared.core.lock();
            if core.partition.is_none() {
                shard_err(crate::shard::ShardError::NoScenario)
            } else {
                // haste-lint: allow(L2) — merge must read every cell at one consistent clock; each child PARTS? is deadline-bounded
                match merged_parts(&core) {
                    Ok(parts) => Reply::Data(parts_payload(&parts)),
                    Err(reply) => reply,
                }
            }
        }
        Request::Export => {
            let core = shared.core.lock();
            let mut snap = shared.telemetry.registry().snapshot();
            // Engine aliases and the down gauge come from the status view,
            // uniformly across deployment modes; the router renders them
            // itself so child engine series are never double-counted.
            let mut merged = ShardStatus::default();
            let mut down = 0u64;
            let mut saw_status = false;
            for shard in &core.shards {
                // haste-lint: allow(L2) — deadline-bounded STATUS? per cell; a down shard answers from its cache instead of blocking the scrape
                if let Ok((status, health, _restarts, _replay)) = shard.status_view() {
                    merged.absorb(&status);
                    saw_status = true;
                    if health == ShardHealth::Restarting {
                        down += 1;
                    }
                }
            }
            if saw_status {
                telemetry::engine_alias_snapshot(&merged, &mut snap);
            }
            snap.set_gauge("haste_supervisor_down_shards", &[], u128::from(down));
            // Out-of-process children carry their own registries: fetch
            // each child's exposition, keep only its service-side request
            // series, rename them into the shard-scoped families, and
            // merge bucket-wise. A down or unparsable child contributes
            // nothing this scrape; counters resume after its rejoin.
            for shard in &core.shards {
                // haste-lint: allow(L2) — deadline-bounded EXPORT? per cell; a down child contributes nothing this scrape rather than wedging it
                if let Some(Ok(document)) = shard.export_document() {
                    if let Ok(mut child) = haste_metrics::Snapshot::parse(&document) {
                        child.retain_prefix("haste_service_");
                        child.rename_prefix("haste_service_", "haste_shard_");
                        snap.merge(child);
                    }
                }
            }
            Reply::Data(snap.render())
        }
        Request::Metrics => {
            let core = shared.core.lock();
            if core.partition.is_none() {
                shard_err(crate::shard::ShardError::NoScenario)
            } else {
                let mut merged = ShardStatus::default();
                let mut restarts_total = 0u64;
                let mut replays_total = 0u64;
                let mut down = 0u64;
                let mut failure = None;
                for shard in &core.shards {
                    // haste-lint: allow(L2) — deadline-bounded STATUS? per cell under one `core` hold so the merged totals are a consistent cut
                    match shard.status_view() {
                        Ok((status, health, restarts, replay)) => {
                            merged.absorb(&status);
                            restarts_total += restarts;
                            replays_total += replay;
                            if health == ShardHealth::Restarting {
                                down += 1;
                            }
                        }
                        Err(e) => {
                            failure = Some(slot_err(e));
                            break;
                        }
                    }
                }
                match failure {
                    Some(reply) => reply,
                    None => {
                        let status = merged;
                        let mut payload = String::new();
                        for (key, value) in [
                            ("clock", status.clock.to_string()),
                            ("tasks", status.tasks.to_string()),
                            ("staged", status.staged.to_string()),
                            ("admitted", status.admitted.to_string()),
                            ("rejected", status.rejected.to_string()),
                            ("pending", status.pending.to_string()),
                            ("threads", status.threads.to_string()),
                            ("oracle_marginals", status.oracle_marginals.to_string()),
                            ("oracle_commits", status.oracle_commits.to_string()),
                            ("messages", status.messages.to_string()),
                            ("rounds", status.rounds.to_string()),
                            ("instance_build_us", status.instance_build_us.to_string()),
                            ("greedy_us", status.greedy_us.to_string()),
                            ("rounding_us", status.rounding_us.to_string()),
                            ("coverage_build_us", status.coverage_build_us.to_string()),
                            // Supervision totals across the shard fleet
                            // (identically zero for in-process shards).
                            ("shard_restarts", restarts_total.to_string()),
                            ("shard_replays", replays_total.to_string()),
                            ("shards_down", down.to_string()),
                        ] {
                            payload.push_str(key);
                            payload.push(' ');
                            payload.push_str(&value);
                            payload.push('\n');
                        }
                        Reply::Data(payload)
                    }
                }
            }
        }
        Request::Shards => {
            let core = shared.core.lock();
            if core.partition.is_none() {
                shard_err(crate::shard::ShardError::NoScenario)
            } else {
                let mut payload = String::new();
                let mut failure = None;
                for (index, shard) in core.shards.iter().enumerate() {
                    // haste-lint: allow(L2) — deadline-bounded STATUS? per cell under one `core` hold so SHARDS? reports a consistent cut
                    match shard.status_view() {
                        Ok((status, health, restarts, replay)) => {
                            let cell = (index % config.cells.0, index / config.cells.0);
                            payload.push_str(&shard_line(
                                index, cell, &status, health, restarts, replay,
                            ));
                        }
                        Err(e) => {
                            failure = Some(slot_err(e));
                            break;
                        }
                    }
                }
                match failure {
                    Some(reply) => reply,
                    None => Reply::Data(payload),
                }
            }
        }
        Request::Snapshot => {
            let core = shared.core.lock();
            if core.partition.is_none() {
                shard_err(crate::shard::ShardError::NoScenario)
            } else {
                // haste-lint: allow(L2) — per-cell SNAP?s are deadline-bounded; `core` held so the composite is one consistent clock cut
                match composite_snapshot(&core, config) {
                    Ok(text) => Reply::Data(text),
                    Err(reply) => reply,
                }
            }
        }
        Request::Restore(count) => {
            let Some(payload) = read_payload(reader, count, &shared.shutdown)? else {
                return Ok((
                    Reply::Err(ErrCode::BadRequest, "truncated RESTORE payload".to_string()),
                    true,
                ));
            };
            let mut core = shared.core.lock();
            // haste-lint: allow(L2) — per-cell RESTOREs are deadline-bounded; `core` held so no request observes a half-restored composite
            restore_composite(&mut core, config, &payload)
        }
        Request::Bye => return Ok((Reply::Ok("bye".to_string()), true)),
    };
    Ok((reply, false))
}

/// `LOAD` on the router: parse, partition, split, install per-cell
/// engines, and record the global bookkeeping (charger owners, release-0
/// arrival order, staged release plan). Totals come from the split itself
/// (each charger and task belongs to exactly one cell), so the reply is
/// correct even if a child shard is down — its baseline is recorded and
/// the first tick's rejoin pass replays the load into a fresh child.
fn load_scenario_text(core: &mut RouterCore, config: &RouterConfig, payload: &str) -> Reply {
    if core.partition.is_some() {
        return shard_err(crate::shard::ShardError::AlreadyLoaded);
    }
    let scenario = match model_io::read_scenario(payload) {
        Ok(scenario) => scenario,
        Err(e) => return Reply::Err(ErrCode::BadRequest, format!("bad scenario: {e}")),
    };
    let partition = match Partition::grid(
        Vec2::new(config.origin.0, config.origin.1),
        config.field.0,
        config.field.1,
        config.cells.0,
        config.cells.1,
        scenario.params.radius,
    ) {
        Ok(partition) => partition,
        Err(e) => return partition_err(e),
    };
    if let Err(e) = partition.validate_chargers(&scenario) {
        return partition_err(e);
    }
    let cells = match partition.split(&scenario) {
        Ok(cells) => cells,
        Err(e) => return partition_err(e),
    };
    let mut total_chargers = 0;
    let mut total_staged = 0;
    for (shard, cell) in core.shards.iter().zip(cells) {
        total_chargers += cell.chargers.len();
        total_staged += cell.tasks.len();
        match shard.load_scenario(cell) {
            Ok(()) => {}
            // A down child shard: the supervisor holds the sub-scenario
            // as its baseline, so the rejoin replay loads it later.
            Err(SlotError::Unavailable { .. }) => {}
            // `split` validated every sub-scenario, so a structured
            // failure here is a router bug; surface it without
            // half-initialized routing state (RESTORE recovers).
            Err(e) => return slot_err(e),
        }
    }
    core.charger_shard = scenario
        .chargers
        .iter()
        .map(|c| partition.cell_of(c.pos) as u32)
        .collect();
    core.order = scenario
        .tasks
        .iter()
        .filter(|t| t.release_slot == 0)
        .map(|t| partition.cell_of(t.device_pos) as u32)
        .collect();
    let mut staged: Vec<(usize, u32)> = scenario
        .tasks
        .iter()
        .filter(|t| t.release_slot > 0)
        .map(|t| (t.release_slot, partition.cell_of(t.device_pos) as u32))
        .collect();
    // Stable by release slot — the exact injection order of the single
    // engine's staging queue.
    staged.sort_by_key(|&(slot, _)| slot);
    core.plan = staged.into();
    core.slots = scenario.grid.num_slots;
    core.clock = 0;
    core.partition = Some(partition);
    // Slot-0 fault directives mature the moment the grid opens.
    for shard in &core.shards {
        shard.apply_slot_faults(0);
    }
    Reply::Ok(format!(
        "chargers={total_chargers} staged={total_staged} slots={} shards={}",
        core.slots,
        core.shards.len()
    ))
}

/// Advances the lockstep one slot at a time, releasing staged arrivals
/// into the global order as their slots open. Down shards do not stall
/// the fleet: each step first gives them a rejoin (restart + replay to
/// the router clock), then ticks every shard, *pipelined*; a shard that
/// is still down has the missed slot journaled so its eventual replay
/// catches up, and fault directives for the newly opened slot mature last.
///
/// **Pipelined negotiation.** The per-shard `tick1` calls of one step run
/// concurrently on scoped `haste-parallel` threads: every [`ShardSlot`]
/// ticks through `&self` behind its own interior lock (an in-process
/// shard's engine mutex; an out-of-process shard's connection state, so a
/// remote step is a concurrently-issued child request under the usual
/// per-request deadline). The join below is the consistent-cut barrier —
/// the router clock, the staged-release plan, and slot faults advance
/// only after *every* shard has finished (or missed) the slot, so between
/// requests all healthy shards still sit at the router's virtual slot.
/// Replanning is per-shard-deterministic and shards share no state, so
/// thread interleaving cannot reach any output bits; tick outcomes are
/// processed sequentially in shard order, keeping error reporting
/// deterministic too (DESIGN.md §11 has the full argument).
fn tick_lockstep(
    core: &mut RouterCore,
    n: usize,
    router_telemetry: &Telemetry,
) -> Result<(usize, bool), Reply> {
    if !core.open() {
        return Err(shard_err(crate::shard::ShardError::AtHorizon));
    }
    for _ in 0..n {
        if !core.open() {
            break;
        }
        for shard in &core.shards {
            shard.rejoin(core.clock);
        }
        let step_start = telemetry::clock_start();
        let outcomes = haste_parallel::par_map(&core.shards, core.shards.len(), |_, shard| {
            let replan_start = telemetry::clock_start();
            let outcome = shard.tick1();
            (outcome, telemetry::elapsed_us(replan_start))
        });
        // The join above is the consistent-cut barrier: a shard's wait is
        // the gap between its own replan finishing and the whole step.
        let step_us = telemetry::elapsed_us(step_start);
        for (index, (shard, (outcome, replan_us))) in core.shards.iter().zip(outcomes).enumerate() {
            let cell_label = index.to_string();
            let registry = router_telemetry.registry();
            registry
                .histogram_with("haste_router_tick_replan_duration_us", "cell", &cell_label)
                .observe(replan_us);
            registry
                .histogram_with("haste_router_join_wait_duration_us", "cell", &cell_label)
                .observe((step_us - replan_us).max(0.0));
            match outcome {
                Ok((slot, _open)) => {
                    if slot != core.clock + 1 {
                        return Err(internal(&format!(
                            "lockstep broken: shard at slot {slot} after ticking from {}",
                            core.clock
                        )));
                    }
                }
                Err(SlotError::Unavailable { .. }) => shard.note_missed_tick(),
                Err(e) => return Err(slot_err(e)),
            }
        }
        core.clock += 1;
        core.drain_plan(core.clock);
        for shard in &core.shards {
            shard.apply_slot_faults(core.clock);
        }
    }
    Ok((core.clock, core.open()))
}

/// Re-merges shard schedules into original charger numbering. Bitwise
/// faithful: orientations are copied, never recomputed.
fn merged_schedule(core: &RouterCore) -> Result<Schedule, Reply> {
    let mut shard_schedules = Vec::with_capacity(core.shards.len());
    for shard in &core.shards {
        shard_schedules.push(shard.schedule().map_err(slot_err)?);
    }
    let mut merged = Schedule::empty(core.charger_shard.len(), core.slots);
    let mut locals = vec![0u32; core.shards.len()];
    for (i, &owner) in core.charger_shard.iter().enumerate() {
        let shard = owner as usize;
        let local = match locals.get_mut(shard) {
            Some(counter) => {
                let local = *counter;
                *counter += 1;
                local
            }
            None => return Err(internal("charger owner out of range")),
        };
        let Some(source) = shard_schedules.get(shard) else {
            return Err(internal("charger owner out of range"));
        };
        for slot in 0..core.slots {
            merged.set(
                ChargerId(i as u32),
                slot,
                source.get(ChargerId(local), slot),
            );
        }
    }
    Ok(merged)
}

/// Merges per-shard `wⱼ·Uⱼ` terms into the global arrival order — the
/// exact addend sequence of a single engine's evaluator (see module
/// docs). `UTILITY?` sums this; `PARTS?` serves it verbatim.
fn merged_parts(core: &RouterCore) -> Result<UtilityParts, Reply> {
    let mut parts = Vec::with_capacity(core.shards.len());
    for shard in &core.shards {
        parts.push(shard.utility_parts().map_err(slot_err)?);
    }
    let mut cursors = vec![0usize; core.shards.len()];
    let mut full = Vec::with_capacity(core.order.len());
    let mut relaxed = Vec::with_capacity(core.order.len());
    for &owner in &core.order {
        let shard = owner as usize;
        let (Some(cursor), Some(part)) = (cursors.get_mut(shard), parts.get(shard)) else {
            return Err(internal("task owner out of range"));
        };
        let (Some(full_term), Some(relaxed_term)) =
            (part.full.get(*cursor), part.relaxed.get(*cursor))
        else {
            return Err(internal("arrival order longer than shard task lists"));
        };
        full.push(*full_term);
        relaxed.push(*relaxed_term);
        *cursor += 1;
    }
    Ok(UtilityParts { full, relaxed })
}

fn internal(reason: &str) -> Reply {
    Reply::Err(ErrCode::Internal, reason.to_string())
}

/// Serializes the router's consistent cut: topology, partition geometry,
/// global bookkeeping, and every shard's embedded engine snapshot. Every
/// shard must be up and sitting on the router clock (a down shard's
/// state is mid-replay by definition, so `SNAPSHOT` in degraded mode
/// fails with `ERR unavailable`). Once the document is assembled, each
/// section is committed as its shard's new replay baseline — never
/// before, so a failed snapshot moves no baseline.
fn composite_snapshot(core: &RouterCore, config: &RouterConfig) -> Result<String, Reply> {
    let Some(partition) = core.partition.as_ref() else {
        return Err(shard_err(crate::shard::ShardError::NoScenario));
    };
    let mut sections = Vec::with_capacity(core.shards.len());
    for shard in &core.shards {
        // Lockstep is an invariant (one mutex, ticks inside it); this
        // re-checks it so a corrupt snapshot can never be emitted
        // silently, and surfaces `unavailable` for down shards.
        let (slot, _open) = shard.clock().map_err(slot_err)?;
        if slot != core.clock {
            return Err(internal(&format!(
                "shards out of lockstep: slot={slot} vs router clock {}",
                core.clock
            )));
        }
        sections.push(shard.snapshot().map_err(slot_err)?);
    }
    let mut text = String::new();
    text.push_str(COMPOSITE_MAGIC);
    text.push('\n');
    text.push_str(&format!("cells {} {}\n", config.cells.0, config.cells.1));
    let origin = partition.origin();
    let (field_w, field_h) = partition.field();
    text.push_str(&format!(
        "field {} {} {} {} {}\n",
        origin.x,
        origin.y,
        field_w,
        field_h,
        partition.halo()
    ));
    text.push_str(&format!("chargers {}\n", core.charger_shard.len()));
    for &owner in &core.charger_shard {
        text.push_str(&format!("{owner}\n"));
    }
    text.push_str(&format!("order {}\n", core.order.len()));
    for &owner in &core.order {
        text.push_str(&format!("{owner}\n"));
    }
    text.push_str(&format!("plan {}\n", core.plan.len()));
    for &(slot, owner) in &core.plan {
        text.push_str(&format!("{slot} {owner}\n"));
    }
    for (index, snapshot) in sections.iter().enumerate() {
        text.push_str(&format!("shard {index} {}\n", snapshot.lines().count()));
        text.push_str(snapshot);
        if !snapshot.is_empty() && !snapshot.ends_with('\n') {
            text.push('\n');
        }
    }
    // Commit: the cut is complete, so each section becomes its shard's
    // replay baseline and the journals empty (bounding replay depth).
    for (shard, section) in core.shards.iter().zip(sections) {
        shard.checkpoint(&section);
    }
    Ok(text)
}

/// A parsed composite router snapshot. [`parse_composite`] is public so
/// out-of-process tooling (loadgen verification, operators) can split a
/// composite document back into per-shard engine snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeSnapshot {
    /// Partition grid `(cells_x, cells_y)`.
    pub cells: (usize, usize),
    /// Field origin `(x, y)`.
    pub origin: (f64, f64),
    /// Field extent `(width, height)`.
    pub field: (f64, f64),
    /// Charger-reach halo width.
    pub halo: f64,
    /// Owning shard of each original charger, in original order.
    pub charger_shard: Vec<u32>,
    /// Owning shard of each materialized task, in global arrival order.
    pub order: Vec<u32>,
    /// Staged `(release_slot, shard)` pairs not yet released.
    pub plan: Vec<(usize, u32)>,
    /// Each shard's embedded engine snapshot document.
    pub shards: Vec<String>,
}

/// Parses a composite router snapshot document.
pub fn parse_composite(text: &str) -> Result<CompositeSnapshot, String> {
    let mut lines = text.lines();
    if lines.next() != Some(COMPOSITE_MAGIC) {
        return Err(format!("missing magic line `{COMPOSITE_MAGIC}`"));
    }
    let cells_line = lines.next().ok_or("truncated before cells")?;
    let cells = match cells_line.split_whitespace().collect::<Vec<_>>().as_slice() {
        ["cells", cx, cy] => (
            cx.parse::<usize>().map_err(|_| "bad cells_x".to_string())?,
            cy.parse::<usize>().map_err(|_| "bad cells_y".to_string())?,
        ),
        _ => return Err(format!("bad cells line `{cells_line}`")),
    };
    if cells.0 == 0 || cells.1 == 0 {
        return Err("cells must be positive".to_string());
    }
    let field_line = lines.next().ok_or("truncated before field")?;
    let field_fields = field_line.split_whitespace().collect::<Vec<_>>();
    let (origin, field, halo) = match field_fields.as_slice() {
        ["field", ox, oy, w, h, halo] => {
            let parse = |s: &str, what: &str| -> Result<f64, String> {
                s.parse::<f64>().map_err(|_| format!("bad {what} `{s}`"))
            };
            (
                (parse(ox, "origin x")?, parse(oy, "origin y")?),
                (parse(w, "field width")?, parse(h, "field height")?),
                parse(halo, "halo")?,
            )
        }
        _ => return Err(format!("bad field line `{field_line}`")),
    };
    let counted_section =
        |lines: &mut std::str::Lines<'_>, header: &str| -> Result<Vec<String>, String> {
            let head = lines
                .next()
                .ok_or_else(|| format!("truncated before {header}"))?;
            let count = match head.split_whitespace().collect::<Vec<_>>().as_slice() {
                [h, count] if *h == header => count
                    .parse::<usize>()
                    .map_err(|_| format!("bad {header} count `{count}`"))?,
                _ => return Err(format!("bad {header} line `{head}`")),
            };
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push(
                    lines
                        .next()
                        .ok_or_else(|| format!("truncated {header} section"))?
                        .to_string(),
                );
            }
            Ok(entries)
        };
    let charger_shard = counted_section(&mut lines, "chargers")?
        .iter()
        .map(|line| {
            line.trim()
                .parse::<u32>()
                .map_err(|_| format!("bad charger owner `{line}`"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let order = counted_section(&mut lines, "order")?
        .iter()
        .map(|line| {
            line.trim()
                .parse::<u32>()
                .map_err(|_| format!("bad task owner `{line}`"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let plan = counted_section(&mut lines, "plan")?
        .iter()
        .map(|line| -> Result<(usize, u32), String> {
            match line.split_whitespace().collect::<Vec<_>>().as_slice() {
                [slot, owner] => Ok((
                    slot.parse()
                        .map_err(|_| format!("bad plan slot `{line}`"))?,
                    owner
                        .parse()
                        .map_err(|_| format!("bad plan owner `{line}`"))?,
                )),
                _ => Err(format!("bad plan line `{line}`")),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let num_shards = cells.0 * cells.1;
    let mut shards = Vec::with_capacity(num_shards);
    for expected in 0..num_shards {
        let head = lines
            .next()
            .ok_or_else(|| format!("truncated before shard {expected}"))?;
        let nlines = match head.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["shard", index, nlines] if index.parse() == Ok(expected) => nlines
                .parse::<usize>()
                .map_err(|_| format!("bad shard line count `{head}`"))?,
            _ => {
                return Err(format!(
                    "bad shard header `{head}` (expected shard {expected})"
                ))
            }
        };
        let mut snapshot = String::new();
        for _ in 0..nlines {
            snapshot.push_str(
                lines
                    .next()
                    .ok_or_else(|| format!("truncated shard {expected} snapshot"))?,
            );
            snapshot.push('\n');
        }
        shards.push(snapshot);
    }
    if lines.next().is_some() {
        return Err("trailing lines after the last shard snapshot".to_string());
    }
    for (owner, what) in charger_shard
        .iter()
        .map(|o| (o, "charger"))
        .chain(order.iter().map(|o| (o, "task")))
        .chain(plan.iter().map(|(_, o)| (o, "plan")))
    {
        if *owner as usize >= num_shards {
            return Err(format!(
                "{what} owner {owner} out of range ({num_shards} shards)"
            ));
        }
    }
    Ok(CompositeSnapshot {
        cells,
        origin,
        field,
        halo,
        charger_shard,
        order,
        plan,
        shards,
    })
}

/// `RESTORE` on the router, two-phase so no failure can leave a partial
/// cut behind. Phase 1 parses the composite document and restores every
/// embedded engine *off to the side*, validating the set as a whole (per
/// section parse/validate, clock consistency across the cut); any failure
/// returns a structured `ERR` with all live state untouched. Phase 2
/// commits: every shard installs its restored engine (in-process) or
/// receives the snapshot text as its new baseline (child process — a push
/// failure there just marks the child down, and the rejoin replay
/// rebuilds it from that same committed baseline).
fn restore_composite(core: &mut RouterCore, config: &RouterConfig, payload: &str) -> Reply {
    let composite = match parse_composite(payload) {
        Ok(composite) => composite,
        Err(reason) => return Reply::Err(ErrCode::BadSnapshot, reason),
    };
    if composite.cells != config.cells {
        return Reply::Err(
            ErrCode::BadSnapshot,
            format!(
                "snapshot topology {}x{} does not match this router's {}x{}",
                composite.cells.0, composite.cells.1, config.cells.0, config.cells.1
            ),
        );
    }
    let partition = match Partition::grid(
        Vec2::new(composite.origin.0, composite.origin.1),
        composite.field.0,
        composite.field.1,
        composite.cells.0,
        composite.cells.1,
        composite.halo,
    ) {
        Ok(partition) => partition,
        Err(e) => return Reply::Err(ErrCode::BadSnapshot, e.to_string()),
    };
    // Phase 1: restore and validate every section without installing.
    let mut engines = Vec::with_capacity(composite.shards.len());
    let mut clock: Option<(usize, bool)> = None;
    let mut slots = 0;
    for (index, snapshot) in composite.shards.iter().enumerate() {
        let engine = match OnlineEngine::restore(snapshot) {
            Ok(engine) => engine,
            Err(e) => return Reply::Err(ErrCode::BadSnapshot, format!("shard {index}: {e}")),
        };
        let seen = (engine.clock(), !engine.is_closed());
        slots = slots.max(engine.scenario().grid.num_slots);
        match clock {
            None => clock = Some(seen),
            Some(common) if common == seen => {}
            Some(common) => {
                return Reply::Err(
                    ErrCode::BadSnapshot,
                    format!(
                        "inconsistent cut: shard clocks differ ({} vs {})",
                        common.0, seen.0
                    ),
                );
            }
        }
        engines.push(engine);
    }
    let Some((slot, open)) = clock else {
        return Reply::Err(ErrCode::BadSnapshot, "snapshot has no shards".to_string());
    };
    // Phase 2: the whole cut validated — commit it everywhere.
    for ((shard, engine), snapshot) in core.shards.iter().zip(engines).zip(composite.shards.iter())
    {
        shard.install_restored(engine, snapshot);
    }
    core.charger_shard = composite.charger_shard;
    core.order = composite.order;
    core.plan = composite.plan.into();
    core.slots = slots;
    core.clock = slot;
    core.partition = Some(partition);
    Reply::Ok(format!("slot={slot} open={}", u8::from(open)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    /// The worst wedge for the metrics shim: the inner dial connects but
    /// the "router" never greets. The scrape must come back as a prompt
    /// `503` carrying the deadline error, never hang the handler thread.
    #[test]
    fn a_wedged_router_scrape_returns_503_promptly() {
        let wedged = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let router = wedged.local_addr().expect("bound listener has an address");
        let hold = std::thread::spawn(move || {
            // Accept, then hold the socket open in silence until the
            // handler has long since given up.
            if let Ok((stream, _)) = wedged.accept() {
                std::thread::sleep(Duration::from_millis(500));
                drop(stream);
            }
        });

        let scrape = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let scrape_addr = scrape.local_addr().expect("bound listener has an address");
        let handler = std::thread::spawn(move || {
            let (stream, _) = scrape.accept().expect("scraper connects");
            serve_scrape_with(stream, router, Duration::from_millis(100))
        });

        let mut stream = TcpStream::connect(scrape_addr).expect("dial the scrape port");
        // The scraper's own read deadline doubles as the promptness
        // assertion: if the handler sat out the full 500 ms hold (or
        // hung), this read would time out and fail the test.
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("set the scrape read deadline");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
            .expect("send the scrape request");
        let mut response = String::new();
        stream
            .read_to_string(&mut response)
            .expect("the 503 arrives before the scraper deadline");

        assert!(
            response.starts_with("HTTP/1.1 503 "),
            "expected 503, got {response:?}"
        );
        assert!(
            response.contains("request deadline expired"),
            "body names the timeout: {response:?}"
        );
        handler
            .join()
            .expect("handler thread")
            .expect("handler completes the 503 write");
        hold.join().expect("hold thread");
    }
}
