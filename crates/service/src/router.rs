//! The sharded router: per-tenant shard fleets behind one listener,
//! in-process or supervised child processes, with **elastic resharding**.
//!
//! The router owns one shard per cell of a [`Partition`] (rect tiling
//! with a charger-reach halo). `LOAD` splits the scenario into per-cell
//! sub-scenarios — rejecting unpartitionable inputs with
//! `ERR unpartitionable` — and `SUBMIT` routes each task to the shard
//! owning its device position through a versioned [`RoutingMap`].
//! `TICK`, `UTILITY?`, `METRICS?` fan out to every shard of the
//! session's tenant; `SHARDS?` and `EXPORT?` span all tenants.
//!
//! **Multi-tenancy.** Each tenant owns a full routing universe: its own
//! partition, shard fleet, routing map, accepted-operation history, and
//! (optionally) a per-slot admission quota. `TENANT <id> [<quota>]`
//! binds a connection's session to a tenant; `LOAD` creates the tenant
//! on first use (spawning its fleet in process mode), and every other
//! stateful verb on a never-created tenant fails with
//! `ERR unknown-tenant`. The `default` tenant always exists, so the
//! single-tenant protocol of earlier versions works unchanged. Tenants
//! share nothing but the listener and the router mutex, so two tenants'
//! runs are bit-identical to each running alone.
//!
//! **Elastic resharding.** `RESHARD SPLIT <cell>` / `RESHARD MERGE <a>
//! <b>` change the session tenant's topology *live*: the new partition
//! is validated (halo invariants, charger reach), replacement shards for
//! the affected cell(s) are built off to the side — baseline sub-scenario
//! load plus a replay of the tenant's accepted-operation history — and
//! the routing map swaps atomically under the router mutex, bumping its
//! version. Unaffected shards are untouched. Because replay repeats
//! exactly the accepted submissions and ticks in arrival order, and
//! localized replanning is per-cell-deterministic, the rebuilt cells'
//! engine state is bitwise what a fresh run under the new partition
//! would have produced — so global utility is bit-identical across the
//! swap (DESIGN.md §13 has the full argument). A per-cell submission
//! gauge can trigger splits automatically
//! ([`RouterConfig::split_threshold`]).
//!
//! **Deployment modes.** By default every shard is an in-process
//! [`Shard`]. With [`RouterConfig::process`] set, each shard instead
//! lives in a spawned `haste-shardd` child reached over localhost TCP
//! (see [`crate::supervisor`]): same protocol, same bits — the wire
//! round-trips floats losslessly — plus a real failure domain per cell.
//! The launcher is retained, so tenants created later and reshard
//! children spawn the same way. Fault-plan directives bind to the cells
//! that exist at startup; shards spawned later carry no directives.
//!
//! **Failure model (out-of-process).** A child crash, hang past the
//! per-request deadline, or injected fault marks its shard *down*; the
//! router keeps serving. Submissions routed to a down cell fail with
//! `ERR unavailable <cell> ...`; `TICK` advances the healthy shards in
//! lockstep and journals the slots a down shard misses. At the start of
//! each tick step the supervisor restarts down children and replays
//! their last baseline (the loaded sub-scenario or last committed
//! `SNAPSHOT` section) plus the journal of acked operations — engine
//! determinism makes the rebuilt state bit-identical, so a recovered
//! cell rejoins the lockstep exactly where the router believes it is.
//! `SHARDS?` reports each shard as `up`, `restarting`, or `degraded`
//! (recovered after ≥1 restart); `METRICS?` totals restarts, replayed
//! operations, and currently-down shards.
//!
//! **Bit-equivalence contract.** With localized replanning
//! ([`OnlineConfig::localized`](haste_distributed::OnlineConfig)) the
//! negotiation of Alg. 3 never crosses a partition boundary, so each
//! shard's schedule is bitwise the restriction of the single-engine
//! schedule. The router reconstructs the single engine's totals exactly:
//! it records the **global arrival order** of tasks (initial release-0
//! tasks, then staged releases and live submissions as slots open) and
//! sums per-task `wⱼ·Uⱼ` terms in that order — the same addends in the
//! same sequence as the single engine's evaluator, hence the same bits.
//! Arrival order is stored as device *positions*, so it survives cell
//! renumbering: owners are re-derived from the current partition on
//! every merge.
//!
//! **Consistent cut.** All request handling serializes on one router
//! mutex and `TICK` advances every shard in lockstep inside it — the
//! per-shard replans of one slot run *concurrently* (scoped
//! `haste-parallel` threads in-process; concurrently-issued child
//! requests out-of-process), but the router joins them all before its
//! clock moves, so between requests all healthy shards still sit at the
//! router's virtual slot and the pipelining is invisible to every other
//! request. `SNAPSHOT` (under that mutex) therefore captures a trivially
//! consistent cut; it requires every shard up (a down shard's state is
//! mid-replay by definition) and, once the composite document is
//! assembled, commits each section as its shard's new replay baseline.
//! Resharding runs under the same mutex, so a migration is always a
//! between-ticks cut too. The composite document restores
//! bit-identically, into the tenant it names.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use haste_distributed::{OnlineConfig, OnlineEngine, TaskSpec};
use haste_geometry::{Angle, Vec2};
use haste_model::{
    io as model_io, CellRect, ChargerId, Partition, PartitionError, RoutingMap, Scenario, Schedule,
};
use haste_parallel::ThreadPool;
use parking_lot::Mutex;

use crate::client::Client;
use crate::framing::{self, BatchAck};
use crate::proto::{ErrCode, Reply, Request};
use crate::server::{
    batch_backstop, catching, hello_reply, parts_payload, read_line_polling, read_payload,
    shard_err, shard_err_parts, shard_line, READ_POLL,
};
use crate::shard::{Shard, ShardHealth, ShardStatus, UtilityParts};
use crate::supervisor::{
    resolve_shardd, Launcher, ProcessShardConfig, RemoteShard, ShardSlot, SlotError,
};
use crate::telemetry::{self, SupervisorCounters, Telemetry, TenantCounters, WalTelemetry};
use crate::wal::{self, TenantWal, WalConfig, WalRecord, WalSync};

/// Magic first line of a composite router snapshot.
const COMPOSITE_MAGIC: &str = "# haste-router snapshot v3";

/// The tenant every connection starts bound to; it exists from startup,
/// so single-tenant clients never need `TENANT`.
const DEFAULT_TENANT: &str = "default";

/// Configuration of a router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address; use port 0 to let the OS pick.
    pub addr: String,
    /// Connection-handler threads (the connection cap, as for the plain
    /// daemon).
    pub worker_threads: usize,
    /// Admission bound per shard: submissions per open slot before
    /// `ERR overload`.
    pub max_pending: usize,
    /// Scheduling configuration for every shard's engine. Bit-equivalence
    /// with a single-engine run requires `localized: true` here and on the
    /// reference daemon.
    pub scheduling: OnlineConfig,
    /// Initial partition grid as `(cells_x, cells_y)`; one shard per
    /// cell. Every tenant starts on this grid; resharding departs from it
    /// per tenant.
    pub cells: (usize, usize),
    /// Field origin `(x, y)` in meters.
    pub origin: (f64, f64),
    /// Field extent `(width, height)` in meters.
    pub field: (f64, f64),
    /// `Some` runs every shard as a supervised `haste-shardd` child
    /// process instead of in-process (see the module docs' failure
    /// model); `None` is the original in-process mode.
    pub process: Option<ProcessShardConfig>,
    /// `Some(addr)` additionally binds a plain-HTTP scrape listener that
    /// answers any `GET` with the router's `EXPORT?` exposition text
    /// (Prometheus-style). `None` disables it; `EXPORT?` on the wire
    /// protocol is always available.
    pub metrics_addr: Option<String>,
    /// `Some(n)`: at each `TICK`, a cell that accepted more than `n`
    /// submissions during the closing slot is split automatically (best
    /// effort — an unsplittable cell keeps its load). `None` disables
    /// the trigger; `RESHARD SPLIT` always works.
    pub split_threshold: Option<u64>,
    /// `Some` makes the router durable: every tenant mutation is framed
    /// into a per-tenant write-ahead log under the configured directory,
    /// checkpointed through the composite-snapshot machinery, and at
    /// startup every tenant found there is recovered bit-identically
    /// before the first connection is accepted. `None` is the original
    /// in-memory router.
    pub wal: Option<WalConfig>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            worker_threads: 64,
            max_pending: 4096,
            scheduling: OnlineConfig::default(),
            cells: (2, 1),
            origin: (0.0, 0.0),
            field: (200.0, 100.0),
            process: None,
            metrics_addr: None,
            split_threshold: None,
            wal: None,
        }
    }
}

/// One entry of a tenant's accepted-operation history: exactly the
/// state-changing operations the router acked since `LOAD`, in arrival
/// order. Replaying this history into a freshly loaded cell rebuilds its
/// engine bit-identically (engine determinism + localized replanning),
/// which is how live migration reconstructs the children of a split or
/// the union cell of a merge. Rejected submissions are *not* recorded:
/// they changed no state, and a child cell's pending set is a subset of
/// its parent's at every prefix, so replaying only acceptances can never
/// hit an admission bound the original run did not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HistOp {
    /// An accepted live submission (`SUBMIT` or one `OP_BATCH` record).
    Submit(TaskSpec),
    /// One lockstep tick.
    Tick,
}

/// Everything one tenant owns: its shard fleet, partition, versioned
/// routing map, accepted-operation history, global arrival bookkeeping,
/// and admission quota. Arrival order and the staged-release plan store
/// device *positions* — owners are derived from the current partition on
/// demand, so they survive cell renumbering across resharding.
struct TenantCore {
    shards: Vec<ShardSlot>,
    /// Built at `LOAD`/`RESTORE` (the halo is the scenario's radius).
    partition: Option<Partition>,
    /// Versioned cell → shard assignment; bumped on every reshard.
    map: RoutingMap,
    /// The loaded scenario, kept verbatim: reshard baselines re-split it.
    scenario: Option<Scenario>,
    /// Accepted-operation history since `LOAD` (see [`HistOp`]).
    ops: Vec<HistOp>,
    /// Device position of every materialized task, in global arrival
    /// order. Shard-local task ids follow by per-shard counting.
    order: Vec<Vec2>,
    /// Staged tasks not yet released: `(release_slot, position)` in the
    /// single engine's injection order (stable by release slot).
    plan: VecDeque<(usize, Vec2)>,
    /// Time-grid length, for merging schedules.
    slots: usize,
    /// The tenant's virtual clock. This is the authority — healthy shards
    /// follow it in lockstep, and a down shard rejoins *to it* by replay —
    /// so it stays correct even while children are dead.
    clock: usize,
    /// Per-slot accepted-submission cap; `None` is unlimited.
    quota: Option<u64>,
    /// Accepted submissions in the currently open slot.
    quota_used: u64,
    /// Accepted submissions per cell in the currently open slot — the
    /// elastic-split load trigger.
    cell_submits: Vec<u64>,
    /// Tenant-labeled counters (reshards, quota rejections).
    counters: TenantCounters,
}

impl TenantCore {
    fn new(shards: Vec<ShardSlot>, quota: Option<u64>, counters: TenantCounters) -> TenantCore {
        let cells = shards.len();
        TenantCore {
            shards,
            partition: None,
            map: RoutingMap::identity(cells.max(1)),
            scenario: None,
            ops: Vec::new(),
            order: Vec::new(),
            plan: VecDeque::new(),
            slots: 0,
            clock: 0,
            quota,
            quota_used: 0,
            cell_submits: vec![0; cells],
            counters,
        }
    }

    /// Appends to `order` every planned staged release for slots up to and
    /// including `clock` (the single engine injects staged tasks the
    /// moment their slot opens, before any live submission of that slot).
    fn drain_plan(&mut self, clock: usize) {
        while let Some(&(slot, pos)) = self.plan.front() {
            if slot > clock {
                break;
            }
            self.order.push(pos);
            self.plan.pop_front();
        }
    }

    /// Whether the tenant's grid still has open slots.
    fn open(&self) -> bool {
        self.clock < self.slots
    }
}

/// One durable tenant's log handle. `Poisoned` is the fail-stop state: a
/// log write failed after its operation was already applied, so the
/// router can no longer promise recovery equals the acked history — the
/// tenant stays readable, every further mutation is refused, and only a
/// restart (recovery from the last durable state) or a `RESTORE` (which
/// re-creates the log wholesale) clears it. This is divergence-safe: the
/// applied-but-unlogged operation was NACKed and is the tenant's last
/// mutation ever, so the durable state never silently forks from the
/// acked one.
enum WalHandle {
    Open(TenantWal),
    Poisoned,
}

/// Mutable router state: every tenant's universe, under one mutex.
struct RouterCore {
    /// Tenant id → tenant state. `BTreeMap` so cross-tenant fan-outs
    /// (`SHARDS?`, `EXPORT?`) iterate in a stable order.
    tenants: BTreeMap<String, TenantCore>,
    /// Tenant id → open write-ahead log. Populated only on a durable
    /// router ([`RouterConfig::wal`]), and only for tenants with state
    /// (`LOAD`/`RESTORE` create the entry; recovery re-opens it). Lives
    /// beside `tenants` under the same mutex so the log order is exactly
    /// the apply order.
    wals: BTreeMap<String, WalHandle>,
}

/// The durability runtime of one router: the `--wal-dir` configuration
/// plus the pre-resolved `haste_wal_*` hot-path histograms.
struct WalRuntime {
    config: WalConfig,
    telemetry: WalTelemetry,
}

/// State shared by every connection of one router.
struct RouterShared {
    core: Mutex<RouterCore>,
    config: RouterConfig,
    shutdown: AtomicBool,
    telemetry: Telemetry,
    /// Retained in process mode so tenants created after startup and
    /// reshard children spawn the same `haste-shardd` fleet; `None` in
    /// in-process mode.
    launcher: Option<Launcher>,
    /// `Some` on a durable router (see [`RouterConfig::wal`]).
    wal: Option<WalRuntime>,
}

/// Per-connection session state: which tenant the connection is bound
/// to, plus a quota remembered from a `TENANT` naming a not-yet-created
/// tenant (applied when `LOAD` creates it).
struct Session {
    tenant: String,
    pending_quota: Option<u64>,
}

impl Default for Session {
    fn default() -> Session {
        Session {
            tenant: DEFAULT_TENANT.to_string(),
            pending_quota: None,
        }
    }
}

/// A running router. Dropping the handle shuts it down and joins its
/// threads.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    metrics_thread: Option<std::thread::JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The number of shards the initial grid gives every tenant.
    pub fn shards(&self) -> usize {
        self.shared.config.cells.0 * self.shared.config.cells.1
    }

    /// Blocks until the accept loop exits (i.e. forever, unless another
    /// thread signals shutdown). For foreground daemon binaries.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Signals shutdown and joins the accept loop and all handlers.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.metrics_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Starts a router and returns its handle. Mirrors [`crate::serve`] but
/// owns per-tenant shard fleets instead of one engine. With
/// [`RouterConfig::process`] set this spawns one `haste-shardd` child per
/// cell of the default tenant before binding; a launch failure aborts
/// startup (there is no state to recover yet — supervision begins once
/// the fleet is up). The launcher is retained for tenants created later.
pub fn serve_router(config: RouterConfig) -> std::io::Result<RouterHandle> {
    if config.cells.0 == 0 || config.cells.1 == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "router needs at least one cell per axis",
        ));
    }
    let num_shards = config.cells.0 * config.cells.1;
    let router_telemetry = Telemetry::new();
    let mut launcher = None;
    let shards: Vec<ShardSlot> = match &config.process {
        None => (0..num_shards)
            .map(|_| ShardSlot::Local(Shard::new(config.scheduling.clone(), config.max_pending)))
            .collect(),
        Some(process) => {
            if !config.scheduling.failures.is_empty() {
                // Charger-failure injection mutates engine internals the
                // wire protocol does not carry; it stays in-process.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "charger failure injection is not supported with out-of-process shards",
                ));
            }
            let plan = process.fault_plan.clone().unwrap_or_default();
            if let Some(cell) = plan.cells().into_iter().find(|&cell| cell >= num_shards) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!(
                        "fault plan targets cell {cell}, but the router has {num_shards} shards"
                    ),
                ));
            }
            let program = resolve_shardd(process.shardd.as_deref())?;
            let spawner = Launcher::new(
                program,
                &config.scheduling,
                config.max_pending,
                process.effective_deadline(),
            );
            let mut shards = Vec::with_capacity(num_shards);
            for cell in 0..num_shards {
                shards.push(ShardSlot::Remote(RemoteShard::launch(
                    cell,
                    spawner.clone(),
                    plan.for_cell(cell),
                    SupervisorCounters::for_cell(router_telemetry.registry(), cell),
                )?));
            }
            launcher = Some(spawner);
            shards
        }
    };
    let mut tenants = BTreeMap::new();
    tenants.insert(
        DEFAULT_TENANT.to_string(),
        TenantCore::new(
            shards,
            None,
            TenantCounters::for_tenant(router_telemetry.registry(), DEFAULT_TENANT),
        ),
    );
    TenantCounters::set_shards(router_telemetry.registry(), DEFAULT_TENANT, num_shards);
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    // Bind the scrape listener before spawning anything, so a bad
    // `metrics_addr` aborts startup instead of failing silently later.
    let metrics_listener = match &config.metrics_addr {
        Some(scrape_addr) => {
            let listener = TcpListener::bind(scrape_addr)?;
            listener.set_nonblocking(true)?;
            Some(listener)
        }
        None => None,
    };
    let wal_runtime = match &config.wal {
        None => None,
        Some(wal_config) => {
            std::fs::create_dir_all(&wal_config.dir)?;
            Some(WalRuntime {
                config: wal_config.clone(),
                telemetry: WalTelemetry::new(router_telemetry.registry()),
            })
        }
    };
    let shared = Arc::new(RouterShared {
        core: Mutex::new(RouterCore {
            tenants,
            wals: BTreeMap::new(),
        }),
        config: config.clone(),
        shutdown: AtomicBool::new(false),
        telemetry: router_telemetry,
        launcher,
        wal: wal_runtime,
    });
    // Durable startup: recover every tenant the WAL directory holds —
    // newest checkpoint plus log-tail replay — before the accept thread
    // exists, so the first connection already sees the recovered state.
    // (The listener is bound; early connectors wait in its backlog.)
    recover_from_wal(&shared)?;
    let accept_shared = Arc::clone(&shared);
    let workers = config.worker_threads.max(1);
    let accept_thread = std::thread::Builder::new()
        .name("haste-router-accept".to_string())
        .spawn(move || {
            let pool = ThreadPool::new(workers);
            while !accept_shared.shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let conn_shared = Arc::clone(&accept_shared);
                        pool.execute(move || {
                            let _ = handle_connection(stream, &conn_shared);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })?;
    let metrics_thread = match metrics_listener {
        Some(listener) => {
            let scrape_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("haste-router-metrics".to_string())
                    .spawn(move || {
                        while !scrape_shared.shutdown.load(Ordering::Acquire) {
                            match listener.accept() {
                                Ok((stream, _peer)) => {
                                    let _ = serve_scrape(stream, addr);
                                }
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(Duration::from_millis(5));
                                }
                                Err(_) => break,
                            }
                        }
                    })?,
            )
        }
        None => None,
    };
    Ok(RouterHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        metrics_thread,
    })
}

/// Every socket deadline on the HTTP scrape path — the scraper-facing
/// stream (both directions) and the internal dial back into the router's
/// protocol port. One constant so the whole scrape is uniformly bounded.
const SCRAPE_DEADLINE: Duration = Duration::from_secs(5);

/// Answers one HTTP scrape: any `GET` gets the router's `EXPORT?`
/// exposition as `200 text/plain`. The handler dials the router's own
/// protocol port as an ordinary client, so the scrape sees exactly the
/// document wire clients see (merged child registries included) and the
/// HTTP layer stays a dozen lines: request head + headers in, one
/// `Content-Length`-framed response out, connection closed.
fn serve_scrape(stream: TcpStream, router: SocketAddr) -> std::io::Result<()> {
    serve_scrape_with(stream, router, SCRAPE_DEADLINE)
}

/// [`serve_scrape`] with the deadline injectable, so tests can exercise
/// the wedged-router path in milliseconds instead of [`SCRAPE_DEADLINE`].
fn serve_scrape_with(
    stream: TcpStream,
    router: SocketAddr,
    deadline: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(deadline))?;
    stream.set_write_timeout(Some(deadline))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut head = String::new();
    reader.read_line(&mut head)?;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim_end().is_empty() {
            break;
        }
    }
    let mut writer = BufWriter::new(stream);
    if !head.starts_with("GET ") {
        writer.write_all(
            b"HTTP/1.1 405 Method Not Allowed\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )?;
        return writer.flush();
    }
    // The inner dial carries the same deadline end to end: a wedged
    // router (or one that accepts and never greets) turns into a prompt
    // `503` with the timeout in the body, never a hung scrape thread.
    let body =
        Client::connect_with_deadline(router, Some(deadline)).and_then(|mut conn| conn.export());
    match body {
        Ok(body) => {
            writer.write_all(
                format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            )?;
            writer.write_all(body.as_bytes())?;
        }
        Err(e) => {
            let detail = format!("scrape failed: {e}\n");
            writer.write_all(
                format!(
                    "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n",
                    detail.len()
                )
                .as_bytes(),
            )?;
            writer.write_all(detail.as_bytes())?;
        }
    }
    writer.flush()
}

/// Serves one connection until EOF, `BYE`, or shutdown. The session (the
/// connection's tenant binding) lives in a `RefCell` because the framed
/// loop hands two closures to [`framing::serve_frames`] and both need it.
fn handle_connection(stream: TcpStream, shared: &RouterShared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_write_timeout(Some(crate::server::WRITE_STALL))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut buf = Vec::new();
    let session = RefCell::new(Session::default());
    loop {
        let Some(line) = read_line_polling(&mut reader, &mut buf, &shared.shutdown)? else {
            return Ok(());
        };
        if line.is_empty() {
            continue;
        }
        let (reply, close) = dispatch(&line, &mut reader, shared, &session)?;
        let upgrade = framing::upgrades_to_v3(&line, &reply);
        writer.write_all(reply.serialize().as_bytes())?;
        writer.flush()?;
        if close {
            return Ok(());
        }
        if upgrade {
            // Same switch as the single-engine daemon: the accepted
            // `HELLO v3` greeting is the last text exchange.
            return serve_framed(&mut reader, &mut writer, shared, &session);
        }
    }
}

/// The router's framed (protocol v3) connection loop: identical dispatch
/// semantics, plus the batched-submit path — many records per `OP_BATCH`
/// frame, routed and acknowledged under one acquisition of the router
/// mutex.
fn serve_framed<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    shared: &RouterShared,
    session: &RefCell<Session>,
) -> std::io::Result<()> {
    framing::serve_frames(
        reader,
        writer,
        &shared.shutdown,
        |head, payload| {
            let mut embedded = std::io::Cursor::new(payload);
            dispatch(head, &mut embedded, shared, session)
        },
        |specs| batch_backstop(specs, || execute_batch(specs, shared, session)),
    )
}

/// Executes a batched submission on the router: one lock acquisition,
/// then per record the exact `SUBMIT` path — finiteness check, quota
/// gate, cell routing, shard admission, and a push onto the tenant's
/// arrival order and operation history. Holding the lock across the
/// whole frame means the batch occupies a contiguous run of the arrival
/// order, but any interleaving with other connections' submissions would
/// be equally valid: within a slot the recorded order *is* the
/// determinism contract, exactly as for text submits racing on separate
/// connections.
fn execute_batch(
    specs: &[TaskSpec],
    shared: &RouterShared,
    session: &RefCell<Session>,
) -> Vec<BatchAck> {
    let start = telemetry::clock_start();
    let tenant_id = session.borrow().tenant.clone();
    let mut core = shared.core.lock();
    let mut records: Vec<WalRecord> = Vec::new();
    let mut acks: Vec<BatchAck> = if wal_poisoned(&core, &tenant_id) {
        let (code, message) = wal_poisoned_parts(&tenant_id);
        specs
            .iter()
            .map(|_| BatchAck::Err {
                code: code.as_str().to_string(),
                message: message.clone(),
            })
            .collect()
    } else {
        match core.tenants.get_mut(&tenant_id) {
            None => {
                let (code, message) = unknown_tenant_parts(&tenant_id);
                specs
                    .iter()
                    .map(|_| BatchAck::Err {
                        code: code.as_str().to_string(),
                        message: message.clone(),
                    })
                    .collect()
            }
            Some(tenant) => specs
                .iter()
                .map(|spec| {
                    if !(spec.device_pos.x.is_finite()
                        && spec.device_pos.y.is_finite()
                        && spec.device_facing.radians().is_finite())
                    {
                        // Never reached the tenant: nothing to log.
                        BatchAck::rejected(ErrCode::BadTask, "non-finite position/facing")
                    } else {
                        // haste-lint: allow(L2) — lockstep contract: `core` serializes shard traffic so global arrival order stays bit-identical; the child request is deadline-bounded
                        match submit_routed(tenant, &tenant_id, *spec, shared) {
                            Ok((global, release, _shard)) => {
                                records.push(WalRecord::Submit(*spec));
                                BatchAck::Ok {
                                    task: global as u64,
                                    release: release as u64,
                                }
                            }
                            Err((code, message)) => {
                                records.push(WalRecord::Reject {
                                    code: code.as_str().to_string(),
                                    spec: *spec,
                                });
                                BatchAck::Err {
                                    code: code.as_str().to_string(),
                                    message,
                                }
                            }
                        }
                    }
                })
                .collect(),
        }
    };
    if !wal_append(&mut core, shared, &tenant_id, &records) {
        // The whole frame's durability failed: no record may be acked as
        // applied, because none of them would survive recovery.
        let (code, message) = wal_poisoned_parts(&tenant_id);
        acks = specs
            .iter()
            .map(|_| BatchAck::Err {
                code: code.as_str().to_string(),
                message: message.clone(),
            })
            .collect();
    }
    let rejected = acks
        .iter()
        .filter(|ack| matches!(ack, BatchAck::Err { .. }))
        .count();
    shared
        .telemetry
        .observe_batch(specs.len(), rejected, telemetry::elapsed_us(start));
    acks
}

/// Parses and executes one request under the panic backstop (see the
/// single-engine daemon's `dispatch`).
fn dispatch<R: BufRead>(
    line: &str,
    reader: &mut R,
    shared: &RouterShared,
    session: &RefCell<Session>,
) -> std::io::Result<(Reply, bool)> {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(reason) => {
            shared.telemetry.count_error(ErrCode::BadRequest);
            return Ok((Reply::Err(ErrCode::BadRequest, reason), false));
        }
    };
    let opcode = request.opcode();
    let start = telemetry::clock_start();
    let result = catching(AssertUnwindSafe(|| {
        execute(request, reader, shared, session)
    }));
    if let Ok((reply, _)) = &result {
        shared
            .telemetry
            .observe_request(opcode, telemetry::elapsed_us(start), reply);
    }
    result
}

/// Maps a partition failure onto the wire error space: geometry/split
/// violations are the client's scenario-vs-topology mismatch.
fn partition_err(e: PartitionError) -> Reply {
    Reply::Err(ErrCode::Unpartitionable, e.to_string())
}

/// Maps a shard-slot failure onto the wire error space. Structured child
/// errors pass through with their original code; a down shard becomes
/// `ERR unavailable` with the cell index leading the message, so clients
/// can tell *which* cell is degraded without a `SHARDS?` round trip.
fn slot_err(e: SlotError) -> Reply {
    let (code, message) = slot_err_parts(e);
    Reply::Err(code, message)
}

/// The code/message pair of [`slot_err`], for the batch-ack path.
fn slot_err_parts(e: SlotError) -> (ErrCode, String) {
    match e {
        SlotError::Shard(e) => shard_err_parts(e),
        SlotError::Remote { code, message } => (code, message),
        SlotError::Unavailable { cell, detail } => {
            (ErrCode::Unavailable, format!("{cell} shard down: {detail}"))
        }
    }
}

/// The code/message pair of the never-created-tenant error.
fn unknown_tenant_parts(id: &str) -> (ErrCode, String) {
    (
        ErrCode::UnknownTenant,
        format!("tenant `{id}` does not exist (LOAD creates it)"),
    )
}

/// `ERR unknown-tenant` as a reply.
fn unknown_tenant(id: &str) -> Reply {
    let (code, message) = unknown_tenant_parts(id);
    Reply::Err(code, message)
}

/// The session's tenant, or `ERR unknown-tenant`.
fn tenant_mut<'a>(core: &'a mut RouterCore, id: &str) -> Result<&'a mut TenantCore, Reply> {
    match core.tenants.get_mut(id) {
        Some(tenant) => Ok(tenant),
        None => Err(unknown_tenant(id)),
    }
}

/// Shared-reference variant of [`tenant_mut`].
fn tenant_ref<'a>(core: &'a RouterCore, id: &str) -> Result<&'a TenantCore, Reply> {
    match core.tenants.get(id) {
        Some(tenant) => Ok(tenant),
        None => Err(unknown_tenant(id)),
    }
}

/// Builds one empty shard slot for cell index `cell`: in-process, or a
/// freshly spawned `haste-shardd` child via the retained launcher. New
/// slots carry no fault directives — the fault plan bound to the cells
/// that existed at startup.
fn fresh_slot(shared: &RouterShared, cell: usize) -> Result<ShardSlot, Reply> {
    match &shared.launcher {
        None => Ok(ShardSlot::Local(Shard::new(
            shared.config.scheduling.clone(),
            shared.config.max_pending,
        ))),
        Some(launcher) => match RemoteShard::launch(
            cell,
            launcher.clone(),
            Vec::new(),
            SupervisorCounters::for_cell(shared.telemetry.registry(), cell),
        ) {
            Ok(shard) => Ok(ShardSlot::Remote(shard)),
            Err(e) => Err(internal(&format!("spawning a shard child failed: {e}"))),
        },
    }
}

/// Creates tenant `id` with an empty fleet on the configured grid if it
/// does not exist yet (the `LOAD` path; `TENANT` only selects).
fn ensure_tenant(
    core: &mut RouterCore,
    shared: &RouterShared,
    id: &str,
    quota: Option<u64>,
) -> Result<(), Reply> {
    if let Some(tenant) = core.tenants.get_mut(id) {
        if quota.is_some() {
            tenant.quota = quota;
        }
        return Ok(());
    }
    let count = shared.config.cells.0 * shared.config.cells.1;
    let mut shards = Vec::with_capacity(count);
    for cell in 0..count {
        shards.push(fresh_slot(shared, cell)?);
    }
    core.tenants.insert(
        id.to_string(),
        TenantCore::new(
            shards,
            quota,
            TenantCounters::for_tenant(shared.telemetry.registry(), id),
        ),
    );
    TenantCounters::set_shards(shared.telemetry.registry(), id, count);
    Ok(())
}

/// The shared `SUBMIT` path (text and batch): quota gate, cell routing
/// through the tenant's routing map, shard admission, then the
/// bookkeeping pushes — arrival order (position), operation history,
/// quota usage, and the per-cell submission gauge that feeds the
/// elastic-split trigger.
fn submit_routed(
    tenant: &mut TenantCore,
    tenant_id: &str,
    spec: TaskSpec,
    shared: &RouterShared,
) -> Result<(usize, usize, usize), (ErrCode, String)> {
    let Some(partition) = tenant.partition.as_ref() else {
        return Err(shard_err_parts(crate::shard::ShardError::NoScenario));
    };
    if let Some(quota) = tenant.quota {
        if tenant.quota_used >= quota {
            tenant.counters.quota_rejected.inc();
            return Err((
                ErrCode::Quota,
                format!(
                    "tenant `{tenant_id}` exhausted its quota of {quota} submissions this slot"
                ),
            ));
        }
    }
    let cell = partition.cell_of(spec.device_pos);
    let shard_index = tenant.map.shard_of(cell) as usize;
    let outcome = match tenant.shards.get(shard_index) {
        Some(shard) => shard.submit(spec),
        None => Err(SlotError::Shard(crate::shard::ShardError::NoScenario)),
    };
    match outcome {
        Ok((_local, release)) => {
            let global = tenant.order.len();
            tenant.order.push(spec.device_pos);
            tenant.ops.push(HistOp::Submit(spec));
            tenant.quota_used += 1;
            if let Some(count) = tenant.cell_submits.get_mut(cell) {
                *count += 1;
            }
            if tenant_id == DEFAULT_TENANT {
                telemetry::count_cell_submit(shared.telemetry.registry(), cell);
            }
            Ok((global, release, shard_index))
        }
        Err(e) => Err(slot_err_parts(e)),
    }
}

/// Whether a tenant's log is in the fail-stop state (see [`WalHandle`]).
fn wal_poisoned(core: &RouterCore, tenant_id: &str) -> bool {
    matches!(core.wals.get(tenant_id), Some(WalHandle::Poisoned))
}

/// The reply every mutation on a poisoned tenant gets.
fn wal_poisoned_reply(tenant_id: &str) -> Reply {
    internal(&format!(
        "tenant `{tenant_id}` is read-only: its write-ahead log failed; restart the router to recover, or RESTORE a snapshot"
    ))
}

/// The error-code/message pair of [`wal_poisoned_reply`], for batch acks.
fn wal_poisoned_parts(tenant_id: &str) -> (ErrCode, String) {
    match wal_poisoned_reply(tenant_id) {
        Reply::Err(code, message) => (code, message),
        _ => (ErrCode::Internal, "write-ahead log failed".to_string()),
    }
}

/// Logs already-applied operations to a durable tenant's WAL, fsyncing
/// per the configured policy (`always`, or `every-tick` when the batch
/// carries a slot close). Returns `true` when the operations are as
/// durable as the policy promises — including the vacuous cases (no WAL
/// configured, tenant has no log yet). On a write or sync failure the
/// tenant's log poisons (fail-stop; see [`WalHandle`]) and the caller
/// must reply `ERR internal` *instead of* the success ack, because an
/// acked-but-unlogged mutation would survive in memory but not in
/// recovery.
fn wal_append(
    core: &mut RouterCore,
    shared: &RouterShared,
    tenant_id: &str,
    records: &[WalRecord],
) -> bool {
    let Some(runtime) = shared.wal.as_ref() else {
        return true;
    };
    if records.is_empty() {
        return true;
    }
    let Some(WalHandle::Open(tenant_wal)) = core.wals.get_mut(tenant_id) else {
        // No log yet (tenant not loaded — nothing durable to protect) or
        // poisoned (the arm already refused the mutation up front).
        return true;
    };
    let start = telemetry::clock_start();
    let appended = tenant_wal.append(records);
    runtime
        .telemetry
        .append
        .observe(telemetry::elapsed_us(start));
    let synced = appended.and_then(|()| {
        let must_sync = match runtime.config.sync {
            WalSync::Always => true,
            WalSync::EveryTick => records
                .iter()
                .any(|record| matches!(record, WalRecord::Tick)),
        };
        if must_sync {
            let start = telemetry::clock_start();
            let result = tenant_wal.sync();
            runtime
                .telemetry
                .fsync
                .observe(telemetry::elapsed_us(start));
            result
        } else {
            Ok(())
        }
    });
    match synced {
        Ok(()) => true,
        Err(e) => {
            eprintln!("haste-router: wal append for tenant `{tenant_id}` failed ({e}); the tenant is now read-only");
            core.wals.insert(tenant_id.to_string(), WalHandle::Poisoned);
            false
        }
    }
}

/// Creates (or wholesale re-creates) a durable tenant's log and writes
/// its first checkpoint — the `LOAD`/`RESTORE` invariant: a tenant with
/// state always has a checkpoint, so its log tail only ever carries
/// post-load operations and recovery always has a scenario to start
/// from. A failure poisons the tenant (the state was already installed
/// but cannot be made durable) and returns the fail-stop reply.
fn wal_install(core: &mut RouterCore, shared: &RouterShared, tenant_id: &str) -> Result<(), Reply> {
    let Some(runtime) = shared.wal.as_ref() else {
        return Ok(());
    };
    match TenantWal::create(&runtime.config.dir, tenant_id) {
        Ok(tenant_wal) => {
            core.wals
                .insert(tenant_id.to_string(), WalHandle::Open(tenant_wal));
            wal_checkpoint(core, shared, tenant_id)
        }
        Err(e) => {
            eprintln!(
                "haste-router: creating the wal for tenant `{tenant_id}` failed ({e}); the tenant is now read-only"
            );
            core.wals.insert(tenant_id.to_string(), WalHandle::Poisoned);
            Err(wal_poisoned_reply(tenant_id))
        }
    }
}

/// Checkpoints a durable tenant: the composite consistent-cut document —
/// rendered by the exact code path the operator-facing `SNAPSHOT` verb
/// uses — is installed atomically and the log truncates behind it. A
/// composite failure (a down shard) propagates untouched; a file failure
/// poisons the tenant.
fn wal_checkpoint(
    core: &mut RouterCore,
    shared: &RouterShared,
    tenant_id: &str,
) -> Result<(), Reply> {
    if shared.wal.is_none() {
        return Ok(());
    }
    let Some(tenant) = core.tenants.get(tenant_id) else {
        return Ok(());
    };
    let text = composite_snapshot(tenant, tenant_id)?;
    let quota = tenant.quota;
    let Some(WalHandle::Open(tenant_wal)) = core.wals.get_mut(tenant_id) else {
        return Ok(());
    };
    match tenant_wal.checkpoint(&text, quota) {
        Ok(()) => {
            WalTelemetry::count_checkpoint(shared.telemetry.registry(), tenant_id);
            Ok(())
        }
        Err(e) => {
            eprintln!(
                "haste-router: checkpointing tenant `{tenant_id}` failed ({e}); the tenant is now read-only"
            );
            core.wals.insert(tenant_id.to_string(), WalHandle::Poisoned);
            Err(wal_poisoned_reply(tenant_id))
        }
    }
}

/// The automatic checkpoint trigger, attempted at slot close: once a
/// durable tenant's log accumulated [`WalConfig::checkpoint_every`]
/// records, take a checkpoint. Best effort — a composite failure (e.g. a
/// shard is down mid-restart) skips this attempt and the threshold
/// re-arms at the next tick; only file failures poison (via
/// [`wal_checkpoint`]).
fn maybe_wal_checkpoint(core: &mut RouterCore, shared: &RouterShared, tenant_id: &str) {
    let Some(runtime) = shared.wal.as_ref() else {
        return;
    };
    if runtime.config.checkpoint_every == 0 {
        return;
    }
    let due = matches!(
        core.wals.get(tenant_id),
        Some(WalHandle::Open(tenant_wal))
            if tenant_wal.ops_since_checkpoint >= runtime.config.checkpoint_every
    );
    if !due {
        return;
    }
    let Some(tenant) = core.tenants.get(tenant_id) else {
        return;
    };
    let Ok(text) = composite_snapshot(tenant, tenant_id) else {
        return;
    };
    let quota = tenant.quota;
    let Some(WalHandle::Open(tenant_wal)) = core.wals.get_mut(tenant_id) else {
        return;
    };
    match tenant_wal.checkpoint(&text, quota) {
        Ok(()) => WalTelemetry::count_checkpoint(shared.telemetry.registry(), tenant_id),
        Err(e) => {
            eprintln!(
                "haste-router: checkpointing tenant `{tenant_id}` failed ({e}); the tenant is now read-only"
            );
            core.wals.insert(tenant_id.to_string(), WalHandle::Poisoned);
        }
    }
}

/// The stable text of a reply for recovery error reporting.
fn reply_error_text(reply: &Reply) -> String {
    match reply {
        Reply::Err(code, message) => format!("{} {message}", code.as_str()),
        Reply::Ok(line) => format!("unexpected ok: {line}"),
        Reply::Data(_) => "unexpected data reply".to_string(),
    }
}

/// Replays one log record into a recovered tenant through the *live*
/// request paths, so replay determinism is the router's ordinary
/// determinism. Rejected submissions and checkpoint markers replay as
/// no-ops: neither ever mutated tenant state (rejections are logged so
/// the admission decision is durable; orphaned markers belong to
/// checkpoints that never finished installing).
fn apply_wal_record(
    core: &mut RouterCore,
    shared: &RouterShared,
    tenant_id: &str,
    record: &WalRecord,
) -> Result<(), String> {
    let Some(tenant) = core.tenants.get_mut(tenant_id) else {
        return Err("tenant vanished mid-recovery".to_string());
    };
    match record {
        WalRecord::Reject { .. } | WalRecord::Checkpoint { .. } => Ok(()),
        WalRecord::Quota(q) => {
            tenant.quota = Some(*q);
            Ok(())
        }
        WalRecord::Submit(spec) => match submit_routed(tenant, tenant_id, *spec, shared) {
            Ok(_) => Ok(()),
            Err((code, message)) => Err(format!(
                "logged-accepted submit re-rejected: {} {message}",
                code.as_str()
            )),
        },
        WalRecord::Tick => tick_lockstep(tenant, 1, &shared.telemetry)
            .map(|_| ())
            .map_err(|reply| reply_error_text(&reply)),
        WalRecord::ReshardSplit(cell) => {
            reshard(tenant, tenant_id, ReshardOp::Split(*cell), shared)
                .map(|_| ())
                .map_err(|reply| reply_error_text(&reply))
        }
        WalRecord::ReshardMerge(a, b) => {
            reshard(tenant, tenant_id, ReshardOp::Merge(*a, *b), shared)
                .map(|_| ())
                .map_err(|reply| reply_error_text(&reply))
        }
    }
}

/// Durable startup: recovers every tenant found in the WAL directory —
/// `RESTORE` the newest checkpoint through the ordinary composite path,
/// then replay the log tail through the live request paths, then re-open
/// the log (truncated at the last valid CRC boundary) for appending.
/// Runs before the accept thread exists, so recovery is single-threaded
/// under one lock hold and no connection can observe a half-recovered
/// tenant. A tenant whose checkpoint or tail fails to apply is skipped
/// with a warning (its files are left on disk for inspection) rather
/// than failing startup — the other tenants' durability should not be
/// hostage to one corrupt directory entry.
fn recover_from_wal(shared: &Arc<RouterShared>) -> std::io::Result<()> {
    let Some(runtime) = shared.wal.as_ref() else {
        return Ok(());
    };
    let recovered = wal::recover_dir(&runtime.config.dir)?;
    let mut core = shared.core.lock();
    for entry in recovered {
        // haste-lint: allow(L2) — startup-only recovery before the accept thread exists; per-cell work is deadline-bounded
        let restored = match restore_composite_state(&mut core, shared, &entry.checkpoint) {
            Ok(restored) => restored,
            Err(reply) => {
                eprintln!(
                    "haste-router: skipping recovery of tenant `{}`: bad checkpoint: {}",
                    entry.tenant,
                    reply_error_text(&reply)
                );
                continue;
            }
        };
        if restored.tenant != entry.tenant {
            eprintln!(
                "haste-router: skipping recovery of `{}`: its checkpoint names tenant `{}`",
                entry.tenant, restored.tenant
            );
            core.tenants.remove(&restored.tenant);
            continue;
        }
        if let Some(reason) = &entry.truncated {
            eprintln!(
                "haste-router: tenant `{}` log tail torn ({reason}); truncating to the last valid record",
                entry.tenant
            );
        }
        let mut replay_failed = false;
        for record in &entry.tail {
            // haste-lint: allow(L2) — startup-only replay before the accept thread exists; child requests are deadline-bounded
            if let Err(reason) = apply_wal_record(&mut core, shared, &entry.tenant, record) {
                eprintln!(
                    "haste-router: skipping recovery of tenant `{}`: log replay failed: {reason}",
                    entry.tenant
                );
                core.tenants.remove(&entry.tenant);
                replay_failed = true;
                break;
            }
        }
        if replay_failed {
            continue;
        }
        // haste-lint: allow(L2) — startup-only local file I/O before the accept thread exists
        let tenant_wal = TenantWal::open_recovered(
            &runtime.config.dir,
            &entry.tenant,
            entry.valid_len,
            entry.tail.len(),
        )?;
        core.wals
            .insert(entry.tenant.clone(), WalHandle::Open(tenant_wal));
        WalTelemetry::count_recovery(
            shared.telemetry.registry(),
            &entry.tenant,
            entry.tail.len() as u64,
        );
        eprintln!(
            "haste-router: recovered tenant `{}` at slot {} (replayed {} logged ops)",
            entry.tenant,
            restored.slot,
            entry.tail.len()
        );
    }
    // Connections start bound to the default tenant, which always exists
    // on a fresh router. If its recovery was skipped above (and removed
    // the half-restored entry), put back an empty fleet so the startup
    // contract holds.
    if !core.tenants.contains_key(DEFAULT_TENANT) {
        // haste-lint: allow(L2) — startup-only rebuild before the accept thread exists; child spawns are deadline-bounded
        if let Err(reply) = ensure_tenant(&mut core, shared, DEFAULT_TENANT, None) {
            eprintln!(
                "haste-router: rebuilding the default tenant after a failed recovery failed: {}",
                reply_error_text(&reply)
            );
        }
    }
    Ok(())
}

/// Executes one parsed request; returns the reply and whether the
/// connection should close.
fn execute<R: BufRead>(
    request: Request,
    reader: &mut R,
    shared: &RouterShared,
    session: &RefCell<Session>,
) -> std::io::Result<(Reply, bool)> {
    let config = &shared.config;
    let reply = match request {
        Request::Hello(version) => {
            let core = shared.core.lock();
            let shards = core
                .tenants
                .get(&session.borrow().tenant)
                .map(|tenant| tenant.shards.len())
                .unwrap_or(config.cells.0 * config.cells.1);
            hello_reply(&version, shards, config.cells)
        }
        Request::Tenant { id, quota } => {
            let mut core = shared.core.lock();
            if quota.is_some() && wal_poisoned(&core, &id) {
                return Ok((wal_poisoned_reply(&id), false));
            }
            let mut session = session.borrow_mut();
            session.tenant = id.clone();
            match core.tenants.get_mut(&id) {
                Some(tenant) => {
                    // The tenant exists: a quota applies immediately, and
                    // any quota parked from an earlier `TENANT` is moot.
                    let logged = match quota {
                        Some(q) => {
                            tenant.quota = quota;
                            wal_append(&mut core, shared, &id, &[WalRecord::Quota(q)])
                        }
                        None => true,
                    };
                    session.pending_quota = None;
                    if !logged {
                        return Ok((wal_poisoned_reply(&id), false));
                    }
                    match core.tenants[&id].quota {
                        Some(q) => Reply::Ok(format!("tenant={id} quota={q}")),
                        None => Reply::Ok(format!("tenant={id}")),
                    }
                }
                None => {
                    // Selecting never creates: the quota waits for the
                    // `LOAD` that will create this tenant.
                    session.pending_quota = quota;
                    match quota {
                        Some(q) => Reply::Ok(format!("tenant={id} quota={q}")),
                        None => Reply::Ok(format!("tenant={id}")),
                    }
                }
            }
        }
        Request::Load(count) => {
            let Some(payload) = read_payload(reader, count, &shared.shutdown)? else {
                return Ok((
                    Reply::Err(ErrCode::BadRequest, "truncated LOAD payload".to_string()),
                    true,
                ));
            };
            let (tenant_id, pending_quota) = {
                let mut session = session.borrow_mut();
                (session.tenant.clone(), session.pending_quota.take())
            };
            let mut core = shared.core.lock();
            if wal_poisoned(&core, &tenant_id) {
                return Ok((wal_poisoned_reply(&tenant_id), false));
            }
            // haste-lint: allow(L2) — spawning the tenant's fleet is deadline-bounded per child; `core` must be held so no request observes a half-created tenant
            match ensure_tenant(&mut core, shared, &tenant_id, pending_quota) {
                Err(reply) => reply,
                Ok(()) => {
                    let tenant = match tenant_mut(&mut core, &tenant_id) {
                        Ok(tenant) => tenant,
                        Err(reply) => return Ok((reply, false)),
                    };
                    // haste-lint: allow(L2) — per-cell LOADs are deadline-bounded; `core` must be held so no request observes a half-partitioned scenario
                    let reply = load_scenario_text(tenant, &tenant_id, config, shared, &payload);
                    if matches!(reply, Reply::Ok(_)) {
                        // A freshly loaded tenant starts durable from a
                        // checkpoint, so the log tail only ever carries
                        // post-load operations.
                        // haste-lint: allow(L2) — durability point: the checkpoint must land before LOAD is acked; `core` must be held so no request observes a non-durable loaded tenant
                        if let Err(reply) = wal_install(&mut core, shared, &tenant_id) {
                            return Ok((reply, false));
                        }
                    }
                    reply
                }
            }
        }
        Request::Submit {
            x,
            y,
            facing,
            end_slot,
            energy,
            weight,
        } => {
            if !(x.is_finite() && y.is_finite() && facing.is_finite()) {
                Reply::Err(ErrCode::BadTask, "non-finite position/facing".to_string())
            } else {
                let tenant_id = session.borrow().tenant.clone();
                let mut core = shared.core.lock();
                if wal_poisoned(&core, &tenant_id) {
                    wal_poisoned_reply(&tenant_id)
                } else {
                    match tenant_mut(&mut core, &tenant_id) {
                        Err(reply) => reply,
                        Ok(tenant) => {
                            let spec = TaskSpec {
                                device_pos: Vec2::new(x, y),
                                device_facing: Angle::from_radians(facing),
                                end_slot,
                                required_energy: energy,
                                weight,
                            };
                            // haste-lint: allow(L2) — lockstep contract: `core` serializes shard traffic so global arrival order stays bit-identical; the child request is deadline-bounded
                            let routed = submit_routed(tenant, &tenant_id, spec, shared);
                            let (reply, record) = match routed {
                                Ok((global, release, shard)) => (
                                    Reply::Ok(format!(
                                        "task={global} release={release} shard={shard}"
                                    )),
                                    WalRecord::Submit(spec),
                                ),
                                Err((code, message)) => {
                                    let record = WalRecord::Reject {
                                        code: code.as_str().to_string(),
                                        spec,
                                    };
                                    (Reply::Err(code, message), record)
                                }
                            };
                            if wal_append(&mut core, shared, &tenant_id, &[record]) {
                                reply
                            } else {
                                wal_poisoned_reply(&tenant_id)
                            }
                        }
                    }
                }
            }
        }
        Request::Tick(n) => {
            let tenant_id = session.borrow().tenant.clone();
            let mut core = shared.core.lock();
            if wal_poisoned(&core, &tenant_id) {
                wal_poisoned_reply(&tenant_id)
            } else {
                match tenant_mut(&mut core, &tenant_id) {
                    Err(reply) => reply,
                    Ok(tenant) => {
                        if tenant.partition.is_none() {
                            shard_err(crate::shard::ShardError::NoScenario)
                        } else {
                            // The load trigger fires between slots: a cell
                            // whose closing slot ran hot is split before the
                            // clock moves (best effort).
                            // haste-lint: allow(L2) — the migration must be one consistent between-ticks cut under `core`; each child call is deadline-bounded
                            let split = maybe_auto_split(tenant, &tenant_id, shared);
                            let before = tenant.clock;
                            // haste-lint: allow(L2) — the lockstep pipelines deadline-bounded TICKs across cells under `core`; interleaving another request mid-round would fork the clock
                            let outcome = tick_lockstep(tenant, n, &shared.telemetry);
                            // Log what actually happened — an auto-split
                            // and every slot that closed — even when a
                            // later step of a multi-slot TICK failed:
                            // the clock moved for the completed steps.
                            let closed = tenant.clock - before;
                            let mut records = Vec::with_capacity(closed + 1);
                            if let Some(cell) = split {
                                records.push(WalRecord::ReshardSplit(cell));
                            }
                            records.extend(std::iter::repeat_n(WalRecord::Tick, closed));
                            if !wal_append(&mut core, shared, &tenant_id, &records) {
                                wal_poisoned_reply(&tenant_id)
                            } else {
                                match outcome {
                                    Ok((slot, open)) => {
                                        // The slot closed cleanly — the
                                        // moment the automatic checkpoint
                                        // threshold is checked.
                                        // haste-lint: allow(L2) — durability point: the automatic checkpoint must land before the TICK ack; per-cell snapshots are deadline-bounded
                                        maybe_wal_checkpoint(&mut core, shared, &tenant_id);
                                        Reply::Ok(format!("slot={slot} open={}", u8::from(open)))
                                    }
                                    Err(reply) => reply,
                                }
                            }
                        }
                    }
                }
            }
        }
        Request::Clock => {
            let tenant_id = session.borrow().tenant.clone();
            let core = shared.core.lock();
            match tenant_ref(&core, &tenant_id) {
                Err(reply) => reply,
                Ok(tenant) => {
                    if tenant.partition.is_none() {
                        shard_err(crate::shard::ShardError::NoScenario)
                    } else {
                        // The tenant clock is authoritative (healthy
                        // shards track it in lockstep; down shards rejoin
                        // to it), so CLOCK? answers even while children
                        // are restarting.
                        Reply::Ok(format!(
                            "slot={} open={}",
                            tenant.clock,
                            u8::from(tenant.open())
                        ))
                    }
                }
            }
        }
        Request::Schedule => {
            let tenant_id = session.borrow().tenant.clone();
            let core = shared.core.lock();
            match tenant_ref(&core, &tenant_id) {
                Err(reply) => reply,
                Ok(tenant) => {
                    if tenant.partition.is_none() {
                        shard_err(crate::shard::ShardError::NoScenario)
                    } else {
                        // haste-lint: allow(L2) — merge must read every cell at one consistent clock; each child SCHEDULE? is deadline-bounded
                        match merged_schedule(tenant) {
                            Ok(schedule) => Reply::Data(model_io::write_schedule(&schedule)),
                            Err(reply) => reply,
                        }
                    }
                }
            }
        }
        Request::Utility => {
            let tenant_id = session.borrow().tenant.clone();
            let core = shared.core.lock();
            match tenant_ref(&core, &tenant_id) {
                Err(reply) => reply,
                Ok(tenant) => {
                    if tenant.partition.is_none() {
                        shard_err(crate::shard::ShardError::NoScenario)
                    } else {
                        // haste-lint: allow(L2) — merge must read every cell at one consistent clock; each child PARTS? is deadline-bounded
                        match merged_parts(tenant) {
                            Ok(parts) => {
                                // Sequential left-to-right sums over the
                                // arrival order: the single engine's exact
                                // addend sequence.
                                let utility: f64 = parts.full.iter().sum();
                                let relaxed: f64 = parts.relaxed.iter().sum();
                                Reply::Ok(format!("utility={utility} relaxed={relaxed}"))
                            }
                            Err(reply) => reply,
                        }
                    }
                }
            }
        }
        Request::Parts => {
            let tenant_id = session.borrow().tenant.clone();
            let core = shared.core.lock();
            match tenant_ref(&core, &tenant_id) {
                Err(reply) => reply,
                Ok(tenant) => {
                    if tenant.partition.is_none() {
                        shard_err(crate::shard::ShardError::NoScenario)
                    } else {
                        // haste-lint: allow(L2) — merge must read every cell at one consistent clock; each child PARTS? is deadline-bounded
                        match merged_parts(tenant) {
                            Ok(parts) => Reply::Data(parts_payload(&parts)),
                            Err(reply) => reply,
                        }
                    }
                }
            }
        }
        Request::Export => {
            let core = shared.core.lock();
            let mut snap = shared.telemetry.registry().snapshot();
            // Engine aliases and the down gauge come from the status view,
            // uniformly across deployment modes and tenants; the router
            // renders them itself so child engine series are never
            // double-counted.
            let mut merged = ShardStatus::default();
            let mut down = 0u64;
            let mut saw_status = false;
            for tenant in core.tenants.values() {
                for shard in &tenant.shards {
                    // haste-lint: allow(L2) — deadline-bounded STATUS? per cell; a down shard answers from its cache instead of blocking the scrape
                    if let Ok((status, health, _restarts, _replay)) = shard.status_view() {
                        merged.absorb(&status);
                        saw_status = true;
                        if health == ShardHealth::Restarting {
                            down += 1;
                        }
                    }
                }
            }
            if saw_status {
                telemetry::engine_alias_snapshot(&merged, &mut snap);
            }
            snap.set_gauge("haste_supervisor_down_shards", &[], u128::from(down));
            // Out-of-process children carry their own registries: fetch
            // each child's exposition, keep only its service-side request
            // series, rename them into the shard-scoped families, and
            // merge bucket-wise. A down or unparsable child contributes
            // nothing this scrape; counters resume after its rejoin.
            for tenant in core.tenants.values() {
                for shard in &tenant.shards {
                    // haste-lint: allow(L2) — deadline-bounded EXPORT? per cell; a down child contributes nothing this scrape rather than wedging it
                    if let Some(Ok(document)) = shard.export_document() {
                        if let Ok(mut child) = haste_metrics::Snapshot::parse(&document) {
                            child.retain_prefix("haste_service_");
                            child.rename_prefix("haste_service_", "haste_shard_");
                            snap.merge(child);
                        }
                    }
                }
            }
            Reply::Data(snap.render())
        }
        Request::Metrics => {
            let tenant_id = session.borrow().tenant.clone();
            let core = shared.core.lock();
            match tenant_ref(&core, &tenant_id) {
                Err(reply) => reply,
                Ok(tenant) => {
                    if tenant.partition.is_none() {
                        shard_err(crate::shard::ShardError::NoScenario)
                    } else {
                        // haste-lint: allow(L2) — deadline-bounded STATUS? per cell under one `core` hold so the merged totals are a consistent cut
                        match fleet_totals(tenant) {
                            Err(reply) => reply,
                            Ok(totals) => {
                                let status = &totals.status;
                                let mut payload = String::new();
                                for (key, value) in [
                                    ("clock", status.clock.to_string()),
                                    ("tasks", status.tasks.to_string()),
                                    ("staged", status.staged.to_string()),
                                    ("admitted", status.admitted.to_string()),
                                    ("rejected", status.rejected.to_string()),
                                    ("pending", status.pending.to_string()),
                                    ("threads", status.threads.to_string()),
                                    ("oracle_marginals", status.oracle_marginals.to_string()),
                                    ("oracle_commits", status.oracle_commits.to_string()),
                                    ("messages", status.messages.to_string()),
                                    ("rounds", status.rounds.to_string()),
                                    ("instance_build_us", status.instance_build_us.to_string()),
                                    ("greedy_us", status.greedy_us.to_string()),
                                    ("rounding_us", status.rounding_us.to_string()),
                                    ("coverage_build_us", status.coverage_build_us.to_string()),
                                    // Supervision totals across the shard fleet
                                    // (identically zero for in-process shards).
                                    ("shard_restarts", totals.restarts.to_string()),
                                    ("shard_replays", totals.replays.to_string()),
                                    ("shards_down", totals.down.to_string()),
                                ] {
                                    payload.push_str(key);
                                    payload.push(' ');
                                    payload.push_str(&value);
                                    payload.push('\n');
                                }
                                Reply::Data(payload)
                            }
                        }
                    }
                }
            }
        }
        Request::Shards => {
            let core = shared.core.lock();
            // haste-lint: allow(L2) — deadline-bounded STATUS? per cell under one `core` hold so SHARDS? reports a consistent cut
            shards_payload(&core)
        }
        Request::Snapshot => {
            let tenant_id = session.borrow().tenant.clone();
            let mut core = shared.core.lock();
            let rendered = match tenant_ref(&core, &tenant_id) {
                Err(reply) => Err(reply),
                Ok(tenant) => {
                    if tenant.partition.is_none() {
                        Err(shard_err(crate::shard::ShardError::NoScenario))
                    } else {
                        // haste-lint: allow(L2) — per-cell SNAP?s are deadline-bounded; `core` held so the composite is one consistent clock cut
                        composite_snapshot(tenant, &tenant_id).map(|text| (text, tenant.quota))
                    }
                }
            };
            match rendered {
                Err(reply) => reply,
                Ok((text, quota)) => {
                    // An operator SNAPSHOT doubles as a durability
                    // checkpoint, written from the very bytes of this
                    // reply — the `.ckpt` file and the operator's copy
                    // can never drift.
                    if let Some(WalHandle::Open(tenant_wal)) = core.wals.get_mut(&tenant_id) {
                        match tenant_wal.checkpoint(&text, quota) {
                            Ok(()) => WalTelemetry::count_checkpoint(
                                shared.telemetry.registry(),
                                &tenant_id,
                            ),
                            Err(e) => {
                                eprintln!(
                                    "haste-router: checkpointing tenant `{tenant_id}` failed ({e}); the tenant is now read-only"
                                );
                                core.wals.insert(tenant_id.clone(), WalHandle::Poisoned);
                                return Ok((wal_poisoned_reply(&tenant_id), false));
                            }
                        }
                    }
                    Reply::Data(text)
                }
            }
        }
        Request::Restore(count) => {
            let Some(payload) = read_payload(reader, count, &shared.shutdown)? else {
                return Ok((
                    Reply::Err(ErrCode::BadRequest, "truncated RESTORE payload".to_string()),
                    true,
                ));
            };
            let mut core = shared.core.lock();
            // haste-lint: allow(L2) — per-cell RESTOREs are deadline-bounded; `core` held so no request observes a half-restored composite
            restore_composite(&mut core, shared, &payload)
        }
        Request::ReshardSplit(cell) => {
            let tenant_id = session.borrow().tenant.clone();
            let mut core = shared.core.lock();
            if wal_poisoned(&core, &tenant_id) {
                wal_poisoned_reply(&tenant_id)
            } else {
                match tenant_mut(&mut core, &tenant_id) {
                    Err(reply) => reply,
                    Ok(tenant) => {
                        // haste-lint: allow(L2) — the migration must be one consistent between-ticks cut: children are rebuilt and swapped in under `core`, each child call deadline-bounded
                        match reshard(tenant, &tenant_id, ReshardOp::Split(cell), shared) {
                            Ok((cells, version)) => {
                                let record = WalRecord::ReshardSplit(cell);
                                if wal_append(&mut core, shared, &tenant_id, &[record]) {
                                    Reply::Ok(format!("cells={cells} map={version}"))
                                } else {
                                    wal_poisoned_reply(&tenant_id)
                                }
                            }
                            Err(reply) => reply,
                        }
                    }
                }
            }
        }
        Request::ReshardMerge(a, b) => {
            let tenant_id = session.borrow().tenant.clone();
            let mut core = shared.core.lock();
            if wal_poisoned(&core, &tenant_id) {
                wal_poisoned_reply(&tenant_id)
            } else {
                match tenant_mut(&mut core, &tenant_id) {
                    Err(reply) => reply,
                    Ok(tenant) => {
                        // haste-lint: allow(L2) — the migration must be one consistent between-ticks cut: children are rebuilt and swapped in under `core`, each child call deadline-bounded
                        match reshard(tenant, &tenant_id, ReshardOp::Merge(a, b), shared) {
                            Ok((cells, version)) => {
                                let record = WalRecord::ReshardMerge(a, b);
                                if wal_append(&mut core, shared, &tenant_id, &[record]) {
                                    Reply::Ok(format!("cells={cells} map={version}"))
                                } else {
                                    wal_poisoned_reply(&tenant_id)
                                }
                            }
                            Err(reply) => reply,
                        }
                    }
                }
            }
        }
        Request::Bye => return Ok((Reply::Ok("bye".to_string()), true)),
    };
    Ok((reply, false))
}

/// Fleet-wide counter totals backing the `METRICS?` payload: the merged
/// per-shard status plus the supervision counters summed across one
/// tenant's fleet.
struct FleetTotals {
    status: ShardStatus,
    restarts: u64,
    replays: u64,
    down: u64,
}

fn fleet_totals(tenant: &TenantCore) -> Result<FleetTotals, Reply> {
    let mut status = ShardStatus::default();
    let mut restarts = 0u64;
    let mut replays = 0u64;
    let mut down = 0u64;
    for shard in &tenant.shards {
        match shard.status_view() {
            Ok((view, health, shard_restarts, replay)) => {
                status.absorb(&view);
                restarts += shard_restarts;
                replays += replay;
                if health == ShardHealth::Restarting {
                    down += 1;
                }
            }
            Err(e) => return Err(slot_err(e)),
        }
    }
    Ok(FleetTotals {
        status,
        restarts,
        replays,
        down,
    })
}

/// The `SHARDS?` payload: one line per shard of every loaded tenant, in
/// tenant order, each carrying the tenant id and the routing-map version
/// that currently serves it. Cell coordinates come from the base grid
/// while the tenant still sits on one; after a split the tiling is no
/// longer a uniform grid and cells are numbered linearly as `(i, 0)`.
fn shards_payload(core: &RouterCore) -> Reply {
    let mut payload = String::new();
    let mut any = false;
    for (tenant_id, tenant) in &core.tenants {
        let Some(partition) = tenant.partition.as_ref() else {
            continue;
        };
        any = true;
        let grid = partition.base_grid();
        for (index, shard) in tenant.shards.iter().enumerate() {
            match shard.status_view() {
                Ok((status, health, restarts, replay)) => {
                    let cell = match grid {
                        Some((gx, _)) => (index % gx, index / gx),
                        None => (index, 0),
                    };
                    payload.push_str(&shard_line(
                        index,
                        cell,
                        &status,
                        health,
                        restarts,
                        replay,
                        tenant_id,
                        tenant.map.version(),
                    ));
                }
                Err(e) => return slot_err(e),
            }
        }
    }
    if !any {
        return shard_err(crate::shard::ShardError::NoScenario);
    }
    Reply::Data(payload)
}

/// `LOAD` on a tenant: parse, partition, split, install per-cell
/// engines, and record the global bookkeeping (release-0 arrival order,
/// staged release plan, the scenario itself for reshard baselines).
/// Totals come from the split itself (each charger and task belongs to
/// exactly one cell), so the reply is correct even if a child shard is
/// down — its baseline is recorded and the first tick's rejoin pass
/// replays the load into a fresh child.
fn load_scenario_text(
    tenant: &mut TenantCore,
    tenant_id: &str,
    config: &RouterConfig,
    shared: &RouterShared,
    payload: &str,
) -> Reply {
    if tenant.partition.is_some() {
        return shard_err(crate::shard::ShardError::AlreadyLoaded);
    }
    let scenario = match model_io::read_scenario(payload) {
        Ok(scenario) => scenario,
        Err(e) => return Reply::Err(ErrCode::BadRequest, format!("bad scenario: {e}")),
    };
    let partition = match Partition::grid(
        Vec2::new(config.origin.0, config.origin.1),
        config.field.0,
        config.field.1,
        config.cells.0,
        config.cells.1,
        scenario.params.radius,
    ) {
        Ok(partition) => partition,
        Err(e) => return partition_err(e),
    };
    if let Err(e) = partition.validate_chargers(&scenario) {
        return partition_err(e);
    }
    let cells = match partition.split(&scenario) {
        Ok(cells) => cells,
        Err(e) => return partition_err(e),
    };
    let mut total_chargers = 0;
    let mut total_staged = 0;
    for (shard, cell) in tenant.shards.iter().zip(cells) {
        total_chargers += cell.chargers.len();
        total_staged += cell.tasks.len();
        match shard.load_scenario(cell) {
            Ok(()) => {}
            // A down child shard: the supervisor holds the sub-scenario
            // as its baseline, so the rejoin replay loads it later.
            Err(SlotError::Unavailable { .. }) => {}
            // `split` validated every sub-scenario, so a structured
            // failure here is a router bug; surface it without
            // half-initialized routing state (RESTORE recovers).
            Err(e) => return slot_err(e),
        }
    }
    let (order, plan, _clock) = rebuild_bookkeeping(&scenario, &[]);
    tenant.order = order;
    tenant.plan = plan;
    tenant.slots = scenario.grid.num_slots;
    tenant.clock = 0;
    tenant.ops = Vec::new();
    tenant.map = RoutingMap::identity(tenant.shards.len());
    tenant.quota_used = 0;
    tenant.cell_submits = vec![0; tenant.shards.len()];
    tenant.partition = Some(partition);
    tenant.scenario = Some(scenario);
    TenantCounters::set_shards(shared.telemetry.registry(), tenant_id, tenant.shards.len());
    // Slot-0 fault directives mature the moment the grid opens.
    for shard in &tenant.shards {
        shard.apply_slot_faults(0);
    }
    Reply::Ok(format!(
        "chargers={total_chargers} staged={total_staged} slots={} shards={}",
        tenant.slots,
        tenant.shards.len()
    ))
}

/// Advances one tenant's lockstep one slot at a time, releasing staged
/// arrivals into the global order as their slots open. Down shards do
/// not stall the fleet: each step first gives them a rejoin (restart +
/// replay to the tenant clock), then ticks every shard, *pipelined*; a
/// shard that is still down has the missed slot journaled so its
/// eventual replay catches up, and fault directives for the newly opened
/// slot mature last. Closing a slot resets the quota usage and the
/// per-cell submission counts (they measure the closing slot only).
///
/// **Pipelined negotiation.** The per-shard `tick1` calls of one step run
/// concurrently on scoped `haste-parallel` threads: every [`ShardSlot`]
/// ticks through `&self` behind its own interior lock (an in-process
/// shard's engine mutex; an out-of-process shard's connection state, so a
/// remote step is a concurrently-issued child request under the usual
/// per-request deadline). The join below is the consistent-cut barrier —
/// the tenant clock, the staged-release plan, and slot faults advance
/// only after *every* shard has finished (or missed) the slot, so between
/// requests all healthy shards still sit at the tenant's virtual slot.
/// Replanning is per-shard-deterministic and shards share no state, so
/// thread interleaving cannot reach any output bits; tick outcomes are
/// processed sequentially in shard order, keeping error reporting
/// deterministic too (DESIGN.md §11 has the full argument).
fn tick_lockstep(
    tenant: &mut TenantCore,
    n: usize,
    router_telemetry: &Telemetry,
) -> Result<(usize, bool), Reply> {
    if !tenant.open() {
        return Err(shard_err(crate::shard::ShardError::AtHorizon));
    }
    for _ in 0..n {
        if !tenant.open() {
            break;
        }
        for shard in &tenant.shards {
            shard.rejoin(tenant.clock);
        }
        let step_start = telemetry::clock_start();
        let outcomes = haste_parallel::par_map(&tenant.shards, tenant.shards.len(), |_, shard| {
            let replan_start = telemetry::clock_start();
            let outcome = shard.tick1();
            (outcome, telemetry::elapsed_us(replan_start))
        });
        // The join above is the consistent-cut barrier: a shard's wait is
        // the gap between its own replan finishing and the whole step.
        let step_us = telemetry::elapsed_us(step_start);
        for (index, (shard, (outcome, replan_us))) in tenant.shards.iter().zip(outcomes).enumerate()
        {
            let cell_label = index.to_string();
            let registry = router_telemetry.registry();
            registry
                .histogram_with("haste_router_tick_replan_duration_us", "cell", &cell_label)
                .observe(replan_us);
            registry
                .histogram_with("haste_router_join_wait_duration_us", "cell", &cell_label)
                .observe((step_us - replan_us).max(0.0));
            match outcome {
                Ok((slot, _open)) => {
                    if slot != tenant.clock + 1 {
                        return Err(internal(&format!(
                            "lockstep broken: shard at slot {slot} after ticking from {}",
                            tenant.clock
                        )));
                    }
                }
                Err(SlotError::Unavailable { .. }) => shard.note_missed_tick(),
                Err(e) => return Err(slot_err(e)),
            }
        }
        tenant.clock += 1;
        tenant.ops.push(HistOp::Tick);
        tenant.drain_plan(tenant.clock);
        tenant.quota_used = 0;
        for count in &mut tenant.cell_submits {
            *count = 0;
        }
        for shard in &tenant.shards {
            shard.apply_slot_faults(tenant.clock);
        }
    }
    Ok((tenant.clock, tenant.open()))
}

/// The elastic-split load trigger: if any cell accepted more than
/// [`RouterConfig::split_threshold`] submissions during the closing slot,
/// split the first such cell. Best effort — an unsplittable hot cell
/// (too thin, a charger too close to the midline) keeps its load and the
/// trigger re-arms next slot. Returns the cell that was actually split,
/// if any, so the caller can journal the topology change: recovery
/// replays the *logged* split rather than re-running this heuristic
/// (whose per-slot submission counters don't survive a restart).
fn maybe_auto_split(
    tenant: &mut TenantCore,
    tenant_id: &str,
    shared: &RouterShared,
) -> Option<usize> {
    let threshold = shared.config.split_threshold?;
    let hot = tenant.cell_submits.iter().position(|&n| n > threshold)?;
    reshard(tenant, tenant_id, ReshardOp::Split(hot), shared)
        .ok()
        .map(|_| hot)
}

/// A live topology change.
#[derive(Debug, Clone, Copy)]
enum ReshardOp {
    Split(usize),
    Merge(usize, usize),
}

/// Live migration: split one cell in two, or merge two adjacent cells,
/// without touching any other shard. Runs entirely under the router
/// mutex, so the whole migration is one between-ticks consistent cut.
///
/// Phase 1 builds the replacement shard(s) *off to the side*: the new
/// partition re-splits the loaded scenario into per-cell baselines, the
/// affected cell(s) get fresh shards loaded with their baselines, and the
/// tenant's accepted-operation history replays into them in arrival
/// order (ticks tick every rebuilt child; submissions route by the *new*
/// partition and land only in rebuilt cells). Accepted-only replay never
/// re-rejects: a child cell's pending set is a subset of its parent's at
/// every prefix. Any failure aborts with the live topology untouched
/// (dropped spawned children are killed by their supervisor guard).
///
/// Phase 2 swaps atomically: surviving shards are renumbered around the
/// rebuilt ones, the routing map bumps its version, and the per-cell
/// submission counters reset to the new width. DESIGN.md §13 argues why
/// the global utility is bit-identical across the swap.
fn reshard(
    tenant: &mut TenantCore,
    tenant_id: &str,
    op: ReshardOp,
    shared: &RouterShared,
) -> Result<(usize, u64), Reply> {
    let Some(partition) = tenant.partition.as_ref() else {
        return Err(shard_err(crate::shard::ShardError::NoScenario));
    };
    let Some(scenario) = tenant.scenario.as_ref() else {
        return Err(shard_err(crate::shard::ShardError::NoScenario));
    };
    let new_partition = match op {
        ReshardOp::Split(cell) => partition.split_cell(cell),
        ReshardOp::Merge(a, b) => partition.merge_cells(a, b),
    }
    .map_err(partition_err)?;
    if matches!(op, ReshardOp::Split(_)) {
        // A split introduces a new interior boundary; every charger's
        // reach must still stay inside its (possibly shrunken) cell.
        // Merging only removes boundaries, so it never needs this.
        new_partition
            .validate_chargers(scenario)
            .map_err(partition_err)?;
    }
    let baselines = new_partition.split(scenario).map_err(partition_err)?;
    let new_count = new_partition.num_cells();
    // New cell index → surviving old shard index; `None` marks the
    // rebuilt cell(s). Split(c): children take c and c+1, later cells
    // shift up. Merge(a, b): the union takes min(a, b), later cells
    // shift down.
    let old_of: Vec<Option<usize>> = match op {
        ReshardOp::Split(cell) => (0..new_count)
            .map(|j| {
                if j < cell {
                    Some(j)
                } else if j <= cell + 1 {
                    None
                } else {
                    Some(j - 1)
                }
            })
            .collect(),
        ReshardOp::Merge(a, b) => {
            let (lo, hi) = (a.min(b), a.max(b));
            (0..new_count)
                .map(|j| {
                    if j == lo {
                        None
                    } else if j < hi {
                        Some(j)
                    } else {
                        Some(j + 1)
                    }
                })
                .collect()
        }
    };
    // Validate the remap before touching live state: every surviving
    // reference must be unique and in range, so the swap below is
    // infallible once the old fleet is drained. (Old shards nothing
    // references — the split parent, the merged pair — are retired when
    // they drop; a remote child's guard kills its process.)
    {
        let mut seen = vec![false; tenant.shards.len()];
        for entry in old_of.iter().flatten() {
            if *entry >= seen.len() || seen[*entry] {
                return Err(internal("reshard remap is not injective"));
            }
            seen[*entry] = true;
        }
    }
    // Phase 1: build and rebuild the replacement shard(s) off to the
    // side. `children` pairs each fresh slot with its new cell index.
    let mut children: Vec<(usize, ShardSlot)> = Vec::new();
    for (j, old) in old_of.iter().enumerate() {
        if old.is_none() {
            children.push((j, fresh_slot(shared, j)?));
        }
    }
    for (j, child) in &children {
        let Some(baseline) = baselines.get(*j).cloned() else {
            return Err(internal("reshard lost a cell baseline"));
        };
        child.load_scenario(baseline).map_err(slot_err)?;
    }
    // Replay the accepted-operation history in arrival order. Ticks
    // advance every rebuilt child; submissions route by the *new*
    // partition and only matter if they land in a rebuilt cell.
    for histop in &tenant.ops {
        match histop {
            HistOp::Tick => {
                for (_, child) in &children {
                    child.tick1().map_err(slot_err)?;
                }
            }
            HistOp::Submit(spec) => {
                let cell = new_partition.cell_of(spec.device_pos);
                if let Some((_, child)) = children.iter().find(|(j, _)| *j == cell) {
                    child.submit(*spec).map_err(slot_err)?;
                }
            }
        }
    }
    // The rebuilt children must have landed exactly on the tenant clock.
    for (j, child) in &children {
        let (slot, _open) = child.clock().map_err(slot_err)?;
        if slot != tenant.clock {
            return Err(internal(&format!(
                "rebuilt cell {j} landed on slot {slot}, tenant clock {}",
                tenant.clock
            )));
        }
    }
    // Phase 2: the atomic swap. Everything fallible already happened.
    let mut old: Vec<Option<ShardSlot>> = tenant.shards.drain(..).map(Some).collect();
    let mut fresh = children.into_iter();
    let mut new_shards = Vec::with_capacity(new_count);
    for entry in &old_of {
        match entry {
            // haste-lint: allow(P1) — the remap was validated injective-in-range before the drain, so each old slot is taken exactly once
            Some(i) => new_shards.push(old[*i].take().expect("remap validated above")),
            None => {
                // haste-lint: allow(P1) — `children` was built with one entry per `None` in the remap, in order
                new_shards.push(fresh.next().expect("one fresh child per rebuilt cell").1)
            }
        }
    }
    for (index, shard) in new_shards.iter().enumerate() {
        shard.set_cell(index);
    }
    tenant.shards = new_shards;
    tenant.partition = Some(new_partition);
    tenant.map = tenant.map.renumbered(new_count);
    tenant.cell_submits = vec![0; new_count];
    tenant.counters.reshards.inc();
    TenantCounters::set_shards(shared.telemetry.registry(), tenant_id, new_count);
    Ok((new_count, tenant.map.version()))
}

/// Re-merges shard schedules into original charger numbering. Bitwise
/// faithful: orientations are copied, never recomputed. Charger owners
/// are derived from positions against the *current* partition, so the
/// merge is correct across any number of reshards.
fn merged_schedule(tenant: &TenantCore) -> Result<Schedule, Reply> {
    let (Some(partition), Some(scenario)) = (tenant.partition.as_ref(), tenant.scenario.as_ref())
    else {
        return Err(shard_err(crate::shard::ShardError::NoScenario));
    };
    let mut shard_schedules = Vec::with_capacity(tenant.shards.len());
    for shard in &tenant.shards {
        shard_schedules.push(shard.schedule().map_err(slot_err)?);
    }
    let mut merged = Schedule::empty(scenario.chargers.len(), tenant.slots);
    let mut locals = vec![0u32; tenant.shards.len()];
    for (i, charger) in scenario.chargers.iter().enumerate() {
        let shard = tenant.map.shard_of(partition.cell_of(charger.pos)) as usize;
        let local = match locals.get_mut(shard) {
            Some(counter) => {
                let local = *counter;
                *counter += 1;
                local
            }
            None => return Err(internal("charger owner out of range")),
        };
        let Some(source) = shard_schedules.get(shard) else {
            return Err(internal("charger owner out of range"));
        };
        for slot in 0..tenant.slots {
            merged.set(
                ChargerId(i as u32),
                slot,
                source.get(ChargerId(local), slot),
            );
        }
    }
    Ok(merged)
}

/// Merges per-shard `wⱼ·Uⱼ` terms into the global arrival order — the
/// exact addend sequence of a single engine's evaluator (see module
/// docs). `UTILITY?` sums this; `PARTS?` serves it verbatim. Task owners
/// are derived from the recorded arrival *positions* against the current
/// partition, so the walk is correct across any number of reshards.
fn merged_parts(tenant: &TenantCore) -> Result<UtilityParts, Reply> {
    let Some(partition) = tenant.partition.as_ref() else {
        return Err(shard_err(crate::shard::ShardError::NoScenario));
    };
    let mut parts = Vec::with_capacity(tenant.shards.len());
    for shard in &tenant.shards {
        parts.push(shard.utility_parts().map_err(slot_err)?);
    }
    let mut cursors = vec![0usize; tenant.shards.len()];
    let mut full = Vec::with_capacity(tenant.order.len());
    let mut relaxed = Vec::with_capacity(tenant.order.len());
    for pos in &tenant.order {
        let shard = tenant.map.shard_of(partition.cell_of(*pos)) as usize;
        let (Some(cursor), Some(part)) = (cursors.get_mut(shard), parts.get(shard)) else {
            return Err(internal("task owner out of range"));
        };
        let (Some(full_term), Some(relaxed_term)) =
            (part.full.get(*cursor), part.relaxed.get(*cursor))
        else {
            return Err(internal("arrival order longer than shard task lists"));
        };
        full.push(*full_term);
        relaxed.push(*relaxed_term);
        *cursor += 1;
    }
    Ok(UtilityParts { full, relaxed })
}

fn internal(reason: &str) -> Reply {
    Reply::Err(ErrCode::Internal, reason.to_string())
}

/// Serializes one tenant's consistent cut: tenancy, routing-map version,
/// partition geometry (base grid + explicit cell rects, so post-reshard
/// tilings round-trip), the loaded scenario, the accepted-operation
/// history, and every shard's embedded engine snapshot. Every shard must
/// be up and sitting on the tenant clock (a down shard's state is
/// mid-replay by definition, so `SNAPSHOT` in degraded mode fails with
/// `ERR unavailable`). Once the document is assembled, each section is
/// committed as its shard's new replay baseline — never before, so a
/// failed snapshot moves no baseline.
fn composite_snapshot(tenant: &TenantCore, tenant_id: &str) -> Result<String, Reply> {
    let (Some(partition), Some(scenario)) = (tenant.partition.as_ref(), tenant.scenario.as_ref())
    else {
        return Err(shard_err(crate::shard::ShardError::NoScenario));
    };
    let mut sections = Vec::with_capacity(tenant.shards.len());
    for shard in &tenant.shards {
        // Lockstep is an invariant (one mutex, ticks inside it); this
        // re-checks it so a corrupt snapshot can never be emitted
        // silently, and surfaces `unavailable` for down shards.
        let (slot, _open) = shard.clock().map_err(slot_err)?;
        if slot != tenant.clock {
            return Err(internal(&format!(
                "shards out of lockstep: slot={slot} vs tenant clock {}",
                tenant.clock
            )));
        }
        sections.push(shard.snapshot().map_err(slot_err)?);
    }
    let origin = partition.origin();
    let composite = CompositeSnapshot {
        tenant: tenant_id.to_string(),
        map_version: tenant.map.version(),
        grid: (partition.cells_x(), partition.cells_y()),
        origin: (origin.x, origin.y),
        field: partition.field(),
        halo: partition.halo(),
        cells: partition.cells().to_vec(),
        scenario: model_io::write_scenario(scenario),
        ops: tenant.ops.clone(),
        shards: sections.clone(),
        order: tenant
            .order
            .iter()
            .map(|pos| partition.cell_of(*pos) as u32)
            .collect(),
    };
    let text = render_composite(&composite);
    // Commit: the cut is complete, so each section becomes its shard's
    // replay baseline and the journals empty (bounding replay depth).
    for (shard, section) in tenant.shards.iter().zip(sections) {
        shard.checkpoint(&section);
    }
    Ok(text)
}

/// A parsed composite router snapshot (format v3). [`parse_composite`]
/// and [`render_composite`] are public so out-of-process tooling
/// (loadgen verification, operators) can split a composite document back
/// into per-shard engine snapshots and re-render it bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeSnapshot {
    /// The tenant this cut belongs to (`RESTORE` targets it).
    pub tenant: String,
    /// Routing-map version at the cut.
    pub map_version: u64,
    /// Base partition grid `(cells_x, cells_y)` the tiling descends from.
    pub grid: (usize, usize),
    /// Field origin `(x, y)`.
    pub origin: (f64, f64),
    /// Field extent `(width, height)`.
    pub field: (f64, f64),
    /// Charger-reach halo width.
    pub halo: f64,
    /// The cell rects of the tiling, in cell order (not necessarily a
    /// uniform grid after resharding).
    pub cells: Vec<CellRect>,
    /// The loaded scenario, in canonical `write_scenario` text.
    pub scenario: String,
    /// The accepted-operation history since `LOAD`, in arrival order.
    pub ops: Vec<HistOp>,
    /// Each shard's embedded engine snapshot document.
    pub shards: Vec<String>,
    /// Owning shard of each materialized task, in global arrival order —
    /// **derived** at parse time from the scenario, the history, and the
    /// cell rects (not serialized; [`render_composite`] ignores it).
    pub order: Vec<u32>,
}

/// Renders a composite snapshot into the v3 wire document. Inverse of
/// [`parse_composite`]: `render(parse(text)) == text` for any document
/// `parse_composite` accepts.
pub fn render_composite(composite: &CompositeSnapshot) -> String {
    let mut text = String::new();
    text.push_str(COMPOSITE_MAGIC);
    text.push('\n');
    text.push_str(&format!("tenant {}\n", composite.tenant));
    text.push_str(&format!("map {}\n", composite.map_version));
    text.push_str(&format!("grid {} {}\n", composite.grid.0, composite.grid.1));
    text.push_str(&format!(
        "field {} {} {} {} {}\n",
        composite.origin.0,
        composite.origin.1,
        composite.field.0,
        composite.field.1,
        composite.halo
    ));
    text.push_str(&format!("cells {}\n", composite.cells.len()));
    for rect in &composite.cells {
        text.push_str(&format!(
            "{} {} {} {}\n",
            rect.x0, rect.y0, rect.x1, rect.y1
        ));
    }
    text.push_str(&format!(
        "scenario {}\n",
        composite.scenario.lines().count()
    ));
    text.push_str(&composite.scenario);
    if !composite.scenario.is_empty() && !composite.scenario.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&format!("ops {}\n", composite.ops.len()));
    for op in &composite.ops {
        match op {
            HistOp::Tick => text.push_str("tick\n"),
            HistOp::Submit(spec) => text.push_str(&format!(
                "submit {} {} {} {} {} {}\n",
                spec.device_pos.x,
                spec.device_pos.y,
                spec.device_facing.radians(),
                spec.end_slot,
                spec.required_energy,
                spec.weight
            )),
        }
    }
    for (index, snapshot) in composite.shards.iter().enumerate() {
        text.push_str(&format!("shard {index} {}\n", snapshot.lines().count()));
        text.push_str(snapshot);
        if !snapshot.is_empty() && !snapshot.ends_with('\n') {
            text.push('\n');
        }
    }
    text
}

/// The tenant-id grammar of the wire protocol (`TENANT`), shared by the
/// composite document's `tenant` line.
fn valid_tenant_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
}

/// Rebuilds the arrival bookkeeping a cut implies: the device positions
/// of every materialized task in global arrival order, the staged
/// releases still pending, and the clock the history has reached. Pure —
/// shared by `LOAD` (empty history), `RESTORE`, and [`parse_composite`].
fn rebuild_bookkeeping(
    scenario: &Scenario,
    ops: &[HistOp],
) -> (Vec<Vec2>, VecDeque<(usize, Vec2)>, usize) {
    let mut order: Vec<Vec2> = scenario
        .tasks
        .iter()
        .filter(|t| t.release_slot == 0)
        .map(|t| t.device_pos)
        .collect();
    let mut staged: Vec<(usize, Vec2)> = scenario
        .tasks
        .iter()
        .filter(|t| t.release_slot > 0)
        .map(|t| (t.release_slot, t.device_pos))
        .collect();
    // Stable by release slot — the exact injection order of the single
    // engine's staging queue.
    staged.sort_by_key(|&(slot, _)| slot);
    let mut plan: VecDeque<(usize, Vec2)> = staged.into();
    let mut clock = 0usize;
    for op in ops {
        match op {
            HistOp::Tick => {
                clock += 1;
                while let Some(&(slot, pos)) = plan.front() {
                    if slot > clock {
                        break;
                    }
                    order.push(pos);
                    plan.pop_front();
                }
            }
            HistOp::Submit(spec) => order.push(spec.device_pos),
        }
    }
    (order, plan, clock)
}

/// Parses a composite router snapshot document (format v3), re-deriving
/// the arrival-order owners from the scenario, the operation history,
/// and the cell rects.
pub fn parse_composite(text: &str) -> Result<CompositeSnapshot, String> {
    let mut lines = text.lines();
    if lines.next() != Some(COMPOSITE_MAGIC) {
        return Err(format!("missing magic line `{COMPOSITE_MAGIC}`"));
    }
    let tenant_line = lines.next().ok_or("truncated before tenant")?;
    let tenant = match tenant_line
        .split_whitespace()
        .collect::<Vec<_>>()
        .as_slice()
    {
        ["tenant", id] if valid_tenant_id(id) => id.to_string(),
        _ => return Err(format!("bad tenant line `{tenant_line}`")),
    };
    let map_line = lines.next().ok_or("truncated before map")?;
    let map_version = match map_line.split_whitespace().collect::<Vec<_>>().as_slice() {
        ["map", version] => version
            .parse::<u64>()
            .map_err(|_| format!("bad map version `{version}`"))?,
        _ => return Err(format!("bad map line `{map_line}`")),
    };
    let grid_line = lines.next().ok_or("truncated before grid")?;
    let grid = match grid_line.split_whitespace().collect::<Vec<_>>().as_slice() {
        ["grid", gx, gy] => (
            gx.parse::<usize>().map_err(|_| "bad grid x".to_string())?,
            gy.parse::<usize>().map_err(|_| "bad grid y".to_string())?,
        ),
        _ => return Err(format!("bad grid line `{grid_line}`")),
    };
    if grid.0 == 0 || grid.1 == 0 {
        return Err("grid must be positive".to_string());
    }
    let field_line = lines.next().ok_or("truncated before field")?;
    let field_fields = field_line.split_whitespace().collect::<Vec<_>>();
    let (origin, field, halo) = match field_fields.as_slice() {
        ["field", ox, oy, w, h, halo] => {
            let parse = |s: &str, what: &str| -> Result<f64, String> {
                s.parse::<f64>().map_err(|_| format!("bad {what} `{s}`"))
            };
            (
                (parse(ox, "origin x")?, parse(oy, "origin y")?),
                (parse(w, "field width")?, parse(h, "field height")?),
                parse(halo, "halo")?,
            )
        }
        _ => return Err(format!("bad field line `{field_line}`")),
    };
    let counted_section =
        |lines: &mut std::str::Lines<'_>, header: &str| -> Result<Vec<String>, String> {
            let head = lines
                .next()
                .ok_or_else(|| format!("truncated before {header}"))?;
            let count = match head.split_whitespace().collect::<Vec<_>>().as_slice() {
                [h, count] if *h == header => count
                    .parse::<usize>()
                    .map_err(|_| format!("bad {header} count `{count}`"))?,
                _ => return Err(format!("bad {header} line `{head}`")),
            };
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push(
                    lines
                        .next()
                        .ok_or_else(|| format!("truncated {header} section"))?
                        .to_string(),
                );
            }
            Ok(entries)
        };
    let cells = counted_section(&mut lines, "cells")?
        .iter()
        .map(|line| -> Result<CellRect, String> {
            let parse = |s: &str| -> Result<f64, String> {
                s.parse::<f64>()
                    .map_err(|_| format!("bad cell rect `{line}`"))
            };
            match line.split_whitespace().collect::<Vec<_>>().as_slice() {
                [x0, y0, x1, y1] => Ok(CellRect {
                    x0: parse(x0)?,
                    y0: parse(y0)?,
                    x1: parse(x1)?,
                    y1: parse(y1)?,
                }),
                _ => Err(format!("bad cell rect `{line}`")),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    if cells.is_empty() {
        return Err("cells must be positive".to_string());
    }
    let scenario_text = {
        let mut text = counted_section(&mut lines, "scenario")?.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        text
    };
    let scenario = model_io::read_scenario(&scenario_text)
        .map_err(|e| format!("bad embedded scenario: {e}"))?;
    let ops = counted_section(&mut lines, "ops")?
        .iter()
        .map(|line| -> Result<HistOp, String> {
            match line.split_whitespace().collect::<Vec<_>>().as_slice() {
                ["tick"] => Ok(HistOp::Tick),
                ["submit", x, y, facing, end, energy, weight] => {
                    let parse = |s: &str| -> Result<f64, String> {
                        let value = s
                            .parse::<f64>()
                            .map_err(|_| format!("bad op line `{line}`"))?;
                        if !value.is_finite() {
                            return Err(format!("non-finite value in op line `{line}`"));
                        }
                        Ok(value)
                    };
                    Ok(HistOp::Submit(TaskSpec {
                        device_pos: Vec2::new(parse(x)?, parse(y)?),
                        device_facing: Angle::from_radians(parse(facing)?),
                        end_slot: end
                            .parse::<usize>()
                            .map_err(|_| format!("bad op line `{line}`"))?,
                        required_energy: parse(energy)?,
                        weight: parse(weight)?,
                    }))
                }
                _ => Err(format!("bad op line `{line}`")),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let num_shards = cells.len();
    let mut shards = Vec::with_capacity(num_shards);
    for expected in 0..num_shards {
        let head = lines
            .next()
            .ok_or_else(|| format!("truncated before shard {expected}"))?;
        let nlines = match head.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["shard", index, nlines] if index.parse() == Ok(expected) => nlines
                .parse::<usize>()
                .map_err(|_| format!("bad shard line count `{head}`"))?,
            _ => {
                return Err(format!(
                    "bad shard header `{head}` (expected shard {expected})"
                ))
            }
        };
        let mut snapshot = String::new();
        for _ in 0..nlines {
            snapshot.push_str(
                lines
                    .next()
                    .ok_or_else(|| format!("truncated shard {expected} snapshot"))?,
            );
            snapshot.push('\n');
        }
        shards.push(snapshot);
    }
    if lines.next().is_some() {
        return Err("trailing lines after the last shard snapshot".to_string());
    }
    // Validate the geometry as a whole and re-derive the arrival-order
    // owners (`cell_of` is total, so every derived owner is in range).
    let partition = Partition::from_rects(
        Vec2::new(origin.0, origin.1),
        field.0,
        field.1,
        halo,
        grid,
        cells.clone(),
    )
    .map_err(|e| format!("bad partition geometry: {e}"))?;
    let (positions, _plan, clock) = rebuild_bookkeeping(&scenario, &ops);
    if clock > scenario.grid.num_slots {
        return Err(format!(
            "history ticks past the horizon: clock {clock} of {} slots",
            scenario.grid.num_slots
        ));
    }
    let order = positions
        .iter()
        .map(|pos| partition.cell_of(*pos) as u32)
        .collect();
    Ok(CompositeSnapshot {
        tenant,
        map_version,
        grid,
        origin,
        field,
        halo,
        cells,
        scenario: scenario_text,
        ops,
        shards,
        order,
    })
}

/// `RESTORE` on the router, two-phase so no failure can leave a partial
/// cut behind. The document names its tenant; `RESTORE` creates that
/// tenant if needed (or rebuilds its fleet to the document's cell
/// count), then overwrites its state wholesale. Phase 1 parses the
/// composite document and restores every embedded engine *off to the
/// side*, validating the set as a whole (per section parse/validate,
/// clock consistency across the cut and against the operation history);
/// any failure returns a structured `ERR` with all live state untouched.
/// Phase 2 commits: every shard installs its restored engine
/// (in-process) or receives the snapshot text as its new baseline (child
/// process — a push failure there just marks the child down, and the
/// rejoin replay rebuilds it from that same committed baseline).
fn restore_composite(core: &mut RouterCore, shared: &RouterShared, payload: &str) -> Reply {
    let restored = match restore_composite_state(core, shared, payload) {
        Ok(restored) => restored,
        Err(reply) => return reply,
    };
    // Durable router: a restore wholesale replaces the tenant, so its log
    // starts over from a checkpoint of the restored state (this also
    // clears a poisoned log — the operator just handed us a full
    // replacement for whatever the failed log could not persist).
    if let Err(reply) = wal_install(core, shared, &restored.tenant) {
        return reply;
    }
    Reply::Ok(format!(
        "slot={} open={}",
        restored.slot,
        u8::from(restored.open)
    ))
}

/// What [`restore_composite_state`] installed: which tenant, at which
/// clock.
struct RestoredTenant {
    tenant: String,
    slot: usize,
    open: bool,
}

/// The state-install half of `RESTORE`, shared verbatim by the wire verb
/// and WAL recovery (recovery must not re-checkpoint or touch the log,
/// so the durability hook lives in the verb wrapper above).
fn restore_composite_state(
    core: &mut RouterCore,
    shared: &RouterShared,
    payload: &str,
) -> Result<RestoredTenant, Reply> {
    let composite = match parse_composite(payload) {
        Ok(composite) => composite,
        Err(reason) => return Err(Reply::Err(ErrCode::BadSnapshot, reason)),
    };
    let partition = match Partition::from_rects(
        Vec2::new(composite.origin.0, composite.origin.1),
        composite.field.0,
        composite.field.1,
        composite.halo,
        composite.grid,
        composite.cells.clone(),
    ) {
        Ok(partition) => partition,
        Err(e) => return Err(Reply::Err(ErrCode::BadSnapshot, e.to_string())),
    };
    let scenario = match model_io::read_scenario(&composite.scenario) {
        Ok(scenario) => scenario,
        Err(e) => {
            return Err(Reply::Err(
                ErrCode::BadSnapshot,
                format!("bad embedded scenario: {e}"),
            ))
        }
    };
    let (order, plan, ops_clock) = rebuild_bookkeeping(&scenario, &composite.ops);
    if composite.shards.len() != composite.cells.len() {
        return Err(Reply::Err(
            ErrCode::BadSnapshot,
            "shard count does not match cell count".to_string(),
        ));
    }
    // Phase 1: restore and validate every section without installing.
    let mut engines = Vec::with_capacity(composite.shards.len());
    let mut clock: Option<(usize, bool)> = None;
    let mut slots = 0;
    for (index, snapshot) in composite.shards.iter().enumerate() {
        let engine = match OnlineEngine::restore(snapshot) {
            Ok(engine) => engine,
            Err(e) => {
                return Err(Reply::Err(
                    ErrCode::BadSnapshot,
                    format!("shard {index}: {e}"),
                ))
            }
        };
        let seen = (engine.clock(), !engine.is_closed());
        slots = slots.max(engine.scenario().grid.num_slots);
        match clock {
            None => clock = Some(seen),
            Some(common) if common == seen => {}
            Some(common) => {
                return Err(Reply::Err(
                    ErrCode::BadSnapshot,
                    format!(
                        "inconsistent cut: shard clocks differ ({} vs {})",
                        common.0, seen.0
                    ),
                ));
            }
        }
        engines.push(engine);
    }
    let Some((slot, open)) = clock else {
        return Err(Reply::Err(
            ErrCode::BadSnapshot,
            "snapshot has no shards".to_string(),
        ));
    };
    if slot != ops_clock {
        return Err(Reply::Err(
            ErrCode::BadSnapshot,
            format!(
                "inconsistent cut: operation history reaches clock {ops_clock}, shards sit at {slot}"
            ),
        ));
    }
    // The document's tenant: create it (or rebuild its fleet) to the
    // document's cell count. Fresh slots are built before any live state
    // is replaced, so a spawn failure aborts cleanly.
    let count = composite.shards.len();
    let matches_fleet = core
        .tenants
        .get(&composite.tenant)
        .map(|tenant| tenant.shards.len() == count)
        .unwrap_or(false);
    if !matches_fleet {
        let mut fresh = Vec::with_capacity(count);
        for cell in 0..count {
            match fresh_slot(shared, cell) {
                Ok(slot) => fresh.push(slot),
                Err(reply) => return Err(reply),
            }
        }
        match core.tenants.get_mut(&composite.tenant) {
            Some(tenant) => tenant.shards = fresh,
            None => {
                core.tenants.insert(
                    composite.tenant.clone(),
                    TenantCore::new(
                        fresh,
                        None,
                        TenantCounters::for_tenant(shared.telemetry.registry(), &composite.tenant),
                    ),
                );
            }
        }
    }
    let Some(tenant) = core.tenants.get_mut(&composite.tenant) else {
        return Err(internal("the restored tenant vanished mid-request"));
    };
    // Phase 2: the whole cut validated — commit it everywhere.
    for ((shard, engine), snapshot) in tenant
        .shards
        .iter()
        .zip(engines)
        .zip(composite.shards.iter())
    {
        shard.install_restored(engine, snapshot);
    }
    for (index, shard) in tenant.shards.iter().enumerate() {
        shard.set_cell(index);
    }
    tenant.partition = Some(partition);
    tenant.map = RoutingMap::at_version(composite.map_version, count);
    tenant.scenario = Some(scenario);
    tenant.ops = composite.ops;
    tenant.order = order;
    tenant.plan = plan;
    tenant.slots = slots;
    tenant.clock = slot;
    tenant.quota_used = 0;
    tenant.cell_submits = vec![0; count];
    TenantCounters::set_shards(shared.telemetry.registry(), &composite.tenant, count);
    Ok(RestoredTenant {
        tenant: composite.tenant,
        slot,
        open,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    /// The worst wedge for the metrics shim: the inner dial connects but
    /// the "router" never greets. The scrape must come back as a prompt
    /// `503` carrying the deadline error, never hang the handler thread.
    #[test]
    fn a_wedged_router_scrape_returns_503_promptly() {
        let wedged = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let router = wedged.local_addr().expect("bound listener has an address");
        let hold = std::thread::spawn(move || {
            // Accept, then hold the socket open in silence until the
            // handler has long since given up.
            if let Ok((stream, _)) = wedged.accept() {
                std::thread::sleep(Duration::from_millis(500));
                drop(stream);
            }
        });

        let scrape = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let scrape_addr = scrape.local_addr().expect("bound listener has an address");
        let handler = std::thread::spawn(move || {
            let (stream, _) = scrape.accept().expect("scraper connects");
            serve_scrape_with(stream, router, Duration::from_millis(100))
        });

        let mut stream = TcpStream::connect(scrape_addr).expect("dial the scrape port");
        // The scraper's own read deadline doubles as the promptness
        // assertion: if the handler sat out the full 500 ms hold (or
        // hung), this read would time out and fail the test.
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("set the scrape read deadline");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
            .expect("send the scrape request");
        let mut response = String::new();
        stream
            .read_to_string(&mut response)
            .expect("the 503 arrives before the scraper deadline");

        assert!(
            response.starts_with("HTTP/1.1 503 "),
            "expected 503, got {response:?}"
        );
        assert!(
            response.contains("request deadline expired"),
            "body names the timeout: {response:?}"
        );
        handler
            .join()
            .expect("handler thread")
            .expect("handler completes the 503 write");
        hold.join().expect("hold thread");
    }
}
