//! Exact optimum for small instances (the paper's brute-force comparator of
//! Figs. 8–9).

use haste_model::{evaluate, CoverageMap, EvalOptions, Scenario};
pub use haste_submodular::BruteForceError;

use crate::instance::{DominantScope, HasteRInstance};
use crate::offline::SolveResult;

/// Computes the exact HASTE-R optimum by exhaustively enumerating one
/// scheduling policy per (charger, slot), then evaluates the optimal
/// schedule under full P1 semantics.
///
/// `budget` caps the number of enumerated combinations (see
/// [`haste_submodular::brute_force`]); the paper runs this only on
/// 5-charger / 10-task instances.
///
/// Note that `relaxed_value` of the result is the optimum of **HASTE-R**,
/// which upper-bounds the HASTE optimum (Eq. 9 of the paper) — using it as
/// the "Optimal" reference makes every reported approximation ratio
/// conservative.
pub fn solve_exact(
    scenario: &Scenario,
    coverage: &CoverageMap,
    budget: u128,
) -> Result<SolveResult, BruteForceError> {
    let instance = HasteRInstance::build(scenario, coverage, DominantScope::PerSlot);
    let selection = haste_submodular::brute_force(&instance, budget)?;
    let schedule = instance.materialize(&selection);
    let report = evaluate(scenario, coverage, &schedule, EvalOptions::default());
    Ok(SolveResult {
        schedule,
        relaxed_value: selection.value,
        report,
        metrics: crate::SolverMetrics::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{solve_offline, OfflineConfig};
    use haste_geometry::{Angle, Vec2};
    use haste_model::{Charger, ChargingParams, Task, TimeGrid};

    fn small_scenario() -> Scenario {
        Scenario::new(
            ChargingParams::simulation_default(),
            TimeGrid::minutes(3),
            vec![
                Charger::new(0, Vec2::new(0.0, 0.0)),
                Charger::new(1, Vec2::new(10.0, 0.0)),
            ],
            vec![
                Task::new(
                    0,
                    Vec2::new(5.0, 0.0),
                    Angle::from_degrees(180.0),
                    0,
                    3,
                    1000.0,
                    0.5,
                ),
                Task::new(
                    1,
                    Vec2::new(5.0, 2.0),
                    Angle::from_degrees(0.0),
                    0,
                    3,
                    1000.0,
                    0.5,
                ),
            ],
            1.0 / 12.0,
            0,
        )
        .unwrap()
    }

    #[test]
    fn exact_dominates_greedy_and_tabular() {
        let s = small_scenario();
        let cov = CoverageMap::build(&s);
        let exact = solve_exact(&s, &cov, 1 << 24).unwrap();
        for config in [OfflineConfig::greedy(), OfflineConfig::with_colors(4)] {
            let approx = solve_offline(&s, &cov, &config);
            assert!(exact.relaxed_value >= approx.relaxed_value - 1e-9);
            // And the theoretical guarantee holds with room to spare.
            let ratio = (1.0 - s.rho) * 0.5;
            assert!(approx.report.total_utility >= ratio * exact.relaxed_value - 1e-9);
        }
    }

    #[test]
    fn budget_guard_propagates() {
        let s = small_scenario();
        let cov = CoverageMap::build(&s);
        assert!(solve_exact(&s, &cov, 0).is_err());
    }
}
