//! The HASTE-R ground set and its submodular objective (Section 4.2 / RP2).
//!
//! Partitions are the blocks `Θ_{i,k}` — one per (charger, slot) pair,
//! indexed slot-major (`p = (k − k₀)·n + i`) so that partition order matches
//! the distributed algorithm's outer-slot loop. A partition's choices are
//! the charger's dominant task sets; selecting choice `x` in partition
//! `(i, k)` means "charger `i` spends slot `k` at the orientation covering
//! dominant set `x`". The objective is the paper's `f(X)` of RP2: the
//! weighted sum of task utilities of accumulated energy, evaluated *without*
//! switching delay (the HASTE-R relaxation).
//!
//! [`InstanceOptions`] generalizes the construction for the online setting:
//! a slot range (re-negotiating only the future), initial per-task energies
//! (what the frozen past already delivered), and a task visibility delay
//! (tasks become actionable `τ` slots after release).

use std::ops::Range;

use haste_geometry::Angle;
use haste_model::{ChargerId, CoverageMap, Scenario, Schedule, Slot, UtilityFn};
use haste_submodular::{PartitionedObjective, Selection};

use crate::dominant::{extract_dominant_sets, DominantSet};

/// Whether dominant sets are extracted per slot (over the tasks active in
/// that slot) or once globally per charger (the paper's `Γ_{i,k} = Γ_i`).
///
/// Both scope choices yield the same achievable coverage — a globally
/// dominant set restricted to a slot's active tasks is contained in some
/// per-slot dominant set and vice versa — but the per-slot ground set is
/// smaller and never offers energy to inactive tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DominantScope {
    /// Extract from tasks active in each slot (default; smaller ground set).
    PerSlot,
    /// Extract once per charger from all tasks, reuse for every slot
    /// (exactly the paper's formulation).
    Global,
}

/// Construction options for [`HasteRInstance::build_with`].
#[derive(Debug, Clone, Default)]
pub struct InstanceOptions {
    /// Dominant-set extraction scope (default [`DominantScope::PerSlot`]).
    pub scope: Option<DominantScope>,
    /// Decision slots (default `0 .. scenario.active_horizon()`).
    pub slot_range: Option<Range<Slot>>,
    /// Only tasks with `known[j]` participate (default: all). The online
    /// scheduler uses this to hide not-yet-released tasks.
    pub known_tasks: Option<Vec<bool>>,
    /// Energy each task already holds before the first decision slot
    /// (default zeros). Marginals are computed on top of this; the
    /// objective still reports *gain* (`f(∅) = 0`).
    pub initial_energy: Option<Vec<f64>>,
    /// A task only enters a slot's policies once `slot ≥ release + delay`
    /// (the rescheduling delay `τ` for purely local algorithms; the online
    /// negotiation loop instead handles `τ` by freezing prefixes).
    pub visibility_delay: Option<usize>,
    /// Chargers with `disabled[i]` get no policies at all — the online
    /// scheduler uses this to plan around failed chargers.
    pub disabled_chargers: Option<Vec<bool>>,
    /// Worker threads for the per-charger dominant-set extraction (`None`
    /// or `Some(1)` = sequential, `Some(0)` = auto-detect via
    /// `haste_parallel::default_threads`). Chargers are independent during
    /// extraction and families are assembled in charger order afterwards,
    /// so the instance is identical for every thread count.
    pub threads: Option<usize>,
}

/// One selectable scheduling policy: a dominant set with the per-slot energy
/// each member receives.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Orientation `Θ_{i,k}^p` realizing the dominant set.
    pub orientation: Angle,
    /// `(task index, energy per fully-effective slot in joules)`.
    pub deliveries: Vec<(usize, f64)>,
}

/// The reformulated problem instance RP2: ground set + incremental oracle.
///
/// Policy families are stored once per (charger, activity segment) and
/// shared by every slot of the segment — the usable task set of a charger
/// is piecewise constant in time, and deduplicating the families keeps the
/// online loop (which rebuilds instances on every arrival) cheap.
pub struct HasteRInstance<'a> {
    scenario: &'a Scenario,
    /// Decision slots covered by this instance.
    pub slot_range: Range<Slot>,
    /// Unique policy families; `families[0]` is the empty family.
    families: Vec<Vec<Policy>>,
    /// `families` index for partition `p = (k − slot_range.start)·n + i`.
    partition_family: Vec<u32>,
    /// Per-task energy at the start of the instance.
    initial_energy: Vec<f64>,
}

impl<'a> HasteRInstance<'a> {
    /// Builds the full-horizon instance (offline use).
    pub fn build(scenario: &'a Scenario, coverage: &CoverageMap, scope: DominantScope) -> Self {
        Self::build_with(
            scenario,
            coverage,
            InstanceOptions {
                scope: Some(scope),
                ..InstanceOptions::default()
            },
        )
    }

    /// Builds an instance under explicit [`InstanceOptions`].
    pub fn build_with(
        scenario: &'a Scenario,
        coverage: &CoverageMap,
        options: InstanceOptions,
    ) -> Self {
        let n = scenario.num_chargers();
        let scope = options.scope.unwrap_or(DominantScope::PerSlot);
        let slot_range = options.slot_range.unwrap_or(0..scenario.active_horizon());
        let known = options.known_tasks;
        let visibility_delay = options.visibility_delay.unwrap_or(0);
        let slot_seconds = scenario.grid.slot_seconds;
        let threads = options.threads.map_or(1, haste_parallel::resolve_threads);

        let usable = |task_idx: usize, k: Slot| -> bool {
            let task = &scenario.tasks[task_idx];
            task.active_at(k)
                && known.as_ref().is_none_or(|kn| kn[task_idx])
                && k >= task.release_slot + visibility_delay
        };

        // Global extraction reuses one dominant family per charger.
        let charger_ids: Vec<usize> = (0..n).collect();
        let global_sets: Vec<Vec<DominantSet>> = if scope == DominantScope::Global {
            haste_parallel::par_map(&charger_ids, threads, |_, &i| {
                let candidates: Vec<_> = coverage
                    .tasks_of(ChargerId(i as u32))
                    .iter()
                    .filter(|c| known.as_ref().is_none_or(|kn| kn[c.task.index()]))
                    .copied()
                    .collect();
                extract_dominant_sets(&candidates, scenario.params.charging_angle)
            })
        } else {
            Vec::new()
        };

        let slots = slot_range.len();
        // The usable candidate set of a charger is piecewise constant in k
        // (it changes only at task visibility starts and ends), so build
        // one policy family per (charger, segment) and share it. Chargers
        // are independent here, so the segment extraction fans out across
        // threads; the family table is then assembled sequentially in
        // charger order, giving the exact same indices as a sequential
        // build.
        let per_charger_segments: Vec<Vec<(Slot, Slot, Vec<Policy>)>> =
            haste_parallel::par_map(&charger_ids, threads, |_, &i| {
                if options.disabled_chargers.as_ref().is_some_and(|d| d[i]) {
                    return Vec::new(); // stays on the empty family
                }
                let charger = ChargerId(i as u32);
                let candidates = coverage.tasks_of(charger);
                let mut segments = Vec::new();
                let mut k = slot_range.start;
                while k < slot_range.end {
                    // Next slot where some candidate's visibility flips.
                    let mut next_change = slot_range.end;
                    for c in candidates {
                        let task = &scenario.tasks[c.task.index()];
                        let start = task.release_slot + visibility_delay;
                        if start > k && start < next_change {
                            next_change = start;
                        }
                        if task.end_slot > k && task.end_slot < next_change {
                            next_change = task.end_slot;
                        }
                    }
                    let family: Vec<Policy> = match scope {
                        DominantScope::PerSlot => {
                            let active: Vec<_> = candidates
                                .iter()
                                .filter(|c| usable(c.task.index(), k))
                                .copied()
                                .collect();
                            if active.is_empty() {
                                Vec::new()
                            } else {
                                extract_dominant_sets(&active, scenario.params.charging_angle)
                                    .into_iter()
                                    .map(|set| Policy {
                                        orientation: set.orientation,
                                        deliveries: set
                                            .members
                                            .iter()
                                            .map(|&(t, power)| (t.index(), power * slot_seconds))
                                            .collect(),
                                    })
                                    .collect()
                            }
                        }
                        DominantScope::Global => global_sets[i]
                            .iter()
                            .map(|set| Policy {
                                orientation: set.orientation,
                                deliveries: set
                                    .members
                                    .iter()
                                    // Global sets may contain tasks unusable
                                    // in this segment; they receive nothing.
                                    .filter(|(t, _)| usable(t.index(), k))
                                    .map(|&(t, power)| (t.index(), power * slot_seconds))
                                    .collect(),
                            })
                            .collect(),
                    };
                    segments.push((k, next_change, family));
                    k = next_change;
                }
                segments
            });

        // families[0] is the shared empty family.
        let mut families: Vec<Vec<Policy>> = vec![Vec::new()];
        let mut partition_family: Vec<u32> = vec![0; n * slots];
        for (i, segments) in per_charger_segments.into_iter().enumerate() {
            for (seg_start, seg_end, family) in segments {
                let family_idx = if family.is_empty() && scope == DominantScope::PerSlot {
                    0
                } else {
                    families.push(family);
                    (families.len() - 1) as u32
                };
                for slot in seg_start..seg_end {
                    partition_family[(slot - slot_range.start) * n + i] = family_idx;
                }
            }
        }
        let initial_energy = options
            .initial_energy
            .unwrap_or_else(|| vec![0.0; scenario.num_tasks()]);
        assert_eq!(initial_energy.len(), scenario.num_tasks());
        HasteRInstance {
            scenario,
            slot_range,
            families,
            partition_family,
            initial_energy,
        }
    }

    /// The scenario this instance was built from.
    pub fn scenario(&self) -> &Scenario {
        self.scenario
    }

    /// Number of decision slots covered.
    pub fn num_slots(&self) -> usize {
        self.slot_range.len()
    }

    /// Partition index of `(charger, slot)`; `slot` must be in range.
    #[inline]
    pub fn partition(&self, charger: ChargerId, slot: Slot) -> usize {
        debug_assert!(self.slot_range.contains(&slot));
        (slot - self.slot_range.start) * self.scenario.num_chargers() + charger.index()
    }

    /// Inverse of [`HasteRInstance::partition`].
    #[inline]
    pub fn charger_slot(&self, partition: usize) -> (ChargerId, Slot) {
        let n = self.scenario.num_chargers();
        (
            ChargerId((partition % n) as u32),
            partition / n + self.slot_range.start,
        )
    }

    /// The selectable policies of a partition.
    #[inline]
    pub fn policies(&self, partition: usize) -> &[Policy] {
        &self.families[self.partition_family[partition] as usize]
    }

    /// Total number of ground-set elements (all policies of all partitions).
    pub fn ground_set_size(&self) -> usize {
        self.partition_family
            .iter()
            .map(|&f| self.families[f as usize].len())
            .sum()
    }

    /// Converts an optimizer [`Selection`] into a fresh orientation
    /// [`Schedule`] (slots outside the instance's range stay unassigned).
    pub fn materialize(&self, selection: &Selection) -> Schedule {
        let mut schedule =
            Schedule::empty(self.scenario.num_chargers(), self.scenario.grid.num_slots);
        self.materialize_into(selection, &mut schedule);
        schedule
    }

    /// Writes a selection's orientations into an existing schedule,
    /// touching only this instance's slot range.
    pub fn materialize_into(&self, selection: &Selection, schedule: &mut Schedule) {
        for (p, choice) in selection.choices.iter().enumerate() {
            let (charger, slot) = self.charger_slot(p);
            let theta = choice.map(|x| self.policies(p)[x].orientation);
            schedule.set(charger, slot, theta);
        }
    }

    /// A tie-break hook for the greedy optimizers that prefers, among
    /// equal-gain policies, one matching the orientation the charger holds
    /// in the previous slot — avoiding a needless switching delay without
    /// touching the HASTE-R objective value.
    pub fn switch_avoiding_tie_break(
        &self,
    ) -> impl Fn(&[Option<usize>], usize) -> Option<usize> + '_ {
        let n = self.scenario.num_chargers();
        move |choices: &[Option<usize>], p: usize| {
            let prev_p = p.checked_sub(n)?;
            let prev_choice = choices[prev_p]?;
            let prev_theta = self.policies(prev_p)[prev_choice].orientation;
            self.policies(p)
                .iter()
                .position(|pol| pol.orientation.distance(prev_theta).radians() < 1e-9)
        }
    }
}

/// Per-task accumulated energy plus the running objective value.
#[derive(Debug, Clone)]
pub struct EnergyState {
    /// Energy accumulated by each task, in joules (includes the instance's
    /// initial energy).
    pub energy: Vec<f64>,
    /// Cached `f` value: utility gained *by this instance's selections* on
    /// top of the initial energy.
    pub value: f64,
}

impl PartitionedObjective for HasteRInstance<'_> {
    type State = EnergyState;

    fn new_state(&self) -> EnergyState {
        EnergyState {
            energy: self.initial_energy.clone(),
            value: 0.0,
        }
    }

    fn num_partitions(&self) -> usize {
        self.partition_family.len()
    }

    fn num_choices(&self, partition: usize) -> usize {
        self.policies(partition).len()
    }

    fn value(&self, state: &EnergyState) -> f64 {
        state.value
    }

    fn marginal(&self, state: &EnergyState, partition: usize, choice: usize) -> f64 {
        let mut gain = 0.0;
        for &(task_idx, delta) in &self.policies(partition)[choice].deliveries {
            let task = &self.scenario.tasks[task_idx];
            gain += task.weight
                * self.scenario.utility.marginal(
                    state.energy[task_idx],
                    delta,
                    task.required_energy,
                );
        }
        gain
    }

    fn commit(&self, state: &mut EnergyState, partition: usize, choice: usize) {
        for &(task_idx, delta) in &self.policies(partition)[choice].deliveries {
            let task = &self.scenario.tasks[task_idx];
            state.value += task.weight
                * self.scenario.utility.marginal(
                    state.energy[task_idx],
                    delta,
                    task.required_energy,
                );
            state.energy[task_idx] += delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haste_geometry::{Angle, Vec2};
    use haste_model::{evaluate_relaxed, Charger, ChargingParams, Task, TimeGrid};
    use haste_submodular::{locally_greedy, GreedyOptions};

    /// One charger at the origin; two devices east and north, both facing
    /// back at the charger. A_s = 60° so they can't be covered together.
    fn scenario() -> Scenario {
        Scenario::new(
            ChargingParams::simulation_default(),
            TimeGrid::minutes(4),
            vec![Charger::new(0, Vec2::ZERO)],
            vec![
                Task::new(
                    0,
                    Vec2::new(10.0, 0.0),
                    Angle::from_degrees(180.0),
                    0,
                    4,
                    480.0,
                    1.0,
                ),
                Task::new(
                    1,
                    Vec2::new(0.0, 10.0),
                    Angle::from_degrees(270.0),
                    0,
                    2,
                    480.0,
                    1.0,
                ),
            ],
            0.0,
            0,
        )
        .unwrap()
    }

    #[test]
    fn ground_set_shape() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let inst = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
        assert_eq!(inst.num_partitions(), 4); // 1 charger × 4 slots
                                              // Slots 0-1: both tasks active → two dominant sets; slots 2-3: one.
        assert_eq!(inst.num_choices(0), 2);
        assert_eq!(inst.num_choices(1), 2);
        assert_eq!(inst.num_choices(2), 1);
        assert_eq!(inst.num_choices(3), 1);
        assert_eq!(inst.ground_set_size(), 6);
    }

    #[test]
    fn partition_mapping_roundtrip() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let inst = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
        for p in 0..inst.num_partitions() {
            let (c, k) = inst.charger_slot(p);
            assert_eq!(inst.partition(c, k), p);
        }
    }

    #[test]
    fn greedy_solution_matches_relaxed_evaluator() {
        // The oracle's incremental value must agree with the full P1
        // evaluator at ρ = 0 on the materialized schedule.
        let s = scenario();
        let cov = CoverageMap::build(&s);
        for scope in [DominantScope::PerSlot, DominantScope::Global] {
            let inst = HasteRInstance::build(&s, &cov, scope);
            let sel = locally_greedy(&inst, &GreedyOptions::default());
            let schedule = inst.materialize(&sel);
            let report = evaluate_relaxed(&s, &cov, &schedule);
            assert!(
                (sel.value - report.total_utility).abs() < 1e-9,
                "{scope:?}: oracle {} vs evaluator {}",
                sel.value,
                report.total_utility
            );
        }
    }

    #[test]
    fn per_slot_and_global_scopes_agree_on_value() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let per_slot = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
        let global = HasteRInstance::build(&s, &cov, DominantScope::Global);
        let a = locally_greedy(&per_slot, &GreedyOptions::default());
        let b = locally_greedy(&global, &GreedyOptions::default());
        assert!((a.value - b.value).abs() < 1e-9);
    }

    #[test]
    fn optimum_serves_both_tasks_and_greedy_meets_its_bound() {
        // 240 J per aimed slot; each task needs 480 J, task 1 is only
        // active in slots 0-1. The optimum charges task 1 during 0-1 and
        // task 0 during 2-3 → both saturate → f = 2.0. Plain greedy may
        // tie-break into task 0 early and strand task 1, but must stay
        // within its 1/2 guarantee.
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let inst = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
        let opt = haste_submodular::brute_force(&inst, 1 << 20).unwrap();
        assert!((opt.value - 2.0).abs() < 1e-9, "opt {}", opt.value);
        let sel = locally_greedy(&inst, &GreedyOptions::default());
        assert!(sel.value >= 0.5 * opt.value - 1e-9);
    }

    #[test]
    fn switch_avoiding_tie_break_prefers_previous_orientation() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let inst = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
        let tie = inst.switch_avoiding_tie_break();
        // Suppose slot 0 chose the policy that serves task 0.
        let east_idx = inst
            .policies(0)
            .iter()
            .position(|p| p.deliveries.iter().any(|&(t, _)| t == 0))
            .unwrap();
        let chosen_theta = inst.policies(0)[east_idx].orientation;
        let mut choices = vec![None; inst.num_partitions()];
        choices[0] = Some(east_idx);
        // Partition 1 (same charger, slot 1) should prefer that same
        // orientation again.
        let preferred = tie(&choices, 1).unwrap();
        let theta = inst.policies(1)[preferred].orientation;
        assert!(theta.distance(chosen_theta).radians() < 1e-9);
        // No previous slot → no preference.
        assert_eq!(tie(&vec![None; inst.num_partitions()], 0), None);
    }

    #[test]
    fn oracle_passes_submodularity_validators() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let inst = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
        haste_submodular::validate::check_all(&inst, 120, 7, 1e-9).unwrap();
    }

    #[test]
    fn slot_range_restricts_partitions() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let inst = HasteRInstance::build_with(
            &s,
            &cov,
            InstanceOptions {
                slot_range: Some(2..4),
                ..InstanceOptions::default()
            },
        );
        assert_eq!(inst.num_partitions(), 2);
        let (c, k) = inst.charger_slot(0);
        assert_eq!((c, k), (ChargerId(0), 2));
        assert_eq!(inst.partition(ChargerId(0), 3), 1);
        // Only task 0 is active in slots 2-3.
        assert_eq!(inst.num_choices(0), 1);
    }

    #[test]
    fn initial_energy_shrinks_marginals() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let fresh = HasteRInstance::build(&s, &cov, DominantScope::PerSlot);
        let primed = HasteRInstance::build_with(
            &s,
            &cov,
            InstanceOptions {
                initial_energy: Some(vec![400.0, 0.0]), // task 0 nearly full
                ..InstanceOptions::default()
            },
        );
        // Find the policy serving task 0 in partition 0 for both instances.
        let idx = |inst: &HasteRInstance| {
            inst.policies(0)
                .iter()
                .position(|p| p.deliveries.iter().any(|&(t, _)| t == 0))
                .unwrap()
        };
        let g_fresh = fresh.marginal(&fresh.new_state(), 0, idx(&fresh));
        let g_primed = primed.marginal(&primed.new_state(), 0, idx(&primed));
        // Fresh: 240/480 = 0.5; primed: only 80 J of headroom → 80/480.
        assert!((g_fresh - 0.5).abs() < 1e-9);
        assert!((g_primed - 80.0 / 480.0).abs() < 1e-9);
        // Normalization still holds.
        assert_eq!(primed.value(&primed.new_state()), 0.0);
    }

    #[test]
    fn unknown_tasks_are_invisible() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let inst = HasteRInstance::build_with(
            &s,
            &cov,
            InstanceOptions {
                known_tasks: Some(vec![true, false]),
                ..InstanceOptions::default()
            },
        );
        // With task 1 hidden, every slot offers only the task-0 policy.
        for p in 0..inst.num_partitions() {
            assert!(inst.num_choices(p) <= 1);
            for pol in inst.policies(p) {
                assert!(pol.deliveries.iter().all(|&(t, _)| t == 0));
            }
        }
    }

    #[test]
    fn visibility_delay_hides_early_slots() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let inst = HasteRInstance::build_with(
            &s,
            &cov,
            InstanceOptions {
                visibility_delay: Some(1),
                ..InstanceOptions::default()
            },
        );
        // Slot 0: both tasks released at 0 but invisible until slot 1.
        assert_eq!(inst.num_choices(0), 0);
        assert_eq!(inst.num_choices(1), 2);
    }

    #[test]
    fn disabled_chargers_get_no_policies() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let inst = HasteRInstance::build_with(
            &s,
            &cov,
            InstanceOptions {
                disabled_chargers: Some(vec![true]),
                ..InstanceOptions::default()
            },
        );
        for p in 0..inst.num_partitions() {
            assert_eq!(inst.num_choices(p), 0);
        }
        assert_eq!(inst.ground_set_size(), 0);
    }

    #[test]
    fn materialize_into_respects_range() {
        let s = scenario();
        let cov = CoverageMap::build(&s);
        let inst = HasteRInstance::build_with(
            &s,
            &cov,
            InstanceOptions {
                slot_range: Some(2..4),
                ..InstanceOptions::default()
            },
        );
        let sel = locally_greedy(&inst, &GreedyOptions::default());
        let mut schedule = Schedule::empty(1, 4);
        schedule.set(ChargerId(0), 0, Some(Angle::from_degrees(7.0)));
        inst.materialize_into(&sel, &mut schedule);
        // Prefix untouched.
        assert_eq!(
            schedule.get(ChargerId(0), 0),
            Some(Angle::from_degrees(7.0))
        );
        // Suffix has the greedy decision for slot 2 (task 0 only).
        assert!(schedule.get(ChargerId(0), 2).is_some());
    }
}
